// Property-based tests: definitional invariants of the MIDAS formalism,
// checked over randomly generated workloads (parameterized across seeds and
// shapes). These pin the implementation to the paper's definitions rather
// than to specific outputs:
//
//   Def. 3/4  — fact-table and catalog consistency;
//   Def. 5    — every reported slice is (C, Π, Π*)-consistent: Π is exactly
//               the match set of C and Π* is exactly its entities' facts;
//   Def. 7/Prop. 12 — canonicality flags agree with the structural rule;
//   Def. 9    — reported profits equal the profit function recomputed from
//               scratch;
//   §III-A    — hierarchy structure: children have strict property
//               supersets and entity subsets; f_LB >= max(0, f(S));
//   Alg. 1    — the selected set never includes two slices where one
//               covers the other, and its set profit is positive.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <unordered_set>

#include "midas/core/midas.h"
#include "midas/synth/single_source.h"

namespace midas {
namespace core {
namespace {

struct WorkloadShape {
  size_t num_facts;
  size_t num_slices;
  size_t num_optimal;
  uint64_t seed;
};

class InvariantsTest : public ::testing::TestWithParam<WorkloadShape> {
 protected:
  void SetUp() override {
    synth::SingleSourceParams params;
    params.num_facts = GetParam().num_facts;
    params.num_slices = GetParam().num_slices;
    params.num_optimal = GetParam().num_optimal;
    params.seed = GetParam().seed;
    data_ = std::make_unique<synth::SingleSourceData>(
        synth::GenerateSingleSource(params));
    table_ = std::make_unique<FactTable>(data_->facts);
    profit_ = std::make_unique<ProfitContext>(*table_, *data_->kb,
                                              CostModel::Default());
  }

  std::unique_ptr<synth::SingleSourceData> data_;
  std::unique_ptr<FactTable> table_;
  std::unique_ptr<ProfitContext> profit_;
};

TEST_P(InvariantsTest, FactTableConsistency) {
  // Every input fact appears exactly once, under its subject's row.
  size_t total = 0;
  for (EntityId e = 0; e < table_->num_entities(); ++e) {
    for (const auto& fact : table_->entity_facts(e)) {
      EXPECT_EQ(fact.subject, table_->subject(e));
      ++total;
    }
    // Entity property list matches its facts' (pred, obj) pairs.
    std::set<PropertyId> from_facts;
    for (const auto& fact : table_->entity_facts(e)) {
      auto id = table_->catalog().Lookup(fact.predicate, fact.object);
      ASSERT_TRUE(id.has_value());
      from_facts.insert(*id);
    }
    std::set<PropertyId> listed(table_->entity_properties(e).begin(),
                                table_->entity_properties(e).end());
    EXPECT_EQ(from_facts, listed);
  }
  EXPECT_EQ(total, data_->facts.size());

  // Inverted lists agree with forward lists.
  for (PropertyId p = 0; p < table_->catalog().size(); ++p) {
    for (EntityId e : table_->property_entities(p)) {
      const auto& props = table_->entity_properties(e);
      EXPECT_TRUE(std::binary_search(props.begin(), props.end(), p));
    }
  }
}

TEST_P(InvariantsTest, HierarchyStructuralInvariants) {
  SliceHierarchy hierarchy(*table_, *profit_, HierarchyOptions());
  const auto& nodes = hierarchy.nodes();

  for (uint32_t i = 0; i < nodes.size(); ++i) {
    const SliceNode& node = nodes[i];
    EXPECT_EQ(node.level, node.properties.size());
    EXPECT_TRUE(
        std::is_sorted(node.properties.begin(), node.properties.end()));

    // Π is exactly the match set (Def. 5), in either representation.
    const std::vector<EntityId> entities = node.EntityVector();
    EXPECT_EQ(entities, table_->MatchEntities(node.properties.data(),
                                              node.properties.size()));

    // Profit is the profit function of Π (Def. 9).
    EXPECT_NEAR(node.profit, profit_->SliceProfit(entities), 1e-9);

    if (node.removed) continue;

    // f_LB >= max(0, f(S)); S_LB achieves it.
    EXPECT_GE(node.lb_profit, 0.0);
    EXPECT_GE(node.lb_profit, node.profit - 1e-9);
    if (!node.lb_set.empty()) {
      std::vector<std::vector<EntityId>> lb_entities;
      lb_entities.reserve(node.lb_set.size());
      std::vector<const std::vector<EntityId>*> sets;
      for (uint32_t s : node.lb_set) {
        lb_entities.push_back(nodes[s].EntityVector());
        sets.push_back(&lb_entities.back());
      }
      EXPECT_NEAR(node.lb_profit, profit_->SetProfit(sets), 1e-9);
    } else {
      EXPECT_DOUBLE_EQ(node.lb_profit, 0.0);
    }

    // Valid nodes are exactly those whose own profit is the best known
    // non-negative option in their subtree.
    if (node.valid) {
      EXPECT_GE(node.profit, 0.0);
      EXPECT_NEAR(node.lb_profit, node.profit, 1e-9);
    }

    // Edges: children carry strict property supersets and entity subsets.
    for (uint32_t c : node.children) {
      const SliceNode& child = nodes[c];
      EXPECT_TRUE(child.removed == false);
      EXPECT_GT(child.properties.size(), node.properties.size());
      EXPECT_TRUE(std::includes(child.properties.begin(),
                                child.properties.end(),
                                node.properties.begin(),
                                node.properties.end()));
      const std::vector<EntityId> child_entities = child.EntityVector();
      EXPECT_TRUE(std::includes(entities.begin(), entities.end(),
                                child_entities.begin(),
                                child_entities.end()));
    }

    // Prop. 12: canonicality flags agree with the structural rule.
    size_t canonical_children = 0;
    for (uint32_t c : node.children) {
      if (nodes[c].is_canonical) ++canonical_children;
    }
    EXPECT_EQ(node.is_canonical,
              node.is_initial || canonical_children >= 2);
  }
}

TEST_P(InvariantsTest, ReportedSlicesAreDefinitionConsistent) {
  MidasAlg alg;
  SourceInput input;
  input.url = data_->url;
  input.facts = &data_->facts;
  auto slices = alg.Detect(input, *data_->kb);

  for (const auto& slice : slices) {
    ASSERT_FALSE(slice.properties.empty());
    ASSERT_FALSE(slice.entities.empty());
    EXPECT_EQ(slice.num_facts, slice.facts.size());
    EXPECT_GT(slice.profit, 0.0);

    // Π == match set of C over the fact table.
    std::vector<PropertyId> props;
    for (const auto& pair : slice.properties) {
      auto id = table_->catalog().Lookup(pair.predicate, pair.value);
      ASSERT_TRUE(id.has_value());
      props.push_back(*id);
    }
    std::sort(props.begin(), props.end());
    auto match = table_->MatchEntities(props);
    std::vector<rdf::TermId> subjects;
    for (EntityId e : match) subjects.push_back(table_->subject(e));
    std::sort(subjects.begin(), subjects.end());
    std::vector<rdf::TermId> reported = slice.entities;
    std::sort(reported.begin(), reported.end());
    EXPECT_EQ(subjects, reported);

    // Π* == all facts of Π, and num_new matches the KB.
    size_t expected_facts = 0, expected_new = 0;
    for (EntityId e : match) {
      expected_facts += table_->entity_facts(e).size();
      for (const auto& fact : table_->entity_facts(e)) {
        if (!data_->kb->Contains(fact)) ++expected_new;
      }
    }
    EXPECT_EQ(slice.num_facts, expected_facts);
    EXPECT_EQ(slice.num_new_facts, expected_new);

    // Reported profit is the profit function, recomputed.
    EXPECT_NEAR(slice.profit, profit_->SliceProfit(match), 1e-9);
  }
}

TEST_P(InvariantsTest, SelectionIsNonRedundantAndProfitable) {
  MidasAlg alg;
  SourceInput input;
  input.url = data_->url;
  input.facts = &data_->facts;
  auto slices = alg.Detect(input, *data_->kb);
  if (slices.empty()) return;

  // No reported slice's entity set contains another's (Alg. 1 covers the
  // subtree of every selected slice).
  std::vector<std::set<rdf::TermId>> entity_sets;
  for (const auto& s : slices) {
    entity_sets.emplace_back(s.entities.begin(), s.entities.end());
  }
  for (size_t i = 0; i < entity_sets.size(); ++i) {
    for (size_t j = 0; j < entity_sets.size(); ++j) {
      if (i == j) continue;
      bool contains =
          std::includes(entity_sets[i].begin(), entity_sets[i].end(),
                        entity_sets[j].begin(), entity_sets[j].end());
      EXPECT_FALSE(contains)
          << "slice " << i << " contains slice " << j;
    }
  }

  // The selected set has positive total profit and every prefix of the
  // selection improved it (Alg. 1's acceptance test).
  std::vector<const std::vector<EntityId>*> sets;
  std::vector<std::vector<EntityId>> ids;
  ids.reserve(slices.size());
  for (const auto& s : slices) {
    std::vector<EntityId> es;
    for (rdf::TermId subject : s.entities) {
      EntityId e = table_->FindEntity(subject);
      ASSERT_NE(e, kInvalidIndex);
      es.push_back(e);
    }
    std::sort(es.begin(), es.end());
    ids.push_back(std::move(es));
  }
  for (const auto& es : ids) sets.push_back(&es);
  EXPECT_GT(profit_->SetProfit(sets), 0.0);
}

TEST_P(InvariantsTest, DetectionIsDeterministic) {
  MidasAlg alg;
  SourceInput input;
  input.url = data_->url;
  input.facts = &data_->facts;
  auto a = alg.Detect(input, *data_->kb);
  auto b = alg.Detect(input, *data_->kb);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].properties.size(), b[i].properties.size());
    EXPECT_EQ(a[i].entities, b[i].entities);
    EXPECT_DOUBLE_EQ(a[i].profit, b[i].profit);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, InvariantsTest,
    ::testing::Values(WorkloadShape{500, 5, 2, 1},
                      WorkloadShape{1000, 10, 5, 2},
                      WorkloadShape{2000, 20, 10, 3},
                      WorkloadShape{3000, 20, 1, 4},
                      WorkloadShape{1500, 8, 8, 5},
                      WorkloadShape{800, 4, 0, 6},
                      WorkloadShape{4000, 25, 12, 7}),
    [](const ::testing::TestParamInfo<WorkloadShape>& info) {
      return "n" + std::to_string(info.param.num_facts) + "_b" +
             std::to_string(info.param.num_slices) + "_m" +
             std::to_string(info.param.num_optimal) + "_s" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace core
}  // namespace midas
