#include "midas/core/consolidate.h"

#include <gtest/gtest.h>

#include <set>

namespace midas {
namespace core {
namespace {

// Builds a slice over entity ids [first, first+count) with one fact per
// entity (predicate 1000, object = entity id).
DiscoveredSlice MakeSlice(const std::string& url, uint32_t first,
                          uint32_t count, double profit,
                          size_t facts_per_entity = 1) {
  DiscoveredSlice slice;
  slice.source_url = url;
  slice.profit = profit;
  for (uint32_t e = first; e < first + count; ++e) {
    slice.entities.push_back(e);
    for (size_t f = 0; f < facts_per_entity; ++f) {
      slice.facts.emplace_back(e, static_cast<rdf::TermId>(1000 + f), e);
    }
  }
  slice.num_facts = slice.facts.size();
  slice.num_new_facts = slice.num_facts;
  return slice;
}

std::set<std::string> Urls(const std::vector<DiscoveredSlice>& slices) {
  std::set<std::string> out;
  for (const auto& s : slices) out.insert(s.source_url);
  return out;
}

TEST(ConsolidateTest, ParentWinsOverCostlierChildren) {
  // Parent covers entities 0-9 with profit 8; the two children cover the
  // same entities at combined profit 3+3=6 (two training costs).
  auto parent = MakeSlice("http://a.com/sec", 0, 10, 8.0);
  auto c1 = MakeSlice("http://a.com/sec/p1", 0, 5, 3.0);
  auto c2 = MakeSlice("http://a.com/sec/p2", 5, 5, 3.0);
  auto surviving = ConsolidateSlices({parent}, {c1, c2});
  ASSERT_EQ(surviving.size(), 1u);
  EXPECT_EQ(surviving[0].source_url, "http://a.com/sec");
}

TEST(ConsolidateTest, ChildrenWinWhenJointlyMoreProfitable) {
  auto parent = MakeSlice("http://a.com/sec", 0, 10, 5.0);
  auto c1 = MakeSlice("http://a.com/sec/p1", 0, 5, 3.0);
  auto c2 = MakeSlice("http://a.com/sec/p2", 5, 5, 3.0);
  auto surviving = ConsolidateSlices({parent}, {c1, c2});
  ASSERT_EQ(surviving.size(), 2u);
  EXPECT_EQ(Urls(surviving),
            (std::set<std::string>{"http://a.com/sec/p1",
                                   "http://a.com/sec/p2"}));
}

TEST(ConsolidateTest, TieGoesToTheChild) {
  auto parent = MakeSlice("http://a.com/sec", 0, 10, 5.0);
  auto child = MakeSlice("http://a.com/sec/p1", 0, 10, 5.0);
  auto surviving = ConsolidateSlices({parent}, {child});
  ASSERT_EQ(surviving.size(), 1u);
  EXPECT_EQ(surviving[0].source_url, "http://a.com/sec/p1");
}

TEST(ConsolidateTest, PartialCoverKeepsParent) {
  // The child covers only half the parent's entities: not "same content",
  // so the parent wins even though the child's profit is higher.
  auto parent = MakeSlice("http://a.com/sec", 0, 10, 5.0);
  auto child = MakeSlice("http://a.com/sec/p1", 0, 5, 9.0);
  auto surviving = ConsolidateSlices({parent}, {child});
  ASSERT_EQ(surviving.size(), 1u);
  EXPECT_EQ(surviving[0].source_url, "http://a.com/sec");
}

TEST(ConsolidateTest, ParentWithMoreFactsPerEntityKeepsParent) {
  // Same entities, but the parent slice carries extra facts (the entity
  // appears on several pages): fact counts differ -> parent content is
  // strictly richer -> parent wins.
  auto parent = MakeSlice("http://a.com/sec", 0, 10, 5.0,
                          /*facts_per_entity=*/2);
  auto child = MakeSlice("http://a.com/sec/p1", 0, 10, 6.0);
  auto surviving = ConsolidateSlices({parent}, {child});
  ASSERT_EQ(surviving.size(), 1u);
  EXPECT_EQ(surviving[0].source_url, "http://a.com/sec");
}

TEST(ConsolidateTest, UncoveredChildrenAreDiscarded) {
  // A child disjoint from every parent slice was deliberately rejected at
  // the parent level; it must not resurface.
  auto parent = MakeSlice("http://a.com/sec", 0, 10, 8.0);
  auto covered = MakeSlice("http://a.com/sec/p1", 0, 10, 3.0);
  auto stray = MakeSlice("http://a.com/sec/p2", 50, 5, 2.0);
  auto surviving = ConsolidateSlices({parent}, {covered, stray});
  ASSERT_EQ(surviving.size(), 1u);
  EXPECT_EQ(surviving[0].source_url, "http://a.com/sec");
}

TEST(ConsolidateTest, NoChildrenKeepsAllParents) {
  auto p1 = MakeSlice("http://a.com/x", 0, 5, 2.0);
  auto p2 = MakeSlice("http://a.com/y", 5, 5, 3.0);
  auto surviving = ConsolidateSlices({p1, p2}, {});
  EXPECT_EQ(surviving.size(), 2u);
}

TEST(ConsolidateTest, NoParentsDiscardsChildren) {
  // If the parent detection selected nothing, children die with it (their
  // content was unprofitable at this aggregation level).
  auto child = MakeSlice("http://a.com/sec/p1", 0, 5, 1.0);
  auto surviving = ConsolidateSlices({}, {child});
  EXPECT_TRUE(surviving.empty());
}

TEST(ConsolidateTest, EachChildCountedForOneParentOnly) {
  // Two identical parent slices: the child set can only be consumed once;
  // the second parent keeps itself.
  auto p1 = MakeSlice("http://a.com/x", 0, 10, 5.0);
  auto p2 = MakeSlice("http://a.com/y", 0, 10, 5.0);
  auto child = MakeSlice("http://a.com/x/p", 0, 10, 7.0);
  auto surviving = ConsolidateSlices({p1, p2}, {child});
  ASSERT_EQ(surviving.size(), 2u);
  EXPECT_EQ(Urls(surviving),
            (std::set<std::string>{"http://a.com/x/p", "http://a.com/y"}));
}

TEST(ConsolidateTest, MixedOutcomeAcrossParents) {
  // Parent A is beaten by its children; parent B beats its child.
  auto pa = MakeSlice("http://a.com/a", 0, 10, 4.0);
  auto pb = MakeSlice("http://a.com/b", 20, 10, 9.0);
  auto ca1 = MakeSlice("http://a.com/a/1", 0, 5, 3.0);
  auto ca2 = MakeSlice("http://a.com/a/2", 5, 5, 3.0);
  auto cb = MakeSlice("http://a.com/b/1", 20, 10, 2.0);
  auto surviving = ConsolidateSlices({pa, pb}, {ca1, ca2, cb});
  EXPECT_EQ(Urls(surviving),
            (std::set<std::string>{"http://a.com/a/1", "http://a.com/a/2",
                                   "http://a.com/b"}));
}

}  // namespace
}  // namespace core
}  // namespace midas
