// Pins the per-source status contract of FrameworkResult: a source whose
// detector threw (kFailed) is distinguishable from one that completed and
// simply selected nothing (kNoSlices) — previously both just looked like
// "no slices from this URL". Also covers retry accounting: a detector that
// fails transiently recovers within the retry budget and still reports kOk.

#include "midas/core/framework.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <string>

#include "common/corpus_fixture.h"
#include "midas/core/midas_alg.h"
#include "midas/web/web_source.h"

namespace midas {
namespace core {
namespace {

/// Detects nothing, everywhere — every source completes cleanly with zero
/// slices.
class EmptyDetector : public SliceDetector {
 public:
  std::string name() const override { return "Empty"; }
  std::vector<DiscoveredSlice> Detect(
      const SourceInput&, const rdf::KnowledgeBase&) const override {
    return {};
  }
};

/// Throws on the first `failures_per_url` attempts for each URL, then
/// delegates — a transient failure the retry loop should absorb.
class FlakyDetector : public SliceDetector {
 public:
  FlakyDetector(const MidasOptions& options, int failures_per_url)
      : alg_(options), failures_per_url_(failures_per_url) {}

  std::string name() const override { return "Flaky"; }

  std::vector<DiscoveredSlice> Detect(
      const SourceInput& input, const rdf::KnowledgeBase& kb) const override {
    int seen;
    {
      std::lock_guard<std::mutex> lock(mu_);
      seen = attempts_[input.url]++;
    }
    if (seen < failures_per_url_) {
      throw std::runtime_error("transient failure on " + input.url);
    }
    return alg_.Detect(input, kb);
  }

 private:
  MidasAlg alg_;
  int failures_per_url_;
  mutable std::mutex mu_;
  mutable std::map<std::string, int> attempts_;
};

std::map<std::string, SourceReport> ByUrl(const FrameworkResult& result) {
  std::map<std::string, SourceReport> by_url;
  for (const auto& sr : result.sources) by_url[sr.url] = sr;
  return by_url;
}

FrameworkOptions FastRetries() {
  FrameworkOptions fw;
  fw.retry_backoff_ms = 1;
  return fw;
}

TEST(FrameworkStatusTest, DistinguishesFailedFromNoSlices) {
  auto dict = std::make_shared<rdf::Dictionary>();
  web::Corpus corpus(dict);
  tests::FillSectionedCorpus(&corpus);
  rdf::KnowledgeBase kb(dict);

  MidasOptions options;
  options.cost_model = CostModel::RunningExample();
  tests::ThrowingDetector detector(options, "sec1");
  MidasFramework framework(&detector, FastRetries());
  FrameworkResult result = framework.Run(corpus, kb);

  auto by_url = ByUrl(result);
  // The poisoned page shard threw on every attempt; so did its section
  // shard (the merged URL "/sec1" still contains the poison string).
  const auto& poisoned = by_url.at("http://a.com/sec1/page.htm");
  EXPECT_EQ(poisoned.status, SourceStatus::kFailed);
  EXPECT_EQ(poisoned.attempts, FrameworkOptions{}.max_retries + 1);
  EXPECT_NE(poisoned.error.find("synthetic detector failure"),
            std::string::npos);
  size_t failed = 0;
  for (const auto& sr : result.sources) {
    if (sr.status == SourceStatus::kFailed) {
      ++failed;
      EXPECT_NE(sr.url.find("sec1"), std::string::npos) << sr.url;
    }
  }
  EXPECT_EQ(failed, result.stats.shards_failed);
  // Healthy siblings completed and produced slices.
  const auto& healthy = by_url.at("http://a.com/sec0/page.htm");
  EXPECT_EQ(healthy.status, SourceStatus::kOk);
  EXPECT_EQ(healthy.attempts, 1u);
  EXPECT_TRUE(healthy.error.empty());
  // A contained failure is not a partial run — the rest completed fully.
  EXPECT_FALSE(result.partial);
  EXPECT_GE(result.stats.shards_failed, 1u);
}

TEST(FrameworkStatusTest, ZeroSlicesIsNoSlicesNotFailed) {
  auto dict = std::make_shared<rdf::Dictionary>();
  web::Corpus corpus(dict);
  tests::FillSectionedCorpus(&corpus);
  rdf::KnowledgeBase kb(dict);

  EmptyDetector detector;
  MidasFramework framework(&detector);
  FrameworkResult result = framework.Run(corpus, kb);

  ASSERT_FALSE(result.sources.empty());
  for (const auto& sr : result.sources) {
    EXPECT_EQ(sr.status, SourceStatus::kNoSlices) << sr.url;
    EXPECT_EQ(sr.attempts, 1u) << sr.url;
    EXPECT_TRUE(sr.error.empty()) << sr.url;
  }
  EXPECT_EQ(result.stats.shards_failed, 0u);
  EXPECT_FALSE(result.partial);
}

TEST(FrameworkStatusTest, TransientFailureRecoversWithinRetryBudget) {
  auto dict = std::make_shared<rdf::Dictionary>();
  web::Corpus corpus(dict);
  tests::FillSectionedCorpus(&corpus);
  rdf::KnowledgeBase kb(dict);

  MidasOptions options;
  options.cost_model = CostModel::RunningExample();
  FlakyDetector detector(options, /*failures_per_url=*/1);
  MidasFramework framework(&detector, FastRetries());
  FrameworkResult result = framework.Run(corpus, kb);

  ASSERT_FALSE(result.sources.empty());
  for (const auto& sr : result.sources) {
    EXPECT_NE(sr.status, SourceStatus::kFailed) << sr.url;
    EXPECT_EQ(sr.attempts, 2u) << sr.url;
  }
  EXPECT_EQ(result.stats.shards_failed, 0u);
  EXPECT_EQ(result.stats.shard_retries, result.sources.size());
  // The recovered run found the same slices a never-failing run would.
  MidasAlg plain(options);
  MidasFramework healthy(&plain);
  FrameworkResult expected = healthy.Run(corpus, kb);
  ASSERT_EQ(result.slices.size(), expected.slices.size());
  for (size_t i = 0; i < result.slices.size(); ++i) {
    EXPECT_EQ(result.slices[i].source_url, expected.slices[i].source_url);
    EXPECT_DOUBLE_EQ(result.slices[i].profit, expected.slices[i].profit);
  }
}

TEST(FrameworkStatusTest, AblationModeReportsPerExplicitSource) {
  auto dict = std::make_shared<rdf::Dictionary>();
  web::Corpus corpus(dict);
  tests::FillSectionedCorpus(&corpus);
  rdf::KnowledgeBase kb(dict);

  MidasOptions options;
  options.cost_model = CostModel::RunningExample();
  tests::ThrowingDetector detector(options, "sec2");
  FrameworkOptions fw = FastRetries();
  fw.use_hierarchy_rounds = false;
  MidasFramework framework(&detector, fw);
  FrameworkResult result = framework.Run(corpus, kb);

  // One report per explicit source — no synthesized parent URLs.
  EXPECT_EQ(result.sources.size(), corpus.NumSources());
  auto by_url = ByUrl(result);
  EXPECT_EQ(by_url.at("http://a.com/sec2/page.htm").status,
            SourceStatus::kFailed);
  EXPECT_EQ(by_url.at("http://a.com/sec3/page.htm").status,
            SourceStatus::kOk);
}

TEST(FrameworkStatusTest, StatusNamesAreStable) {
  EXPECT_STREQ(SourceStatusName(SourceStatus::kOk), "ok");
  EXPECT_STREQ(SourceStatusName(SourceStatus::kNoSlices), "no_slices");
  EXPECT_STREQ(SourceStatusName(SourceStatus::kPartial), "partial");
  EXPECT_STREQ(SourceStatusName(SourceStatus::kFailed), "failed");
  EXPECT_STREQ(SourceStatusName(SourceStatus::kCancelled), "cancelled");
}

}  // namespace
}  // namespace core
}  // namespace midas
