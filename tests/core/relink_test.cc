// Structural tests of non-canonical node removal and child re-linking
// (paper §III-A1 step 2, illustrated in Fig. 5b -> 5c): when a
// non-canonical slice is removed, each of its children re-attaches to each
// of its parents unless already reachable through another node.

#include <gtest/gtest.h>

#include <memory>

#include "midas/core/midas.h"

namespace midas {
namespace core {
namespace {

class RelinkTest : public ::testing::Test {
 protected:
  RelinkTest() : dict_(std::make_shared<rdf::Dictionary>()), kb_(dict_) {}

  void AddFact(const std::string& s, const std::string& p,
               const std::string& o, bool known = false) {
    rdf::Triple t(dict_->Intern(s), dict_->Intern(p), dict_->Intern(o));
    facts_.push_back(t);
    if (!known) return;
    kb_.Add(t);
  }

  void Build() {
    table_ = std::make_unique<FactTable>(facts_);
    profit_ = std::make_unique<ProfitContext>(*table_, kb_,
                                              CostModel::RunningExample());
    hierarchy_ = std::make_unique<SliceHierarchy>(*table_, *profit_,
                                                  HierarchyOptions());
  }

  uint32_t Find(std::vector<std::pair<std::string, std::string>> props) {
    std::vector<PropertyId> ids;
    for (const auto& [p, v] : props) {
      auto pid = dict_->Lookup(p);
      auto vid = dict_->Lookup(v);
      if (!pid || !vid) return kInvalidIndex;
      auto id = table_->catalog().Lookup(*pid, *vid);
      if (!id) return kInvalidIndex;
      ids.push_back(*id);
    }
    std::sort(ids.begin(), ids.end());
    for (uint32_t i = 0; i < hierarchy_->nodes().size(); ++i) {
      if (hierarchy_->nodes()[i].properties == ids) return i;
    }
    return kInvalidIndex;
  }

  bool HasChild(uint32_t parent, uint32_t child) {
    const auto& children = hierarchy_->nodes()[parent].children;
    return std::find(children.begin(), children.end(), child) !=
           children.end();
  }

  std::shared_ptr<rdf::Dictionary> dict_;
  rdf::KnowledgeBase kb_;
  std::vector<rdf::Triple> facts_;
  std::unique_ptr<FactTable> table_;
  std::unique_ptr<ProfitContext> profit_;
  std::unique_ptr<SliceHierarchy> hierarchy_;
};

TEST_F(RelinkTest, PaperFigure5Relinking) {
  // The running example's facts (skyrocket.de, Fig. 2).
  AddFact("Project Mercury", "category", "space_program");
  AddFact("Project Mercury", "started", "1959");
  AddFact("Project Mercury", "sponsor", "NASA");
  AddFact("Project Gemini", "category", "space_program");
  AddFact("Project Gemini", "sponsor", "NASA");
  AddFact("Atlas", "category", "rocket_family");
  AddFact("Atlas", "sponsor", "NASA");
  AddFact("Atlas", "started", "1957");
  AddFact("Apollo program", "category", "space_program");
  AddFact("Apollo program", "sponsor", "NASA");
  AddFact("Castor-4", "category", "rocket_family");
  AddFact("Castor-4", "started", "1971");
  AddFact("Castor-4", "sponsor", "NASA");
  Build();

  uint32_t s1 = Find({{"category", "space_program"},
                      {"started", "1959"},
                      {"sponsor", "NASA"}});
  uint32_t s4 = Find({{"category", "space_program"}, {"sponsor", "NASA"}});
  uint32_t s5 = Find({{"category", "rocket_family"}, {"sponsor", "NASA"}});
  uint32_t s2 = Find({{"category", "rocket_family"},
                      {"started", "1957"},
                      {"sponsor", "NASA"}});
  uint32_t s3 = Find({{"category", "rocket_family"},
                      {"started", "1971"},
                      {"sponsor", "NASA"}});
  uint32_t c3 = Find({{"started", "1959"}});
  uint32_t c1 = Find({{"category", "space_program"}});
  uint32_t c6 = Find({{"sponsor", "NASA"}});
  ASSERT_NE(s1, kInvalidIndex);
  ASSERT_NE(s4, kInvalidIndex);
  ASSERT_NE(s5, kInvalidIndex);
  ASSERT_NE(c3, kInvalidIndex);
  ASSERT_NE(c1, kInvalidIndex);
  ASSERT_NE(c6, kInvalidIndex);

  // Final hierarchy (after level-1 pruning): the singletons {c1}..{c5}
  // are all non-canonical and removed; only {c6} = {sponsor=NASA} is
  // canonical (its children S4 and S5 are both canonical, Fig. 5c).
  EXPECT_TRUE(hierarchy_->nodes()[c1].removed);
  EXPECT_TRUE(hierarchy_->nodes()[c3].removed);
  EXPECT_FALSE(hierarchy_->nodes()[c6].removed);
  EXPECT_TRUE(hierarchy_->nodes()[c6].is_canonical);
  EXPECT_TRUE(HasChild(c6, s4));
  EXPECT_TRUE(HasChild(c6, s5));

  // S1's one surviving parent is S4: the re-linking rule never attached S1
  // directly to {c1} because it stayed reachable through S4 (paper's
  // explicit example in §III-A1 step 2).
  size_t live_parents = 0;
  for (uint32_t p : hierarchy_->nodes()[s1].parents) {
    if (!hierarchy_->nodes()[p].removed) {
      ++live_parents;
      EXPECT_EQ(p, s4);
    }
  }
  EXPECT_EQ(live_parents, 1u);
  EXPECT_TRUE(HasChild(s4, s1));

  // S5 keeps its canonical children S2 and S3.
  EXPECT_TRUE(HasChild(s5, s2));
  EXPECT_TRUE(HasChild(s5, s3));

  // {c4,c6} = {started=1957, sponsor=NASA} was removed as non-canonical
  // and fully detached.
  uint32_t c46 = Find({{"started", "1957"}, {"sponsor", "NASA"}});
  ASSERT_NE(c46, kInvalidIndex);
  EXPECT_TRUE(hierarchy_->nodes()[c46].removed);
  EXPECT_TRUE(hierarchy_->nodes()[c46].children.empty());
  EXPECT_TRUE(hierarchy_->nodes()[c46].parents.empty());
}

TEST_F(RelinkTest, ChainOfRemovalsKeepsConnectivity) {
  // A 4-property single entity: every strict subset is non-canonical and
  // removed; the initial node must remain reachable from every singleton.
  AddFact("e", "a", "1");
  AddFact("e", "b", "2");
  AddFact("e", "c", "3");
  AddFact("e", "d", "4");
  Build();

  uint32_t init = Find({{"a", "1"}, {"b", "2"}, {"c", "3"}, {"d", "4"}});
  ASSERT_NE(init, kInvalidIndex);
  EXPECT_FALSE(hierarchy_->nodes()[init].removed);

  // 2^4 - 1 = 15 nodes generated, 14 removed.
  EXPECT_EQ(hierarchy_->stats().nodes_generated, 15u);
  EXPECT_EQ(hierarchy_->stats().noncanonical_removed, 14u);

  // All removed nodes are fully detached.
  for (const auto& node : hierarchy_->nodes()) {
    if (node.removed) {
      EXPECT_TRUE(node.children.empty());
      EXPECT_TRUE(node.parents.empty());
    }
  }
}

TEST_F(RelinkTest, DiamondKeepsSingleEdgeAfterRemoval) {
  // Entities engineered so {x} has two canonical children {x,y} and {x,z},
  // while {y} and {z} each have one and get removed; their children must
  // re-link to the singletons' parents without duplicate edges.
  for (int i = 0; i < 3; ++i) {
    std::string e = "p" + std::to_string(i);
    AddFact(e, "x", "1");
    AddFact(e, "y", "1");
  }
  for (int i = 0; i < 3; ++i) {
    std::string e = "q" + std::to_string(i);
    AddFact(e, "x", "1");
    AddFact(e, "z", "1");
  }
  Build();

  uint32_t x = Find({{"x", "1"}});
  uint32_t xy = Find({{"x", "1"}, {"y", "1"}});
  uint32_t xz = Find({{"x", "1"}, {"z", "1"}});
  uint32_t y = Find({{"y", "1"}});
  ASSERT_NE(x, kInvalidIndex);
  ASSERT_NE(xy, kInvalidIndex);
  ASSERT_NE(xz, kInvalidIndex);

  EXPECT_FALSE(hierarchy_->nodes()[x].removed);
  EXPECT_TRUE(hierarchy_->nodes()[x].is_canonical);
  EXPECT_TRUE(HasChild(x, xy));
  EXPECT_TRUE(HasChild(x, xz));
  // {y} has a single canonical child {x,y} -> removed.
  ASSERT_NE(y, kInvalidIndex);
  EXPECT_TRUE(hierarchy_->nodes()[y].removed);

  // No duplicate edges anywhere.
  for (const auto& node : hierarchy_->nodes()) {
    std::set<uint32_t> unique(node.children.begin(), node.children.end());
    EXPECT_EQ(unique.size(), node.children.size());
  }
}

}  // namespace
}  // namespace core
}  // namespace midas
