// Property tests of the seeded hierarchy path (framework rounds): seeding a
// hierarchy with a previous round's slices must preserve the definitional
// invariants and must never lose content relative to a fresh per-entity
// run, across random workloads.

#include <gtest/gtest.h>

#include <memory>
#include <unordered_set>

#include "midas/core/midas.h"
#include "midas/synth/single_source.h"

namespace midas {
namespace core {
namespace {

class SeededHierarchyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    synth::SingleSourceParams params;
    params.num_facts = 1500;
    params.num_slices = 10;
    params.num_optimal = 5;
    params.seed = GetParam();
    data_ = std::make_unique<synth::SingleSourceData>(
        synth::GenerateSingleSource(params));
    options_.cost_model = CostModel::Default();
  }

  SourceInput Input() const {
    SourceInput input;
    input.url = data_->url;
    input.facts = &data_->facts;
    return input;
  }

  // Distinct new facts covered by a slice list.
  size_t NewFactsCovered(const std::vector<DiscoveredSlice>& slices) const {
    std::unordered_set<rdf::Triple, rdf::TripleHash> fresh;
    for (const auto& s : slices) {
      for (const auto& t : s.facts) {
        if (!data_->kb->Contains(t)) fresh.insert(t);
      }
    }
    return fresh.size();
  }

  std::unique_ptr<synth::SingleSourceData> data_;
  MidasOptions options_;
};

TEST_P(SeededHierarchyTest, ReseedingOwnOutputIsAFixpoint) {
  MidasAlg alg(options_);
  auto first = alg.Detect(Input(), *data_->kb);
  ASSERT_FALSE(first.empty());

  // Feed the detected slices back as seeds (what the next framework round
  // does when the parent has no additional facts).
  SourceInput seeded = Input();
  for (const auto& s : first) seeded.seeds.push_back(s.properties);
  auto second = alg.Detect(seeded, *data_->kb);

  // Same coverage; property sets form the same multiset.
  EXPECT_EQ(NewFactsCovered(second), NewFactsCovered(first));
  std::multiset<std::string> a, b;
  for (const auto& s : first) a.insert(s.Description(*data_->dict));
  for (const auto& s : second) b.insert(s.Description(*data_->dict));
  EXPECT_EQ(a, b);
}

TEST_P(SeededHierarchyTest, PartialSeedsDoNotLoseCoverage) {
  MidasAlg alg(options_);
  auto full = alg.Detect(Input(), *data_->kb);
  if (full.size() < 2) GTEST_SKIP() << "needs >= 2 slices";

  // Seed with only half of the detected slices: uncovered entities get
  // fresh per-entity seeds, so total coverage must not shrink.
  SourceInput seeded = Input();
  for (size_t i = 0; i < full.size() / 2; ++i) {
    seeded.seeds.push_back(full[i].properties);
  }
  auto partial = alg.Detect(seeded, *data_->kb);
  EXPECT_GE(NewFactsCovered(partial), NewFactsCovered(full));
}

TEST_P(SeededHierarchyTest, SeededSlicesStayDefinitionConsistent) {
  MidasAlg alg(options_);
  SourceInput seeded = Input();
  // Seed with coarse single-property sets derived from the ground truth.
  for (const auto& gt : data_->optimal.slices) {
    if (gt.rule.empty()) continue;
    seeded.seeds.push_back(
        {PropertyPair{gt.rule[0].first, gt.rule[0].second}});
  }
  auto slices = alg.Detect(seeded, *data_->kb);

  FactTable table(data_->facts);
  for (const auto& slice : slices) {
    std::vector<PropertyId> props;
    for (const auto& pair : slice.properties) {
      auto id = table.catalog().Lookup(pair.predicate, pair.value);
      ASSERT_TRUE(id.has_value());
      props.push_back(*id);
    }
    std::sort(props.begin(), props.end());
    auto match = table.MatchEntities(props);
    EXPECT_EQ(match.size(), slice.entities.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededHierarchyTest,
                         ::testing::Values(301u, 302u, 303u, 304u, 305u));

}  // namespace
}  // namespace core
}  // namespace midas
