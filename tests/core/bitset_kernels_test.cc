// Portable vs AVX2 kernel equivalence on randomized word blocks, plus the
// dispatch/force-backend contract. Sizes sweep 0..~70 words to cover every
// vector-width remainder (the AVX2 kernels process 4 words per lane-step
// with a scalar tail).

#include "midas/core/bitset_kernels.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "midas/util/random.h"

namespace midas {
namespace core {
namespace kernels {
namespace {

std::vector<uint64_t> RandomWords(Rng* rng, size_t n) {
  std::vector<uint64_t> words(n);
  for (uint64_t& w : words) {
    w = rng->Next();
    // Mix in sparse and dense words so popcounts aren't all near 32.
    const uint64_t shape = rng->Uniform(4);
    if (shape == 0) w &= rng->Next();  // sparse
    if (shape == 1) w |= rng->Next();  // dense
    if (shape == 2 && rng->Bernoulli(0.2)) w = 0;
  }
  return words;
}

class BitsetKernelsTest : public ::testing::Test {
 protected:
  void TearDown() override { ForceBackendForTest(nullptr); }
};

TEST_F(BitsetKernelsTest, PortableTableIsAlwaysAvailable) {
  EXPECT_STREQ(PortableKernels().name, "portable");
  EXPECT_NE(PortableKernels().popcount, nullptr);
}

TEST_F(BitsetKernelsTest, ActiveIsOneOfTheProviders) {
  const std::string active = Active().name;
  if (Avx2Kernels() != nullptr) {
    EXPECT_EQ(active, "avx2");  // dispatch prefers the vector table
  } else {
    EXPECT_EQ(active, "portable");
  }
}

TEST_F(BitsetKernelsTest, ForceBackendPinsAndRestores) {
  ASSERT_TRUE(ForceBackendForTest("portable"));
  EXPECT_STREQ(Active().name, "portable");
  if (Avx2Kernels() != nullptr) {
    ASSERT_TRUE(ForceBackendForTest("avx2"));
    EXPECT_STREQ(Active().name, "avx2");
  } else {
    EXPECT_FALSE(ForceBackendForTest("avx2"));
    EXPECT_STREQ(Active().name, "portable");  // untouched on failure
  }
  EXPECT_FALSE(ForceBackendForTest("no-such-backend"));
  ForceBackendForTest(nullptr);  // back to runtime detection
  EXPECT_STREQ(Active().name,
               Avx2Kernels() != nullptr ? "avx2" : "portable");
}

TEST_F(BitsetKernelsTest, Avx2MatchesPortableOnRandomBlocks) {
  const KernelTable* avx2 = Avx2Kernels();
  if (avx2 == nullptr) GTEST_SKIP() << "AVX2 unavailable on this machine";
  const KernelTable& portable = PortableKernels();

  Rng rng(0x5EED);
  for (size_t n = 0; n <= 70; ++n) {
    for (int rep = 0; rep < 4; ++rep) {
      const std::vector<uint64_t> a = RandomWords(&rng, n);
      const std::vector<uint64_t> b = RandomWords(&rng, n);
      const uint64_t* ap = n ? a.data() : nullptr;
      const uint64_t* bp = n ? b.data() : nullptr;

      EXPECT_EQ(portable.popcount(ap, n), avx2->popcount(ap, n))
          << "popcount n=" << n;
      EXPECT_EQ(portable.and_count(ap, bp, n), avx2->and_count(ap, bp, n))
          << "and_count n=" << n;
      EXPECT_EQ(portable.andnot_count(ap, bp, n),
                avx2->andnot_count(ap, bp, n))
          << "andnot_count n=" << n;

      std::vector<uint64_t> dst_p = a, dst_v = a;
      portable.or_into(n ? dst_p.data() : nullptr, bp, n);
      avx2->or_into(n ? dst_v.data() : nullptr, bp, n);
      EXPECT_EQ(dst_p, dst_v) << "or_into n=" << n;

      dst_p = a;
      dst_v = a;
      portable.and_into(n ? dst_p.data() : nullptr, bp, n);
      avx2->and_into(n ? dst_v.data() : nullptr, bp, n);
      EXPECT_EQ(dst_p, dst_v) << "and_into n=" << n;
    }
  }
}

TEST_F(BitsetKernelsTest, Avx2IntersectMatchesPortable) {
  const KernelTable* avx2 = Avx2Kernels();
  if (avx2 == nullptr) GTEST_SKIP() << "AVX2 unavailable on this machine";
  const KernelTable& portable = PortableKernels();

  Rng rng(0xFACE);
  for (size_t n : {size_t{1}, size_t{3}, size_t{8}, size_t{17}, size_t{64}}) {
    for (size_t num_sets = 1; num_sets <= 5; ++num_sets) {
      std::vector<std::vector<uint64_t>> sets;
      std::vector<const uint64_t*> ptrs;
      for (size_t s = 0; s < num_sets; ++s) {
        sets.push_back(RandomWords(&rng, n));
        ptrs.push_back(sets.back().data());
      }
      std::vector<uint64_t> dst_p(n, 0xAAu), dst_v(n, 0x55u);
      portable.intersect_into(dst_p.data(), ptrs.data(), num_sets, n);
      avx2->intersect_into(dst_v.data(), ptrs.data(), num_sets, n);
      EXPECT_EQ(dst_p, dst_v) << "intersect n=" << n << " sets=" << num_sets;

      // Reference: explicit scalar AND of all sets.
      for (size_t i = 0; i < n; ++i) {
        uint64_t expect = sets[0][i];
        for (size_t s = 1; s < num_sets; ++s) expect &= sets[s][i];
        EXPECT_EQ(dst_p[i], expect);
      }
    }
  }
}

TEST_F(BitsetKernelsTest, PopcountMatchesKnownValues) {
  const std::vector<uint64_t> words = {0u, ~uint64_t{0}, 0x8000000000000001u,
                                       0x5555555555555555u};
  EXPECT_EQ(PortableKernels().popcount(words.data(), words.size()),
            0u + 64u + 2u + 32u);
  if (Avx2Kernels() != nullptr) {
    EXPECT_EQ(Avx2Kernels()->popcount(words.data(), words.size()),
              0u + 64u + 2u + 32u);
  }
}

}  // namespace
}  // namespace kernels
}  // namespace core
}  // namespace midas
