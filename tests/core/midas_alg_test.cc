#include "midas/core/midas_alg.h"

#include <gtest/gtest.h>

#include <memory>

#include "midas/core/fact_table.h"
#include "midas/rdf/dictionary.h"

namespace midas {
namespace core {
namespace {

class MidasAlgTest : public ::testing::Test {
 protected:
  MidasAlgTest() : dict_(std::make_shared<rdf::Dictionary>()), kb_(dict_) {}

  void AddFact(const std::string& s, const std::string& p,
               const std::string& o, bool known = false) {
    rdf::Triple t(dict_->Intern(s), dict_->Intern(p), dict_->Intern(o));
    facts_.push_back(t);
    if (known) kb_.Add(t);
  }

  SourceInput Input() {
    SourceInput input;
    input.url = "http://test.example.com";
    input.facts = &facts_;
    return input;
  }

  std::shared_ptr<rdf::Dictionary> dict_;
  rdf::KnowledgeBase kb_;
  std::vector<rdf::Triple> facts_;
};

TEST_F(MidasAlgTest, EmptySourceReturnsNothing) {
  MidasAlg alg;
  EXPECT_TRUE(alg.Detect(Input(), kb_).empty());
}

TEST_F(MidasAlgTest, AllKnownFactsReturnsNothing) {
  for (int i = 0; i < 10; ++i) {
    AddFact("e" + std::to_string(i), "cat", "x", /*known=*/true);
  }
  MidasOptions options;
  options.cost_model = CostModel::RunningExample();
  MidasAlg alg(options);
  EXPECT_TRUE(alg.Detect(Input(), kb_).empty());
}

TEST_F(MidasAlgTest, FindsTwoDisjointSlices) {
  // Two coherent groups, both new, both big enough to beat f_p = 1.
  for (int i = 0; i < 8; ++i) {
    std::string e = "rocket" + std::to_string(i);
    AddFact(e, "cat", "rocket");
    AddFact(e, "sponsor", "NASA");
  }
  for (int i = 0; i < 8; ++i) {
    std::string e = "cocktail" + std::to_string(i);
    AddFact(e, "cat", "cocktail");
    AddFact(e, "base", "tequila");
  }
  MidasOptions options;
  options.cost_model = CostModel::RunningExample();
  MidasAlg alg(options);
  auto slices = alg.Detect(Input(), kb_);

  ASSERT_EQ(slices.size(), 2u);
  size_t total_facts = slices[0].num_facts + slices[1].num_facts;
  EXPECT_EQ(total_facts, facts_.size());
  for (const auto& s : slices) {
    EXPECT_EQ(s.num_facts, s.num_new_facts);
    EXPECT_EQ(s.entities.size(), 8u);
    EXPECT_GT(s.profit, 0.0);
    EXPECT_EQ(s.source_url, "http://test.example.com");
  }
}

TEST_F(MidasAlgTest, SelectedSlicesOrderedCoarseFirstAndNonRedundant) {
  // One coherent group plus a sub-group: the parent slice subsumes the
  // child; only one slice should be returned.
  for (int i = 0; i < 10; ++i) {
    std::string e = "e" + std::to_string(i);
    AddFact(e, "cat", "x");
    if (i < 5) AddFact(e, "sub", "left");
  }
  MidasOptions options;
  options.cost_model = CostModel::RunningExample();
  MidasAlg alg(options);
  auto slices = alg.Detect(Input(), kb_);
  ASSERT_EQ(slices.size(), 1u);
  EXPECT_EQ(slices[0].entities.size(), 10u);
}

TEST_F(MidasAlgTest, TrainingCostSuppressesTinySlices) {
  // A slice worth less than f_p = 10 should not be reported under the
  // default cost model.
  AddFact("lonely", "cat", "x");
  AddFact("lonely", "p", "v");
  MidasAlg alg;  // default cost model
  EXPECT_TRUE(alg.Detect(Input(), kb_).empty());
}

TEST_F(MidasAlgTest, SeedsRestrictInitialHierarchy) {
  for (int i = 0; i < 6; ++i) {
    std::string e = "e" + std::to_string(i);
    AddFact(e, "cat", "x");
    AddFact(e, "grp", i < 3 ? "a" : "b");
  }
  MidasOptions options;
  options.cost_model = CostModel::RunningExample();
  MidasAlg alg(options);

  SourceInput input = Input();
  PropertyPair cat{*dict_->Lookup("cat"), *dict_->Lookup("x")};
  input.seeds = {{cat}};
  auto slices = alg.Detect(input, kb_);
  ASSERT_EQ(slices.size(), 1u);
  EXPECT_EQ(slices[0].entities.size(), 6u);
  ASSERT_EQ(slices[0].properties.size(), 1u);
  EXPECT_EQ(slices[0].properties[0], cat);
}

TEST_F(MidasAlgTest, SeedsWithUnknownPropertyAreDropped) {
  for (int i = 0; i < 6; ++i) {
    AddFact("e" + std::to_string(i), "cat", "x");
  }
  MidasOptions options;
  options.cost_model = CostModel::RunningExample();
  MidasAlg alg(options);

  SourceInput input = Input();
  // A seed referencing a property this source does not contain.
  input.seeds = {{PropertyPair{dict_->Intern("cat"), dict_->Intern("zzz")}}};
  auto slices = alg.Detect(input, kb_);
  // The bogus seed is dropped; uncovered entities get fresh initial sets,
  // so the real slice is still found.
  ASSERT_EQ(slices.size(), 1u);
  EXPECT_EQ(slices[0].entities.size(), 6u);
}

TEST_F(MidasAlgTest, UncoveredEntitiesGetFreshSeeds) {
  // Seed covers group a only; group b entities must still be discovered.
  for (int i = 0; i < 6; ++i) {
    std::string e = "a" + std::to_string(i);
    AddFact(e, "grp", "a");
    AddFact(e, "cat", "x");
  }
  for (int i = 0; i < 6; ++i) {
    std::string e = "b" + std::to_string(i);
    AddFact(e, "grp", "b");
    AddFact(e, "cat", "y");
  }
  MidasOptions options;
  options.cost_model = CostModel::RunningExample();
  MidasAlg alg(options);

  SourceInput input = Input();
  input.seeds = {{PropertyPair{*dict_->Lookup("grp"), *dict_->Lookup("a")}}};
  auto slices = alg.Detect(input, kb_);
  ASSERT_EQ(slices.size(), 2u);
}

TEST_F(MidasAlgTest, DescriptionRendersSortedProperties) {
  for (int i = 0; i < 8; ++i) {
    std::string e = "e" + std::to_string(i);
    AddFact(e, "cat", "rocket");
    AddFact(e, "sponsor", "NASA");
  }
  MidasOptions options;
  options.cost_model = CostModel::RunningExample();
  MidasAlg alg(options);
  auto slices = alg.Detect(Input(), kb_);
  ASSERT_EQ(slices.size(), 1u);
  // cat interned before sponsor -> sorted by term id.
  EXPECT_EQ(slices[0].Description(*dict_), "cat=rocket & sponsor=NASA");
}

}  // namespace
}  // namespace core
}  // namespace midas
