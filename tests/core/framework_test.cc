#include "midas/core/framework.h"

#include <gtest/gtest.h>

#include <memory>

#include "midas/core/midas_alg.h"
#include "midas/web/web_source.h"

namespace midas {
namespace core {
namespace {

class FrameworkTest : public ::testing::Test {
 protected:
  FrameworkTest()
      : dict_(std::make_shared<rdf::Dictionary>()),
        corpus_(dict_),
        kb_(dict_) {
    options_.cost_model = CostModel::RunningExample();
    alg_ = std::make_unique<MidasAlg>(options_);
  }

  std::shared_ptr<rdf::Dictionary> dict_;
  web::Corpus corpus_;
  rdf::KnowledgeBase kb_;
  MidasOptions options_;
  std::unique_ptr<MidasAlg> alg_;
};

TEST_F(FrameworkTest, EmptyCorpus) {
  MidasFramework framework(alg_.get());
  auto result = framework.Run(corpus_, kb_);
  EXPECT_TRUE(result.slices.empty());
  EXPECT_EQ(result.stats.shards_processed, 0u);
}

TEST_F(FrameworkTest, SinglePageCorpus) {
  for (int i = 0; i < 8; ++i) {
    corpus_.AddFactRaw("http://a.com/x/page.htm", "e" + std::to_string(i),
                       "cat", "rocket");
  }
  MidasFramework framework(alg_.get());
  auto result = framework.Run(corpus_, kb_);
  ASSERT_EQ(result.slices.size(), 1u);
  // The slice's facts live entirely in the page; the page-level profit
  // (smaller f_c·|T_W|) ties with coarser levels only via equal |T|, so
  // the finest granularity wins consolidation ties... the page is where
  // detection first found it and coarser levels cannot beat its profit.
  EXPECT_EQ(result.slices[0].source_url, "http://a.com/x/page.htm");
  EXPECT_EQ(result.slices[0].num_facts, 8u);
  EXPECT_GE(result.stats.rounds, 3u);  // depths 2, 1, 0
}

TEST_F(FrameworkTest, MergesSiblingPagesAtParentLevel) {
  // Each page alone is too small to pay the training cost (f_p = 1 vs
  // 2 new facts each worth 0.9); together under the section they are
  // profitable.
  for (int p = 0; p < 6; ++p) {
    std::string url = "http://a.com/sec/p" + std::to_string(p) + ".htm";
    std::string e = "e" + std::to_string(p);
    corpus_.AddFactRaw(url, e, "cat", "rocket");
  }
  // Single fact per page: page-level slice profit = 0.9 - 1 - ... < 0.
  MidasFramework framework(alg_.get());
  auto result = framework.Run(corpus_, kb_);
  ASSERT_EQ(result.slices.size(), 1u);
  EXPECT_EQ(result.slices[0].source_url, "http://a.com/sec");
  EXPECT_EQ(result.slices[0].num_facts, 6u);
}

TEST_F(FrameworkTest, KeepsDistinctSectionsSeparate) {
  for (int p = 0; p < 6; ++p) {
    corpus_.AddFactRaw("http://a.com/rockets/p" + std::to_string(p),
                       "r" + std::to_string(p), "cat", "rocket");
    corpus_.AddFactRaw("http://a.com/drinks/p" + std::to_string(p),
                       "d" + std::to_string(p), "cat", "cocktail");
  }
  MidasFramework framework(alg_.get());
  auto result = framework.Run(corpus_, kb_);
  ASSERT_EQ(result.slices.size(), 2u);
  std::set<std::string> urls = {result.slices[0].source_url,
                                result.slices[1].source_url};
  EXPECT_TRUE(urls.count("http://a.com/rockets"));
  EXPECT_TRUE(urls.count("http://a.com/drinks"));
}

TEST_F(FrameworkTest, DuplicateFactAcrossPagesCountedOnce) {
  // The same triple extracted from two sibling pages must not double-count
  // in the section's fact table.
  for (int p = 0; p < 2; ++p) {
    std::string url = "http://a.com/sec/p" + std::to_string(p);
    for (int i = 0; i < 6; ++i) {
      corpus_.AddFactRaw(url, "e" + std::to_string(i), "cat", "x");
    }
  }
  MidasFramework framework(alg_.get());
  auto result = framework.Run(corpus_, kb_);
  ASSERT_EQ(result.slices.size(), 1u);
  EXPECT_EQ(result.slices[0].num_facts, 6u);  // not 12
}

TEST_F(FrameworkTest, PerSourceModeSkipsRounds) {
  for (int i = 0; i < 8; ++i) {
    corpus_.AddFactRaw("http://a.com/x/page.htm", "e" + std::to_string(i),
                       "cat", "rocket");
    corpus_.AddFactRaw("http://b.com/y/page.htm", "f" + std::to_string(i),
                       "cat", "cocktail");
  }
  FrameworkOptions fw;
  fw.use_hierarchy_rounds = false;
  MidasFramework framework(alg_.get(), fw);
  auto result = framework.Run(corpus_, kb_);
  EXPECT_EQ(result.stats.rounds, 1u);
  EXPECT_EQ(result.stats.shards_processed, 2u);
  EXPECT_EQ(result.slices.size(), 2u);
}

TEST_F(FrameworkTest, ResultsSortedByProfitDescending) {
  for (int i = 0; i < 20; ++i) {
    corpus_.AddFactRaw("http://big.com/sec/p", "b" + std::to_string(i),
                       "cat", "rocket");
  }
  for (int i = 0; i < 5; ++i) {
    corpus_.AddFactRaw("http://small.com/sec/p", "s" + std::to_string(i),
                       "cat", "cocktail");
  }
  MidasFramework framework(alg_.get());
  auto result = framework.Run(corpus_, kb_);
  ASSERT_EQ(result.slices.size(), 2u);
  EXPECT_GE(result.slices[0].profit, result.slices[1].profit);
  EXPECT_EQ(result.slices[0].num_facts, 20u);
}

TEST_F(FrameworkTest, StatsPopulated) {
  for (int i = 0; i < 8; ++i) {
    corpus_.AddFactRaw("http://a.com/x/p1", "e" + std::to_string(i), "cat",
                       "x");
  }
  MidasFramework framework(alg_.get());
  auto result = framework.Run(corpus_, kb_);
  EXPECT_GT(result.stats.detector_calls, 0u);
  EXPECT_GT(result.stats.shards_processed, 0u);
  EXPECT_GE(result.stats.seconds, 0.0);
}

}  // namespace
}  // namespace core
}  // namespace midas
