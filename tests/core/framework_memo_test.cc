// DetectionMemo: the in-memory per-source detection cache behind `midas
// serve`. Pins the staleness contract — a second run over an unchanged
// corpus restores every detector output bit-identically without calling
// Detect, and a fact delta re-detects exactly the touched source and its
// URL ancestors.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/corpus_fixture.h"
#include "midas/core/framework.h"
#include "midas/core/midas_alg.h"
#include "midas/core/slice_io.h"
#include "midas/web/web_source.h"

namespace midas {
namespace core {
namespace {

std::string SlicesKey(const FrameworkResult& result,
                      const rdf::Dictionary& dict) {
  std::string key;
  for (const auto& s : result.slices) {
    key += s.source_url + "|" + s.Description(dict) + "|" +
           std::to_string(s.num_facts) + "|" +
           std::to_string(s.num_new_facts) + "|" +
           std::to_string(s.profit) + "\n";
  }
  return key;
}

class FrameworkMemoTest : public ::testing::Test {
 protected:
  FrameworkMemoTest()
      : dict_(std::make_shared<rdf::Dictionary>()),
        corpus_(dict_),
        kb_(dict_) {
    options_.cost_model = CostModel::RunningExample();
    alg_ = std::make_unique<MidasAlg>(options_);
    tests::FillSectionedCorpus(&corpus_);
  }

  FrameworkResult Run(DetectionMemo* memo, bool hierarchy = true,
                      uint64_t context = 7) {
    FrameworkOptions fw;
    fw.use_hierarchy_rounds = hierarchy;
    fw.memo = memo;
    fw.memo_context = context;
    MidasFramework framework(alg_.get(), fw);
    return framework.Run(corpus_, kb_);
  }

  std::shared_ptr<rdf::Dictionary> dict_;
  web::Corpus corpus_;
  rdf::KnowledgeBase kb_;
  MidasOptions options_;
  std::unique_ptr<MidasAlg> alg_;
};

TEST(DetectionMemoTest, LookupRequiresMatchingFingerprint) {
  DetectionMemo memo;
  DetectionMemo::Entry entry;
  entry.fingerprint = 42;
  entry.status = SourceStatus::kNoSlices;
  entry.attempts = 1;
  memo.Update("http://a.com", entry);
  EXPECT_EQ(memo.size(), 1u);

  DetectionMemo::Entry out;
  EXPECT_FALSE(memo.Lookup("http://a.com", 41, &out));
  EXPECT_FALSE(memo.Lookup("http://b.com", 42, &out));
  ASSERT_TRUE(memo.Lookup("http://a.com", 42, &out));
  EXPECT_EQ(out.status, SourceStatus::kNoSlices);
  EXPECT_EQ(out.attempts, 1u);

  memo.Clear();
  EXPECT_EQ(memo.size(), 0u);
  EXPECT_FALSE(memo.Lookup("http://a.com", 42, &out));
}

TEST(DetectionMemoTest, FingerprintCoversContextFactsAndSeeds) {
  rdf::Dictionary dict;
  std::vector<rdf::Triple> facts{
      rdf::Triple(dict.Intern("e"), dict.Intern("p"), dict.Intern("v"))};
  std::vector<std::vector<PropertyPair>> seeds{
      {PropertyPair{dict.Intern("p"), dict.Intern("v")}}};

  const uint64_t base = DetectionMemo::ShardFingerprint(1, facts, seeds);
  EXPECT_EQ(base, DetectionMemo::ShardFingerprint(1, facts, seeds))
      << "fingerprint must be deterministic";
  EXPECT_NE(base, DetectionMemo::ShardFingerprint(2, facts, seeds))
      << "context must be folded in";

  auto more_facts = facts;
  more_facts.push_back(
      rdf::Triple(dict.Intern("e2"), dict.Intern("p"), dict.Intern("v")));
  EXPECT_NE(base, DetectionMemo::ShardFingerprint(1, more_facts, seeds));

  auto more_seeds = seeds;
  more_seeds.push_back({});
  EXPECT_NE(base, DetectionMemo::ShardFingerprint(1, facts, more_seeds))
      << "child seeds must be folded in";

  EXPECT_NE(DetectionMemo::ShardFingerprint(1, {}, {}), 0u);
}

TEST_F(FrameworkMemoTest, SecondRunIsBitIdenticalWithoutDetection) {
  DetectionMemo memo;
  const auto cold = Run(&memo);
  EXPECT_EQ(cold.stats.memo_hits, 0u);
  EXPECT_EQ(cold.stats.memo_misses, cold.stats.shards_processed);
  EXPECT_GT(memo.size(), 0u);

  const auto warm = Run(&memo);
  EXPECT_EQ(warm.stats.memo_hits, warm.stats.shards_processed);
  EXPECT_EQ(warm.stats.memo_misses, 0u);
  EXPECT_EQ(SlicesKey(warm, *dict_), SlicesKey(cold, *dict_));
  ASSERT_EQ(warm.sources.size(), cold.sources.size());
  for (size_t i = 0; i < warm.sources.size(); ++i) {
    EXPECT_EQ(warm.sources[i].url, cold.sources[i].url);
    EXPECT_EQ(warm.sources[i].status, cold.sources[i].status);
  }
}

TEST_F(FrameworkMemoTest, DeltaReDetectsOnlyTouchedAncestry) {
  DetectionMemo memo;
  const auto cold = Run(&memo);
  const size_t shards = cold.stats.shards_processed;

  // New facts on one existing page: the page's fingerprint changes, and so
  // do its section and host ancestors (their shard facts contain the
  // subtree union) — everything else must memo-hit.
  corpus_.AddFactRaw("http://a.com/sec0/page.htm", "fresh0", "cat", "rocket");
  corpus_.AddFactRaw("http://a.com/sec0/page.htm", "fresh1", "cat", "rocket");
  const auto warm = Run(&memo);
  EXPECT_EQ(warm.stats.memo_misses, 3u)
      << "page + section + host re-detect";
  EXPECT_EQ(warm.stats.memo_hits, shards - 3u);

  // The re-detection must equal a cold run over the mutated corpus.
  DetectionMemo fresh;
  const auto reference = Run(&fresh);
  EXPECT_EQ(SlicesKey(warm, *dict_), SlicesKey(reference, *dict_));
}

TEST_F(FrameworkMemoTest, ContextMismatchForcesReDetection) {
  DetectionMemo memo;
  Run(&memo, /*hierarchy=*/true, /*context=*/7);
  const auto other = Run(&memo, /*hierarchy=*/true, /*context=*/8);
  EXPECT_EQ(other.stats.memo_hits, 0u)
      << "a different detector identity must not reuse memo entries";
  EXPECT_EQ(other.stats.memo_misses, other.stats.shards_processed);
}

TEST_F(FrameworkMemoTest, AblationModeMemoizesPerSource) {
  DetectionMemo memo;
  const auto cold = Run(&memo, /*hierarchy=*/false);
  EXPECT_EQ(cold.stats.memo_misses, corpus_.NumSources());

  const auto warm = Run(&memo, /*hierarchy=*/false);
  EXPECT_EQ(warm.stats.memo_hits, corpus_.NumSources());
  EXPECT_EQ(SlicesKey(warm, *dict_), SlicesKey(cold, *dict_));
}

TEST_F(FrameworkMemoTest, FailedSourcesAreNotMemoized) {
  tests::ThrowingDetector thrower(options_, "sec1");
  FrameworkOptions fw;
  fw.memo_context = 7;
  fw.max_retries = 0;
  DetectionMemo memo;
  fw.memo = &memo;
  MidasFramework framework(&thrower, fw);

  const auto cold = framework.Run(corpus_, kb_);
  EXPECT_GT(cold.stats.shards_failed, 0u);
  const auto warm = framework.Run(corpus_, kb_);
  // The poisoned shard keeps re-detecting (and re-failing); clean shards
  // memo-hit.
  EXPECT_EQ(warm.stats.shards_failed, cold.stats.shards_failed);
  EXPECT_EQ(warm.stats.memo_misses, cold.stats.shards_failed);
  EXPECT_EQ(warm.stats.memo_hits,
            warm.stats.shards_processed - cold.stats.shards_failed);
}

TEST_F(FrameworkMemoTest, NullMemoKeepsCountersAtZero) {
  const auto result = Run(nullptr);
  EXPECT_EQ(result.stats.memo_hits, 0u);
  EXPECT_EQ(result.stats.memo_misses, 0u);
}

}  // namespace
}  // namespace core
}  // namespace midas
