// Property tests pinning the semantics of the profit coefficients
// (Def. 9): on a fixed workload, raising each cost must move the output in
// the direction the model promises.

#include <gtest/gtest.h>

#include <memory>
#include <unordered_set>

#include "midas/core/midas.h"
#include "midas/synth/single_source.h"

namespace midas {
namespace core {
namespace {

class CostModelSensitivityTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    synth::SingleSourceParams params;
    params.num_facts = 2000;
    params.num_slices = 12;
    params.num_optimal = 6;
    params.seed = GetParam();
    data_ = std::make_unique<synth::SingleSourceData>(
        synth::GenerateSingleSource(params));
  }

  std::vector<DiscoveredSlice> Run(CostModel cost) {
    MidasOptions options;
    options.cost_model = cost;
    MidasAlg alg(options);
    SourceInput input;
    input.url = data_->url;
    input.facts = &data_->facts;
    return alg.Detect(input, *data_->kb);
  }

  static size_t DistinctNewFacts(const std::vector<DiscoveredSlice>& slices,
                                 const rdf::KnowledgeBase& kb) {
    std::unordered_set<rdf::Triple, rdf::TripleHash> fresh;
    for (const auto& s : slices) {
      for (const auto& t : s.facts) {
        if (!kb.Contains(t)) fresh.insert(t);
      }
    }
    return fresh.size();
  }

  std::unique_ptr<synth::SingleSourceData> data_;
};

TEST_P(CostModelSensitivityTest, TrainingCostReducesSliceCount) {
  size_t previous = SIZE_MAX;
  for (double fp : {0.5, 5.0, 20.0, 80.0, 400.0}) {
    CostModel cost;
    cost.f_p = fp;
    size_t count = Run(cost).size();
    EXPECT_LE(count, previous) << "f_p=" << fp;
    previous = count;
  }
  // At an absurd training cost nothing is worth a wrapper.
  CostModel prohibitive;
  prohibitive.f_p = 1e9;
  EXPECT_TRUE(Run(prohibitive).empty());
}

TEST_P(CostModelSensitivityTest, ValidationCostAboveUnityKillsEverything) {
  // f_v >= 1 means every new fact costs more to validate than it gains.
  CostModel cost;
  cost.f_v = 1.1;
  EXPECT_TRUE(Run(cost).empty());
}

TEST_P(CostModelSensitivityTest, ProfitsDecreaseMonotonicallyInEachCost) {
  CostModel base;
  auto baseline = Run(base);
  if (baseline.empty()) GTEST_SKIP();
  double base_total = 0;
  for (const auto& s : baseline) base_total += s.profit;

  for (int knob = 0; knob < 3; ++knob) {
    CostModel expensive = base;
    if (knob == 0) expensive.f_d *= 4;
    if (knob == 1) expensive.f_v *= 4;
    if (knob == 2) expensive.f_c *= 4;
    auto slices = Run(expensive);
    double total = 0;
    for (const auto& s : slices) total += s.profit;
    EXPECT_LE(total, base_total + 1e-9) << "knob " << knob;
  }
}

TEST_P(CostModelSensitivityTest, CheapTrainingNeverCoversLess) {
  CostModel cheap;
  cheap.f_p = 0.5;
  CostModel expensive;
  expensive.f_p = 50.0;
  size_t cheap_cover = DistinctNewFacts(Run(cheap), *data_->kb);
  size_t expensive_cover = DistinctNewFacts(Run(expensive), *data_->kb);
  EXPECT_GE(cheap_cover, expensive_cover);
}

INSTANTIATE_TEST_SUITE_P(Workloads, CostModelSensitivityTest,
                         ::testing::Values(401u, 402u, 403u));

}  // namespace
}  // namespace core
}  // namespace midas
