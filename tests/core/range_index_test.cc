#include "midas/core/range_index.h"

#include <gtest/gtest.h>

#include <memory>

#include "midas/core/midas.h"

namespace midas {
namespace core {
namespace {

TEST(ParseIntegerTest, StrictParsing) {
  int64_t v = 0;
  EXPECT_TRUE(NumericRangeIndex::ParseInteger("1957", &v));
  EXPECT_EQ(v, 1957);
  EXPECT_TRUE(NumericRangeIndex::ParseInteger("-42", &v));
  EXPECT_EQ(v, -42);
  EXPECT_TRUE(NumericRangeIndex::ParseInteger("0", &v));
  EXPECT_FALSE(NumericRangeIndex::ParseInteger("", &v));
  EXPECT_FALSE(NumericRangeIndex::ParseInteger("-", &v));
  EXPECT_FALSE(NumericRangeIndex::ParseInteger("12a", &v));
  EXPECT_FALSE(NumericRangeIndex::ParseInteger("1.5", &v));
  EXPECT_FALSE(NumericRangeIndex::ParseInteger("NASA", &v));
  EXPECT_FALSE(NumericRangeIndex::ParseInteger("99999999999999999999", &v));
}

class RangeIndexTest : public ::testing::Test {
 protected:
  RangeIndexTest()
      : dict_(std::make_shared<rdf::Dictionary>()), corpus_(dict_) {}
  std::shared_ptr<rdf::Dictionary> dict_;
  web::Corpus corpus_;
};

TEST_F(RangeIndexTest, BucketsNumericValues) {
  corpus_.AddFactRaw("http://x.com", "Atlas", "started", "1957");
  corpus_.AddFactRaw("http://x.com", "Mercury", "started", "1959");
  corpus_.AddFactRaw("http://x.com", "Castor", "started", "1971");
  corpus_.AddFactRaw("http://x.com", "Atlas", "sponsor", "NASA");

  NumericRangeIndex index(dict_.get(), corpus_, 10);
  EXPECT_EQ(index.size(), 3u);  // three numeric values

  auto b1957 = index.BucketOf(*dict_->Lookup("1957"));
  auto b1959 = index.BucketOf(*dict_->Lookup("1959"));
  auto b1971 = index.BucketOf(*dict_->Lookup("1971"));
  ASSERT_TRUE(b1957 && b1959 && b1971);
  EXPECT_EQ(*b1957, *b1959);  // same decade
  EXPECT_NE(*b1957, *b1971);
  EXPECT_EQ(dict_->Term(*b1957), "[1950..1960)");
  EXPECT_EQ(dict_->Term(*b1971), "[1970..1980)");
  EXPECT_FALSE(index.BucketOf(*dict_->Lookup("NASA")).has_value());
}

TEST_F(RangeIndexTest, NegativeValuesFloorCorrectly) {
  corpus_.AddFactRaw("http://x.com", "e", "delta", "-5");
  corpus_.AddFactRaw("http://x.com", "f", "delta", "-10");
  NumericRangeIndex index(dict_.get(), corpus_, 10);
  EXPECT_EQ(dict_->Term(*index.BucketOf(*dict_->Lookup("-5"))),
            "[-10..0)");
  EXPECT_EQ(dict_->Term(*index.BucketOf(*dict_->Lookup("-10"))),
            "[-10..0)");
}

TEST_F(RangeIndexTest, FactTableGainsRangeProperties) {
  corpus_.AddFactRaw("http://x.com", "Atlas", "started", "1957");
  corpus_.AddFactRaw("http://x.com", "Mercury", "started", "1959");
  NumericRangeIndex index(dict_.get(), corpus_, 10);

  FactTableOptions options;
  options.range_index = &index;
  FactTable table(corpus_.sources()[0].facts, options);

  // Exact properties (1957, 1959) + one shared range property.
  EXPECT_EQ(table.catalog().size(), 3u);
  auto range_prop = table.catalog().Lookup(*dict_->Lookup("started"),
                                           *dict_->Lookup("[1950..1960)"));
  ASSERT_TRUE(range_prop.has_value());
  EXPECT_EQ(table.property_entities(*range_prop).size(), 2u);
}

TEST_F(RangeIndexTest, MidasDiscoversDecadeSlice) {
  // Six satellites launched across one decade, with distinct years: only
  // the range property unites them.
  for (int i = 0; i < 6; ++i) {
    corpus_.AddFactRaw("http://space.example.com/sats",
                       "sat" + std::to_string(i), "launched",
                       std::to_string(1960 + i));
  }
  NumericRangeIndex index(dict_.get(), corpus_, 10);
  rdf::KnowledgeBase kb(dict_);

  MidasOptions options;
  options.cost_model = CostModel::RunningExample();

  // Without the extension: six singleton-year properties, nothing groups.
  {
    MidasAlg alg(options);
    SourceInput input;
    input.url = "http://space.example.com/sats";
    input.facts = &corpus_.sources()[0].facts;
    auto slices = alg.Detect(input, kb);
    EXPECT_TRUE(slices.empty());
  }

  // With the extension: the decade slice is found.
  options.fact_table.range_index = &index;
  {
    MidasAlg alg(options);
    SourceInput input;
    input.url = "http://space.example.com/sats";
    input.facts = &corpus_.sources()[0].facts;
    auto slices = alg.Detect(input, kb);
    ASSERT_EQ(slices.size(), 1u);
    EXPECT_EQ(slices[0].entities.size(), 6u);
    EXPECT_EQ(slices[0].Description(*dict_), "launched=[1960..1970)");
    EXPECT_GT(slices[0].profit, 0.0);
  }
}

}  // namespace
}  // namespace core
}  // namespace midas
