#include "midas/core/profit.h"

#include <gtest/gtest.h>

#include <memory>

#include "midas/rdf/dictionary.h"

namespace midas {
namespace core {
namespace {

// A source with 4 entities, 2 facts each; entities e0, e1 are fully known
// to the KB, e2, e3 are fully new.
class ProfitTest : public ::testing::Test {
 protected:
  ProfitTest() : dict_(std::make_shared<rdf::Dictionary>()), kb_(dict_) {
    for (int e = 0; e < 4; ++e) {
      for (int f = 0; f < 2; ++f) {
        rdf::Triple t(dict_->Intern("e" + std::to_string(e)),
                      dict_->Intern("p" + std::to_string(f)),
                      dict_->Intern("v" + std::to_string(e)));
        facts_.push_back(t);
        if (e < 2) kb_.Add(t);
      }
    }
    table_ = std::make_unique<FactTable>(facts_);
  }

  std::shared_ptr<rdf::Dictionary> dict_;
  rdf::KnowledgeBase kb_;
  std::vector<rdf::Triple> facts_;
  std::unique_ptr<FactTable> table_;
};

TEST_F(ProfitTest, PerEntityCounts) {
  ProfitContext ctx(*table_, kb_, CostModel::Default());
  for (EntityId e = 0; e < 4; ++e) {
    EXPECT_EQ(ctx.entity_fact_count(e), 2u);
    EXPECT_EQ(ctx.entity_new_count(e), e < 2 ? 0u : 2u);
  }
  EXPECT_DOUBLE_EQ(ctx.source_crawl_cost(), 0.008);  // f_c * 8
}

TEST_F(ProfitTest, SliceProfitFormula) {
  CostModel cost;  // defaults: fp=10, fc=0.001, fd=0.01, fv=0.1
  ProfitContext ctx(*table_, kb_, cost);
  // Slice over {e2, e3}: 4 facts, all new.
  double profit = ctx.SliceProfit({2, 3});
  // 4 - (10 + 0.008) - 0.04 - 0.4 = -6.448
  EXPECT_NEAR(profit, -6.448, 1e-9);

  // Empty entity set: pure cost.
  EXPECT_NEAR(ctx.SliceProfit({}), -10.008, 1e-9);
}

TEST_F(ProfitTest, CheaperCostModelFlipsSign) {
  CostModel cost = CostModel::RunningExample();  // fp = 1
  ProfitContext ctx(*table_, kb_, cost);
  // 4 - 1.008 - 0.04 - 0.4 = 2.552
  EXPECT_NEAR(ctx.SliceProfit({2, 3}), 2.552, 1e-9);
}

TEST_F(ProfitTest, SetProfitUnionSemantics) {
  CostModel cost = CostModel::RunningExample();
  ProfitContext ctx(*table_, kb_, cost);
  std::vector<EntityId> a = {2}, b = {3}, overlap = {2, 3};

  // Disjoint slices: each contributes gain, two training costs.
  double two = ctx.SetProfit({&a, &b});
  EXPECT_NEAR(two, 4 - 2 - 0.008 - 0.04 - 0.4, 1e-9);

  // Fully overlapping slices: gain counted once, both trainings paid.
  double dup = ctx.SetProfit({&overlap, &overlap});
  EXPECT_NEAR(dup, 4 - 2 - 0.008 - 0.04 - 0.4, 1e-9);

  // Empty set is exactly zero.
  EXPECT_DOUBLE_EQ(ctx.SetProfit({}), 0.0);
}

TEST_F(ProfitTest, AccumulatorMatchesSetProfit) {
  CostModel cost = CostModel::RunningExample();
  ProfitContext ctx(*table_, kb_, cost);
  std::vector<EntityId> a = {0, 2}, b = {2, 3};

  ProfitContext::SetAccumulator acc(ctx);
  EXPECT_DOUBLE_EQ(acc.Profit(), 0.0);

  double delta_a = acc.DeltaIfAdd(a);
  acc.Add(a);
  EXPECT_NEAR(acc.Profit(), delta_a, 1e-12);
  EXPECT_NEAR(acc.Profit(), ctx.SetProfit({&a}), 1e-12);

  double delta_b = acc.DeltaIfAdd(b);
  acc.Add(b);
  EXPECT_NEAR(acc.Profit(), ctx.SetProfit({&a, &b}), 1e-12);
  EXPECT_NEAR(delta_a + delta_b, acc.Profit(), 1e-12);

  EXPECT_EQ(acc.num_slices(), 2u);
  EXPECT_TRUE(acc.Covers(0));
  EXPECT_TRUE(acc.Covers(3));
  EXPECT_FALSE(acc.Covers(1));
}

TEST_F(ProfitTest, DeltaIfAddDoesNotMutate) {
  ProfitContext ctx(*table_, kb_, CostModel::RunningExample());
  ProfitContext::SetAccumulator acc(ctx);
  std::vector<EntityId> a = {2};
  double d1 = acc.DeltaIfAdd(a);
  double d2 = acc.DeltaIfAdd(a);
  EXPECT_DOUBLE_EQ(d1, d2);
  EXPECT_DOUBLE_EQ(acc.Profit(), 0.0);
}

TEST(CostModelTest, PaperDefaults) {
  CostModel def = CostModel::Default();
  EXPECT_DOUBLE_EQ(def.f_p, 10.0);
  EXPECT_DOUBLE_EQ(def.f_c, 0.001);
  EXPECT_DOUBLE_EQ(def.f_d, 0.01);
  EXPECT_DOUBLE_EQ(def.f_v, 0.1);
  EXPECT_DOUBLE_EQ(CostModel::RunningExample().f_p, 1.0);
}

}  // namespace
}  // namespace core
}  // namespace midas
