#include "midas/core/small_vec.h"

#include <cstdint>
#include <numeric>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace midas {
namespace core {
namespace {

TEST(SmallVecTest, StartsEmptyInline) {
  SmallVec<uint32_t, 4> v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.capacity(), 4u);
}

TEST(SmallVecTest, PushBackWithinInlineCapacity) {
  SmallVec<uint32_t, 4> v;
  for (uint32_t i = 0; i < 4; ++i) v.push_back(i * 10);
  EXPECT_EQ(v.size(), 4u);
  EXPECT_EQ(v.capacity(), 4u);  // still inline
  for (uint32_t i = 0; i < 4; ++i) EXPECT_EQ(v[i], i * 10);
  EXPECT_EQ(v.back(), 30u);
}

TEST(SmallVecTest, SpillsToHeapAndKeepsContents) {
  SmallVec<uint32_t, 2> v;
  for (uint32_t i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_GE(v.capacity(), 100u);
  for (uint32_t i = 0; i < 100; ++i) EXPECT_EQ(v[i], i);
}

TEST(SmallVecTest, AssignRangeAndFill) {
  std::vector<uint32_t> src(37);
  std::iota(src.begin(), src.end(), 5);
  SmallVec<uint32_t, 4> v;
  v.assign(src.begin(), src.end());
  ASSERT_EQ(v.size(), src.size());
  EXPECT_TRUE(std::equal(v.begin(), v.end(), src.begin()));

  v.assign(3, 9u);
  ASSERT_EQ(v.size(), 3u);
  for (uint32_t x : v) EXPECT_EQ(x, 9u);
}

TEST(SmallVecTest, ClearKeepsCapacity) {
  SmallVec<uint32_t, 2> v;
  for (uint32_t i = 0; i < 20; ++i) v.push_back(i);
  const size_t cap = v.capacity();
  v.clear();
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.capacity(), cap);
}

TEST(SmallVecTest, TruncateDropsTail) {
  SmallVec<uint32_t, 4> v;
  for (uint32_t i = 0; i < 10; ++i) v.push_back(i);
  v.truncate(3);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v.back(), 2u);
}

TEST(SmallVecTest, CopySemantics) {
  SmallVec<uint32_t, 2> heap;
  for (uint32_t i = 0; i < 16; ++i) heap.push_back(i);
  SmallVec<uint32_t, 2> copy(heap);
  EXPECT_EQ(copy, heap);
  copy.push_back(99);
  EXPECT_NE(copy, heap);  // deep copy: originals unaffected
  EXPECT_EQ(heap.size(), 16u);

  SmallVec<uint32_t, 2> assigned;
  assigned = heap;
  EXPECT_EQ(assigned, heap);
}

TEST(SmallVecTest, MoveStealsHeapAndCopiesInline) {
  SmallVec<uint32_t, 2> heap;
  for (uint32_t i = 0; i < 16; ++i) heap.push_back(i);
  const uint32_t* block = heap.data();
  SmallVec<uint32_t, 2> stolen(std::move(heap));
  EXPECT_EQ(stolen.data(), block);  // heap block moved, not copied
  EXPECT_EQ(stolen.size(), 16u);
  EXPECT_TRUE(heap.empty());  // NOLINT(bugprone-use-after-move)

  SmallVec<uint32_t, 2> inline_src;
  inline_src.push_back(7);
  SmallVec<uint32_t, 2> inline_dst(std::move(inline_src));
  ASSERT_EQ(inline_dst.size(), 1u);
  EXPECT_EQ(inline_dst[0], 7u);
}

TEST(SmallVecTest, MoveAssignReleasesOldHeapBlock) {
  SmallVec<uint32_t, 2> a;
  for (uint32_t i = 0; i < 8; ++i) a.push_back(i);
  SmallVec<uint32_t, 2> b;
  for (uint32_t i = 0; i < 32; ++i) b.push_back(i + 100);
  a = std::move(b);
  ASSERT_EQ(a.size(), 32u);
  EXPECT_EQ(a[0], 100u);
}

TEST(SmallVecTest, WorksInsideStdVectorReallocation) {
  std::vector<SmallVec<uint32_t, 3>> outer;
  for (uint32_t i = 0; i < 50; ++i) {
    SmallVec<uint32_t, 3> v;
    for (uint32_t j = 0; j <= i % 7; ++j) v.push_back(i * 100 + j);
    outer.push_back(std::move(v));
  }
  for (uint32_t i = 0; i < 50; ++i) {
    ASSERT_EQ(outer[i].size(), i % 7 + 1u);
    for (uint32_t j = 0; j <= i % 7; ++j) EXPECT_EQ(outer[i][j], i * 100 + j);
  }
}

}  // namespace
}  // namespace core
}  // namespace midas
