#include "midas/core/entity_bitset.h"

#include <gtest/gtest.h>

#include <vector>

#include "midas/util/random.h"

namespace midas {
namespace core {
namespace {

TEST(EntityBitsetTest, EmptyAndReset) {
  EntityBitset b;
  EXPECT_EQ(b.universe(), 0u);
  EXPECT_EQ(b.num_words(), 0u);
  EXPECT_EQ(b.Count(), 0u);
  EXPECT_FALSE(b.AnySet());

  b.Reset(70);
  EXPECT_EQ(b.universe(), 70u);
  EXPECT_EQ(b.num_words(), 2u);
  EXPECT_EQ(b.Count(), 0u);
}

TEST(EntityBitsetTest, SetTestCount) {
  EntityBitset b(130);
  b.Set(0);
  b.Set(63);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(63));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(129));
  EXPECT_FALSE(b.Test(1));
  EXPECT_FALSE(b.Test(128));
  EXPECT_EQ(b.Count(), 4u);
  EXPECT_TRUE(b.AnySet());
}

TEST(EntityBitsetTest, FillAllMasksTrailingWord) {
  // A non-multiple-of-64 universe must not leak bits past the universe.
  for (size_t universe : {1u, 63u, 64u, 65u, 100u, 127u, 128u}) {
    EntityBitset b(universe);
    b.FillAll();
    EXPECT_EQ(b.Count(), universe) << "universe=" << universe;
  }
}

TEST(EntityBitsetTest, ClearAllKeepsUniverse) {
  EntityBitset b(100);
  b.FillAll();
  b.ClearAll();
  EXPECT_EQ(b.universe(), 100u);
  EXPECT_EQ(b.Count(), 0u);
}

TEST(EntityBitsetTest, OrAndAssign) {
  EntityBitset a(200), b(200);
  a.Set(3);
  a.Set(100);
  b.Set(100);
  b.Set(150);

  EntityBitset u;
  u.Assign(a);
  u.OrWith(b);
  EXPECT_EQ(u.ToVector(), (std::vector<EntityId>{3, 100, 150}));

  EntityBitset i;
  i.Assign(a);
  i.AndWith(b);
  EXPECT_EQ(i.ToVector(), (std::vector<EntityId>{100}));
}

TEST(EntityBitsetTest, CountAndCountAndNot) {
  EntityBitset a(128), b(128);
  for (EntityId e : {0u, 5u, 64u, 90u, 127u}) a.Set(e);
  for (EntityId e : {5u, 64u, 100u}) b.Set(e);
  EXPECT_EQ(EntityBitset::CountAnd(a, b), 2u);
  EXPECT_EQ(EntityBitset::CountAndNot(a, b), 3u);
  EXPECT_EQ(EntityBitset::CountAndNot(b, a), 1u);
}

TEST(EntityBitsetTest, AssignListRoundTrip) {
  std::vector<EntityId> list = {1, 2, 63, 64, 65, 199};
  EntityBitset b;
  b.AssignList(list, 200);
  EXPECT_EQ(b.Count(), list.size());
  EXPECT_EQ(b.ToVector(), list);

  std::vector<EntityId> out = {7};
  b.AppendTo(&out);
  EXPECT_EQ(out.size(), list.size() + 1);
  EXPECT_EQ(out[0], 7u);
  EXPECT_EQ(out[1], 1u);
}

TEST(EntityBitsetTest, ForEachAscending) {
  EntityBitset b(300);
  std::vector<EntityId> expect = {0, 64, 128, 192, 256, 299};
  for (EntityId e : expect) b.Set(e);
  std::vector<EntityId> got;
  b.ForEach([&](EntityId e) { got.push_back(e); });
  EXPECT_EQ(got, expect);
}

TEST(EntityBitsetTest, EqualityIncludesUniverse) {
  EntityBitset a(64), b(64), c(65);
  a.Set(3);
  b.Set(3);
  c.Set(3);
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  b.Set(4);
  EXPECT_FALSE(a == b);
}

TEST(EntityBitsetTest, MoveStealsStorage) {
  EntityBitset big(1000);
  big.Set(999);
  big.Set(0);
  EntityBitset moved(std::move(big));
  EXPECT_EQ(moved.universe(), 1000u);
  EXPECT_TRUE(moved.Test(999));
  EXPECT_EQ(moved.Count(), 2u);
  EXPECT_EQ(big.universe(), 0u);  // NOLINT(bugprone-use-after-move): pinned

  EntityBitset small(100);
  small.Set(42);
  EntityBitset target;
  target = std::move(small);
  EXPECT_TRUE(target.Test(42));
  EXPECT_EQ(target.Count(), 1u);
}

TEST(EntityBitsetTest, ResetInDrawsFromArena) {
  WordArena arena;
  EntityBitset b;
  b.ResetIn(1000, &arena);  // 16 words > inline capacity -> arena block
  EXPECT_EQ(b.universe(), 1000u);
  EXPECT_EQ(b.Count(), 0u);
  EXPECT_GT(arena.allocated_words(), 0u);
  b.Set(999);
  EXPECT_TRUE(b.Test(999));

  // A later Reset to a smaller universe reuses the arena block in place —
  // no heap allocation, arena usage unchanged.
  const size_t used = arena.allocated_words();
  b.Reset(500);
  EXPECT_EQ(arena.allocated_words(), used);
  EXPECT_EQ(b.Count(), 0u);

  // Small universes fit inline; the arena is not consulted.
  WordArena untouched;
  EntityBitset small;
  small.ResetIn(64, &untouched);
  EXPECT_EQ(untouched.allocated_words(), 0u);
  small.Set(63);
  EXPECT_EQ(small.Count(), 1u);
}

TEST(EntityBitsetTest, ArenaBackedAlgebraMatchesHeapBacked) {
  WordArena arena;
  Rng rng(7);
  const size_t universe = 777;
  EntityBitset arena_a, heap_a(universe), arena_b, heap_b(universe);
  arena_a.ResetIn(universe, &arena);
  arena_b.ResetIn(universe, &arena);
  for (size_t k = 0; k < 300; ++k) {
    EntityId e = static_cast<EntityId>(rng.Uniform(universe));
    arena_a.Set(e);
    heap_a.Set(e);
    EntityId f = static_cast<EntityId>(rng.Uniform(universe));
    arena_b.Set(f);
    heap_b.Set(f);
  }
  EXPECT_TRUE(arena_a == heap_a);
  EXPECT_EQ(EntityBitset::CountAnd(arena_a, arena_b),
            EntityBitset::CountAnd(heap_a, heap_b));
  arena_a.OrWith(arena_b);
  heap_a.OrWith(heap_b);
  EXPECT_TRUE(arena_a == heap_a);
  EXPECT_EQ(arena_a.Count(), heap_a.Count());
}

// Mismatched word counts are a programming error: the word sweeps index in
// lockstep, so a silent mismatch would read/write out of bounds. Debug
// builds must die; release builds compile the check out (pinned so the
// guard is never accidentally weakened).
TEST(EntityBitsetDeathTest, MismatchedWordCountsDieInDebug) {
#ifdef NDEBUG
  GTEST_SKIP() << "MIDAS_DCHECK compiles out in release builds";
#else
  EntityBitset a(64), b(256);
  a.Set(1);
  b.Set(1);
  EXPECT_DEATH(a.OrWith(b), "OrWith num_words mismatch");
  EXPECT_DEATH(a.AndWith(b), "AndWith num_words mismatch");
  EXPECT_DEATH(EntityBitset::CountAnd(a, b), "CountAnd num_words mismatch");
  EXPECT_DEATH(EntityBitset::CountAndNot(a, b),
               "CountAndNot num_words mismatch");
#endif
}

TEST(EntityBitsetTest, RandomizedAgainstReferenceSet) {
  Rng rng(42);
  for (int round = 0; round < 50; ++round) {
    const size_t universe = 1 + rng.Uniform(300);
    std::vector<char> ref_a(universe, 0), ref_b(universe, 0);
    EntityBitset a(universe), b(universe);
    for (size_t k = 0; k < universe / 2; ++k) {
      EntityId e = static_cast<EntityId>(rng.Uniform(universe));
      a.Set(e);
      ref_a[e] = 1;
      EntityId f = static_cast<EntityId>(rng.Uniform(universe));
      b.Set(f);
      ref_b[f] = 1;
    }
    size_t expect_and = 0, expect_andnot = 0, expect_a = 0;
    for (size_t e = 0; e < universe; ++e) {
      expect_a += ref_a[e] != 0;
      expect_and += (ref_a[e] && ref_b[e]);
      expect_andnot += (ref_a[e] && !ref_b[e]);
    }
    EXPECT_EQ(a.Count(), expect_a);
    EXPECT_EQ(EntityBitset::CountAnd(a, b), expect_and);
    EXPECT_EQ(EntityBitset::CountAndNot(a, b), expect_andnot);
    for (size_t e = 0; e < universe; ++e) {
      ASSERT_EQ(a.Test(static_cast<EntityId>(e)), ref_a[e] != 0);
    }
  }
}

}  // namespace
}  // namespace core
}  // namespace midas
