// Edge-case tests for option interplay: multivalued combination caps,
// range+seed combination, and KV-mode generation.

#include <gtest/gtest.h>

#include <memory>

#include "midas/core/midas.h"
#include "midas/synth/corpus_generator.h"

namespace midas {
namespace core {
namespace {

class OptionsEdgeTest : public ::testing::Test {
 protected:
  OptionsEdgeTest() : dict_(std::make_shared<rdf::Dictionary>()), kb_(dict_) {}

  void AddFact(const std::string& s, const std::string& p,
               const std::string& o) {
    facts_.emplace_back(dict_->Intern(s), dict_->Intern(p),
                        dict_->Intern(o));
  }

  std::shared_ptr<rdf::Dictionary> dict_;
  rdf::KnowledgeBase kb_;
  std::vector<rdf::Triple> facts_;
};

TEST_F(OptionsEdgeTest, InitialComboCapBoundsMultivaluedBlowup) {
  // One entity with 4 predicates x 4 values each = 256 possible combos.
  for (int p = 0; p < 4; ++p) {
    for (int v = 0; v < 4; ++v) {
      AddFact("e", "p" + std::to_string(p), "v" + std::to_string(v));
    }
  }
  FactTable table(facts_);
  ProfitContext profit(table, kb_, CostModel::RunningExample());

  HierarchyOptions options;
  options.max_initial_slices_per_entity = 8;
  auto sets = BuildEntityInitialSets(table, {0}, options);
  EXPECT_LE(sets.size(), 8u);
  for (const auto& set : sets) {
    EXPECT_LE(set.size(), 4u);
  }

  options.max_initial_slices_per_entity = 1000;
  sets = BuildEntityInitialSets(table, {0}, options);
  EXPECT_EQ(sets.size(), 256u);
}

TEST_F(OptionsEdgeTest, RangeIndexAndSeedsCompose) {
  // Entities grouped only by decade; seed the detection with the decade
  // property the way a framework round would.
  web::Corpus corpus(dict_);
  for (int i = 0; i < 6; ++i) {
    std::string e = "e" + std::to_string(i);
    corpus.AddFactRaw("http://x.com/sec", e, "year",
                      std::to_string(1990 + i));
  }
  NumericRangeIndex ranges(dict_.get(), corpus, 10);

  MidasOptions options;
  options.cost_model = CostModel::RunningExample();
  options.fact_table.range_index = &ranges;
  MidasAlg alg(options);

  SourceInput input;
  input.url = "http://x.com/sec";
  input.facts = &corpus.sources()[0].facts;
  auto bucket = dict_->Lookup("[1990..2000)");
  ASSERT_TRUE(bucket.has_value());
  input.seeds = {{PropertyPair{*dict_->Lookup("year"), *bucket}}};

  auto slices = alg.Detect(input, kb_);
  ASSERT_EQ(slices.size(), 1u);
  EXPECT_EQ(slices[0].entities.size(), 6u);
  EXPECT_EQ(slices[0].Description(*dict_), "year=[1990..2000)");
}

TEST_F(OptionsEdgeTest, ZeroedCostModelSelectsEverythingNew) {
  for (int i = 0; i < 4; ++i) {
    AddFact("e" + std::to_string(i), "cat",
            "c" + std::to_string(i % 2));
  }
  MidasOptions options;
  options.cost_model = CostModel{0.0, 0.0, 0.0, 0.0};
  MidasAlg alg(options);
  SourceInput input;
  input.url = "http://x.com";
  input.facts = &facts_;
  auto slices = alg.Detect(input, kb_);
  size_t covered = 0;
  for (const auto& s : slices) covered += s.num_new_facts;
  EXPECT_EQ(covered, facts_.size());
}

TEST(KnowledgeVaultModeTest, GeneratesPartiallyKnownBroadDomains) {
  auto data = synth::GenerateCorpus(synth::KnowledgeVaultLikeParams(0.2));
  // Most content is already known, gaps are the exception.
  EXPECT_GT(data.kb->size(), data.corpus->NumFacts() / 2);
  EXPECT_GT(data.silver.size(), 3u);
  // Silver slices are genuinely mostly-new against the KB.
  for (const auto& gt : data.silver.slices) {
    size_t fresh = 0;
    for (const auto& t : gt.facts) {
      if (!data.kb->Contains(t)) ++fresh;
    }
    EXPECT_GT(fresh * 2, gt.facts.size());
  }
}

}  // namespace
}  // namespace core
}  // namespace midas
