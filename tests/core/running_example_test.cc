// End-to-end check against the paper's running example (Figs. 2, 4, 5,
// Examples 10-14): the skyrocket.de facts, the Freebase-like KB, the exact
// profit numbers printed in Fig. 5, and the final answer {S5}.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>

#include "midas/core/midas.h"

namespace midas {
namespace {

constexpr const char* kMercury = "http://space.skyrocket.de/doc_sat/mercury-history.htm";
constexpr const char* kGemini = "http://space.skyrocket.de/doc_sat/gemini-history.htm";
constexpr const char* kAtlas = "http://space.skyrocket.de/doc_lau_fam/atlas.htm";
constexpr const char* kApollo = "http://space.skyrocket.de/doc_sat/apollo-history.htm";
constexpr const char* kCastor = "http://space.skyrocket.de/doc_lau_fam/castor-4.htm";

class RunningExampleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dict_ = std::make_shared<rdf::Dictionary>();
    corpus_ = std::make_unique<web::Corpus>(dict_);
    kb_ = std::make_unique<rdf::KnowledgeBase>(dict_);

    // Fig. 2: t1..t13.
    AddFact(kMercury, "Project Mercury", "category", "space_program", false);
    AddFact(kMercury, "Project Mercury", "started", "1959", false);
    AddFact(kMercury, "Project Mercury", "sponsor", "NASA", false);
    AddFact(kGemini, "Project Gemini", "category", "space_program", false);
    AddFact(kGemini, "Project Gemini", "sponsor", "NASA", false);
    AddFact(kAtlas, "Atlas", "category", "rocket_family", true);
    AddFact(kAtlas, "Atlas", "sponsor", "NASA", true);
    AddFact(kAtlas, "Atlas", "started", "1957", true);
    AddFact(kApollo, "Apollo program", "category", "space_program", false);
    AddFact(kApollo, "Apollo program", "sponsor", "NASA", false);
    AddFact(kCastor, "Castor-4", "category", "rocket_family", true);
    AddFact(kCastor, "Castor-4", "started", "1971", true);
    AddFact(kCastor, "Castor-4", "sponsor", "NASA", true);

    // Running-example cost model: f_p = 1.
    options_.cost_model = core::CostModel::RunningExample();
  }

  // Adds a fact to the corpus and, when `is_new` is false, to the KB too
  // (the "new?" column of Fig. 2).
  void AddFact(const std::string& url, const std::string& s,
               const std::string& p, const std::string& o, bool is_new) {
    corpus_->AddFactRaw(url, s, p, o);
    if (!is_new) kb_->Add(s, p, o);
  }

  // Collects all 13 facts into one source-level vector (the web-domain
  // granularity used by Fig. 4/5).
  std::vector<rdf::Triple> AllFacts() const {
    std::vector<rdf::Triple> out;
    for (const auto& src : corpus_->sources()) {
      out.insert(out.end(), src.facts.begin(), src.facts.end());
    }
    return out;
  }

  std::shared_ptr<rdf::Dictionary> dict_;
  std::unique_ptr<web::Corpus> corpus_;
  std::unique_ptr<rdf::KnowledgeBase> kb_;
  core::MidasOptions options_;
};

TEST_F(RunningExampleTest, FactTableShape) {
  auto facts = AllFacts();
  core::FactTable table(facts);
  EXPECT_EQ(table.num_entities(), 5u);   // e1..e5
  EXPECT_EQ(table.num_predicates(), 3u); // category, sponsor, started
  EXPECT_EQ(table.num_facts(), 13u);
  EXPECT_EQ(table.catalog().size(), 6u); // c1..c6 (Fig. 4)
}

TEST_F(RunningExampleTest, SliceEntityAndFactSets) {
  auto facts = AllFacts();
  core::FactTable table(facts);

  auto prop = [&](const char* pred, const char* value) {
    auto id = table.catalog().Lookup(*dict_->Lookup(pred),
                                     *dict_->Lookup(value));
    EXPECT_TRUE(id.has_value()) << pred << "=" << value;
    return *id;
  };

  // S4 = {category=space_program, sponsor=NASA} -> {e1, e2, e4} (note: e1
  // matches although only e2 and e4 minted the initial slice).
  auto s4 = table.MatchEntities(
      {prop("category", "space_program"), prop("sponsor", "NASA")});
  EXPECT_EQ(s4.size(), 3u);

  // S5 = {category=rocket_family, sponsor=NASA} -> {e3, e5}.
  auto s5 = table.MatchEntities(
      {prop("category", "rocket_family"), prop("sponsor", "NASA")});
  EXPECT_EQ(s5.size(), 2u);

  // S6 = {sponsor=NASA} -> all five entities.
  auto s6 = table.MatchEntities({prop("sponsor", "NASA")});
  EXPECT_EQ(s6.size(), 5u);
}

TEST_F(RunningExampleTest, ProfitNumbersMatchFigure5) {
  auto facts = AllFacts();
  core::FactTable table(facts);
  core::ProfitContext profit(table, *kb_, options_.cost_model);

  auto prop = [&](const char* pred, const char* value) {
    return *table.catalog().Lookup(*dict_->Lookup(pred),
                                   *dict_->Lookup(value));
  };
  auto slice_profit = [&](std::vector<core::PropertyId> props) {
    return profit.SliceProfit(table.MatchEntities(props));
  };

  // Fig. 5 "Cur" values (f_p = 1).
  EXPECT_NEAR(slice_profit({prop("category", "rocket_family"),
                            prop("sponsor", "NASA")}),
              4.327, 1e-9);  // S5
  EXPECT_NEAR(slice_profit({prop("category", "rocket_family"),
                            prop("started", "1957"),
                            prop("sponsor", "NASA")}),
              1.657, 1e-9);  // S2
  EXPECT_NEAR(slice_profit({prop("category", "rocket_family"),
                            prop("started", "1971"),
                            prop("sponsor", "NASA")}),
              1.657, 1e-9);  // S3
  EXPECT_NEAR(slice_profit({prop("category", "space_program"),
                            prop("sponsor", "NASA")}),
              -1.083, 1e-9);  // S4
  // S1: the paper prints -1.013, which omits S1's own de-duplication term
  // (3·f_d = 0.03); the formula of Def. 9 gives -1.043. S4's printed value
  // (-1.083) does include its de-duplication term, so we treat S1 as a typo
  // and assert the formula-consistent value (see DESIGN.md §4).
  EXPECT_NEAR(slice_profit({prop("category", "space_program"),
                            prop("started", "1959"),
                            prop("sponsor", "NASA")}),
              -1.043, 1e-9);  // S1
  // S6 = {sponsor=NASA}: 6 new - (1 + 0.013 + 0.13 + 0.6) = 4.257, lower
  // than its child S5 (4.327) -> pruned as low-profit.
  EXPECT_NEAR(slice_profit({prop("sponsor", "NASA")}), 4.257, 1e-9);

  // Example 10 / 13: the set {S2, S3} has lower profit than {S5} because
  // of the extra training cost.
  auto s2 = table.MatchEntities({prop("category", "rocket_family"),
                                 prop("started", "1957"),
                                 prop("sponsor", "NASA")});
  auto s3 = table.MatchEntities({prop("category", "rocket_family"),
                                 prop("started", "1971"),
                                 prop("sponsor", "NASA")});
  EXPECT_NEAR(profit.SetProfit({&s2, &s3}), 3.327, 1e-9);
}

TEST_F(RunningExampleTest, HierarchyPruningMatchesFigure5) {
  auto facts = AllFacts();
  core::FactTable table(facts);
  core::ProfitContext profit(table, *kb_, options_.cost_model);
  core::SliceHierarchy hierarchy(table, profit, core::HierarchyOptions());

  // Fig. 5a: four initial slices (S1, S2, S3 at level 3; S4 at level 2).
  EXPECT_EQ(hierarchy.stats().initial_slices, 4u);
  EXPECT_EQ(hierarchy.max_level(), 3u);

  // Find nodes by profit signature.
  int canonical_level2 = 0;
  for (uint32_t idx : hierarchy.nodes_at_level(2)) {
    const auto& node = hierarchy.nodes()[idx];
    if (!node.removed && node.is_canonical) ++canonical_level2;
  }
  // Fig. 5c: S4 and S5 are the only canonical level-2 slices.
  EXPECT_EQ(canonical_level2, 2);

  // S5 must be canonical, valid, with f_LB = its own profit (4.327 > the
  // children set's 3.327).
  bool found_s5 = false;
  for (uint32_t idx : hierarchy.nodes_at_level(2)) {
    const auto& node = hierarchy.nodes()[idx];
    if (node.removed) continue;
    if (std::abs(node.profit - 4.327) < 1e-9) {
      found_s5 = true;
      EXPECT_TRUE(node.is_canonical);
      EXPECT_TRUE(node.valid);
      EXPECT_NEAR(node.lb_profit, 4.327, 1e-9);
      EXPECT_EQ(node.lb_set.size(), 1u);
    }
    if (std::abs(node.profit - (-1.083)) < 1e-9) {
      // S4: canonical (initial) but low-profit -> invalid.
      EXPECT_TRUE(node.is_canonical);
      EXPECT_FALSE(node.valid);
    }
  }
  EXPECT_TRUE(found_s5);

  // Level 1: S6 ({sponsor=NASA}) is canonical (children S4, S5) but
  // low-profit (4.257 < f_LB 4.327) -> invalid.
  bool found_s6 = false;
  for (uint32_t idx : hierarchy.nodes_at_level(1)) {
    const auto& node = hierarchy.nodes()[idx];
    if (node.removed) continue;
    if (std::abs(node.profit - 4.257) < 1e-9) {
      found_s6 = true;
      EXPECT_TRUE(node.is_canonical);
      EXPECT_FALSE(node.valid);
      EXPECT_NEAR(node.lb_profit, 4.327, 1e-9);
    }
  }
  EXPECT_TRUE(found_s6);
}

TEST_F(RunningExampleTest, MidasAlgReturnsS5) {
  auto facts = AllFacts();
  core::SourceInput input;
  input.url = "http://space.skyrocket.de";
  input.facts = &facts;

  core::MidasAlg alg(options_);
  auto slices = alg.Detect(input, *kb_);

  ASSERT_EQ(slices.size(), 1u);  // Example 14: the result is {S5}
  const auto& s5 = slices[0];
  EXPECT_NEAR(s5.profit, 4.327, 1e-9);
  EXPECT_EQ(s5.num_facts, 6u);
  EXPECT_EQ(s5.num_new_facts, 6u);
  EXPECT_EQ(s5.entities.size(), 2u);
  EXPECT_EQ(s5.properties.size(), 2u);
  EXPECT_EQ(s5.Description(*dict_), "category=rocket_family & sponsor=NASA");
}

TEST_F(RunningExampleTest, FrameworkPicksChildGranularity) {
  // Example 16: run the full framework over the page-level corpus. The
  // final slice should be "rocket families sponsored by NASA", attributed
  // to the doc_lau_fam sub-domain (its crawl cost beats the domain's).
  core::Midas midas(options_);
  auto result = midas.DiscoverSlices(*corpus_, *kb_);

  ASSERT_EQ(result.slices.size(), 1u);
  const auto& slice = result.slices[0];
  EXPECT_EQ(slice.source_url, "http://space.skyrocket.de/doc_lau_fam");
  EXPECT_EQ(slice.num_new_facts, 6u);
  EXPECT_EQ(slice.Description(*dict_),
            "category=rocket_family & sponsor=NASA");
  // Profit at the sub-domain: 6 - (1 + 0.006 + 0.06 + 0.6) = 4.334.
  EXPECT_NEAR(slice.profit, 4.334, 1e-9);
}

}  // namespace
}  // namespace midas
