// Verifies the zero-allocation contract of the profit kernels: after one
// warm-up pass, SetProfit (both paths), the SetAccumulator operations, and
// the totals sweeps perform no heap allocation — the steady state that
// hierarchy construction (ComputeLowerBound) and the Algorithm 1 traversal
// rely on. Allocations are counted by instrumenting the global operator new
// for this test binary.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "midas/core/entity_bitset.h"
#include "midas/core/fact_table.h"
#include "midas/core/profit.h"
#include "midas/rdf/knowledge_base.h"
#include "midas/util/random.h"

namespace {

std::atomic<bool> g_counting{false};
std::atomic<size_t> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace midas {
namespace core {
namespace {

class AllocationGuard {
 public:
  AllocationGuard() {
    g_allocations.store(0, std::memory_order_relaxed);
    g_counting.store(true, std::memory_order_relaxed);
  }
  ~AllocationGuard() { g_counting.store(false, std::memory_order_relaxed); }

  size_t count() const { return g_allocations.load(std::memory_order_relaxed); }

 private:
};

struct Fixture {
  std::shared_ptr<rdf::Dictionary> dict = std::make_shared<rdf::Dictionary>();
  std::unique_ptr<rdf::KnowledgeBase> kb =
      std::make_unique<rdf::KnowledgeBase>(dict);
  std::vector<rdf::Triple> facts;
  std::unique_ptr<FactTable> table;
  std::unique_ptr<ProfitContext> profit;

  // A handful of overlapping slices in both representations.
  std::vector<std::vector<EntityId>> slice_lists;
  std::vector<EntityBitset> slice_bits;
  std::vector<const std::vector<EntityId>*> list_ptrs;
  std::vector<const EntityBitset*> bit_ptrs;

  Fixture() {
    Rng rng(7);
    const size_t n = 500;
    for (size_t e = 0; e < n; ++e) {
      rdf::TermId subj = dict->Intern("e" + std::to_string(e));
      for (size_t p = 0; p < 4; ++p) {
        if (!rng.Bernoulli(0.8)) continue;
        rdf::Triple t(subj, dict->Intern("p" + std::to_string(p)),
                      dict->Intern("v" + std::to_string(rng.Uniform(3))));
        facts.push_back(t);
        if (rng.Bernoulli(0.5)) kb->Add(t);
      }
    }
    FactTableOptions options;
    options.dense_index_min_entities = 0;
    table = std::make_unique<FactTable>(facts, options);
    profit = std::make_unique<ProfitContext>(*table, *kb, CostModel::Default());

    for (size_t s = 0; s < 12; ++s) {
      std::vector<EntityId> list;
      for (EntityId e = 0; e < table->num_entities(); ++e) {
        if ((e + s) % 3 != 0) list.push_back(e);
      }
      EntityBitset bits;
      bits.AssignList(list, table->num_entities());
      slice_lists.push_back(std::move(list));
      slice_bits.push_back(std::move(bits));
    }
    for (size_t s = 0; s < slice_lists.size(); ++s) {
      list_ptrs.push_back(&slice_lists[s]);
      bit_ptrs.push_back(&slice_bits[s]);
    }
  }
};

TEST(ProfitAllocTest, SetProfitPathsAreAllocationFreeAfterWarmup) {
  Fixture fx;
  double sink = 0.0;

  // Warm-up: sizes every internal scratch once.
  sink += fx.profit->SetProfit(fx.list_ptrs);
  sink += fx.profit->SetProfitBits(fx.bit_ptrs);

  size_t allocations;
  {
    AllocationGuard guard;
    for (int i = 0; i < 200; ++i) {
      sink += fx.profit->SetProfit(fx.list_ptrs);
      sink += fx.profit->SetProfitBits(fx.bit_ptrs);
      uint64_t f = 0, fresh = 0;
      fx.profit->EntityTotals(fx.slice_lists[0], &f, &fresh);
      fx.profit->BitsetTotals(fx.slice_bits[0], &f, &fresh);
      fx.profit->AndTotals(fx.slice_bits[0], fx.slice_bits[1], &f, &fresh);
      sink += static_cast<double>(f + fresh);
    }
    allocations = guard.count();
  }
  EXPECT_EQ(allocations, 0u) << "sink=" << sink;
}

TEST(ProfitAllocTest, SetAccumulatorIsAllocationFreeAfterConstruction) {
  Fixture fx;
  ProfitContext::SetAccumulator acc(*fx.profit);
  double sink = 0.0;

  size_t allocations;
  {
    AllocationGuard guard;
    // The ComputeLowerBound steady-state pattern: Reset, a run of
    // DeltaIfAdd/Add over node entity sets, final Profit — repeated across
    // "nodes" with the same accumulator. Both representations.
    for (int node = 0; node < 200; ++node) {
      acc.Reset();
      for (size_t s = 0; s < fx.slice_bits.size(); ++s) {
        sink += acc.DeltaIfAdd(fx.slice_bits[s]);
        acc.Add(fx.slice_bits[s]);
      }
      sink += acc.Profit();

      acc.Reset();
      for (size_t s = 0; s < fx.slice_lists.size(); ++s) {
        sink += acc.DeltaIfAdd(fx.slice_lists[s]);
        acc.Add(fx.slice_lists[s]);
      }
      sink += acc.Profit();
    }
    allocations = guard.count();
  }
  EXPECT_EQ(allocations, 0u) << "sink=" << sink;
}

}  // namespace
}  // namespace core
}  // namespace midas
