// Property-based tests of the multi-source framework over randomly
// generated corpora: provenance (every reported fact really was extracted
// under the reported URL's subtree), URL consistency, ranking, and
// agreement between the end-to-end result and per-slice recomputation.

#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "midas/core/midas.h"
#include "midas/synth/corpus_generator.h"
#include "midas/util/string_util.h"
#include "midas/web/url.h"

namespace midas {
namespace core {
namespace {

struct CorpusShape {
  bool open_ie;
  size_t num_sources;
  uint64_t seed;
};

class FrameworkPropertiesTest
    : public ::testing::TestWithParam<CorpusShape> {
 protected:
  void SetUp() override {
    auto params = synth::SlimParams(GetParam().open_ie,
                                    GetParam().num_sources,
                                    GetParam().seed);
    data_ = std::make_unique<synth::GeneratedCorpus>(
        synth::GenerateCorpus(params));
    Midas midas;
    result_ = std::make_unique<FrameworkResult>(
        midas.DiscoverSlices(*data_->corpus, *data_->kb));
  }

  std::unique_ptr<synth::GeneratedCorpus> data_;
  std::unique_ptr<FrameworkResult> result_;
};

TEST_P(FrameworkPropertiesTest, ProvenanceEveryFactUnderReportedUrl) {
  // Index: triple -> set of URLs it was extracted from.
  std::unordered_map<rdf::Triple, std::vector<const std::string*>,
                     rdf::TripleHash>
      where;
  for (const auto& src : data_->corpus->sources()) {
    for (const auto& t : src.facts) {
      where[t].push_back(&src.url);
    }
  }
  for (const auto& slice : result_->slices) {
    for (const auto& t : slice.facts) {
      auto it = where.find(t);
      ASSERT_NE(it, where.end())
          << "reported fact never extracted: " << t.ToString(*data_->dict);
      bool under = false;
      for (const std::string* url : it->second) {
        if (StartsWith(*url, slice.source_url)) {
          under = true;
          break;
        }
      }
      EXPECT_TRUE(under) << "fact not under " << slice.source_url;
    }
  }
}

TEST_P(FrameworkPropertiesTest, ReportedUrlsAreValidPrefixes) {
  for (const auto& slice : result_->slices) {
    auto url = web::Url::Parse(slice.source_url);
    ASSERT_TRUE(url.ok()) << slice.source_url;
    // Normalized fixpoint.
    EXPECT_EQ(url->ToString(), slice.source_url);
  }
}

TEST_P(FrameworkPropertiesTest, RankedByProfit) {
  for (size_t i = 1; i < result_->slices.size(); ++i) {
    EXPECT_GE(result_->slices[i - 1].profit, result_->slices[i].profit);
  }
}

TEST_P(FrameworkPropertiesTest, SlicesInternallyConsistent) {
  for (const auto& slice : result_->slices) {
    EXPECT_FALSE(slice.properties.empty());
    EXPECT_FALSE(slice.entities.empty());
    EXPECT_EQ(slice.num_facts, slice.facts.size());
    EXPECT_LE(slice.num_new_facts, slice.num_facts);
    EXPECT_GT(slice.profit, 0.0);

    // Entities are exactly the fact subjects.
    std::unordered_set<rdf::TermId> subjects;
    for (const auto& t : slice.facts) subjects.insert(t.subject);
    std::unordered_set<rdf::TermId> entities(slice.entities.begin(),
                                             slice.entities.end());
    EXPECT_EQ(subjects, entities);

    // Every entity carries every defining property in the slice's facts.
    std::unordered_map<rdf::TermId,
                       std::unordered_set<uint64_t>>
        entity_pairs;
    for (const auto& t : slice.facts) {
      entity_pairs[t.subject].insert(
          (static_cast<uint64_t>(t.predicate) << 32) | t.object);
    }
    for (const auto& prop : slice.properties) {
      uint64_t key =
          (static_cast<uint64_t>(prop.predicate) << 32) | prop.value;
      for (rdf::TermId e : slice.entities) {
        EXPECT_TRUE(entity_pairs[e].count(key))
            << "entity " << data_->dict->Term(e)
            << " lacks defining property "
            << data_->dict->Term(prop.predicate) << "="
            << data_->dict->Term(prop.value);
      }
    }

    // num_new agrees with the KB.
    size_t fresh = 0;
    for (const auto& t : slice.facts) {
      if (!data_->kb->Contains(t)) ++fresh;
    }
    EXPECT_EQ(slice.num_new_facts, fresh);
  }
}

TEST_P(FrameworkPropertiesTest, NoDuplicateSlices) {
  std::unordered_set<std::string> seen;
  for (const auto& slice : result_->slices) {
    std::string key = slice.source_url + "|" +
                      slice.Description(*data_->dict);
    EXPECT_TRUE(seen.insert(key).second) << "duplicate: " << key;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpora, FrameworkPropertiesTest,
    ::testing::Values(CorpusShape{false, 20, 201},
                      CorpusShape{false, 40, 202},
                      CorpusShape{true, 20, 203},
                      CorpusShape{true, 40, 204}),
    [](const ::testing::TestParamInfo<CorpusShape>& info) {
      return std::string(info.param.open_ie ? "open" : "closed") + "_n" +
             std::to_string(info.param.num_sources) + "_s" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace core
}  // namespace midas
