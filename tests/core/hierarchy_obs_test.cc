// Verifies that SliceHierarchy construction reports its counters to the
// shared obs registry and that they agree with the HierarchyStats the
// builder returns: aggregate totals, the per-level node counters, and the
// profit-evaluation count.

#include "midas/core/slice_hierarchy.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/corpus_fixture.h"
#include "midas/core/fact_table.h"
#include "midas/core/profit.h"
#include "midas/obs/metrics.h"
#include "midas/rdf/knowledge_base.h"

namespace midas {
namespace core {
namespace {

uint64_t CounterValue(const std::string& name) {
  const obs::Counter* c = obs::Registry::Global().FindCounter(name);
  return c == nullptr ? 0 : c->Value();
}

class HierarchyObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
#ifdef MIDAS_OBS_NOOP
    GTEST_SKIP() << "instrumentation compiled out";
#endif
    obs::Registry::Global().ResetAllForTest();
  }

  /// A small random source with overlapping property sets (the shared
  /// seeded fixture; see tests/common/corpus_fixture.h).
  void BuildFixture() {
    fixture_ = std::make_unique<tests::RandomTableFixture>();
    table_ = fixture_->table.get();
    profit_ = fixture_->profit.get();
  }

  std::unique_ptr<tests::RandomTableFixture> fixture_;
  FactTable* table_ = nullptr;
  ProfitContext* profit_ = nullptr;
};

TEST_F(HierarchyObsTest, CountersMatchHierarchyStats) {
  BuildFixture();
  HierarchyOptions options;
  options.num_threads = 1;
  SliceHierarchy hierarchy(*table_, *profit_, options);
  const HierarchyStats& stats = hierarchy.stats();

  EXPECT_EQ(CounterValue("hierarchy.builds"), 1u);
  EXPECT_EQ(CounterValue("hierarchy.nodes_generated"),
            stats.nodes_generated);
  EXPECT_EQ(CounterValue("hierarchy.initial_slices"), stats.initial_slices);
  EXPECT_EQ(CounterValue("hierarchy.noncanonical_removed"),
            stats.noncanonical_removed);
  EXPECT_EQ(CounterValue("hierarchy.low_profit_pruned"),
            stats.low_profit_pruned);
  EXPECT_EQ(CounterValue("hierarchy.seeds_dropped"), stats.seeds_dropped);
  // Every minted node shell is profit-evaluated exactly once.
  EXPECT_EQ(CounterValue("hierarchy.profit_evals"), stats.nodes_generated);
  // The build-duration histogram saw this construction.
  const obs::Histogram* build_us =
      obs::Registry::Global().FindHistogram("hierarchy.build_us");
  ASSERT_NE(build_us, nullptr);
  EXPECT_EQ(build_us->Count(), 1u);
}

TEST_F(HierarchyObsTest, PerLevelNodeCountersMatchLevels) {
  BuildFixture();
  HierarchyOptions options;
  options.num_threads = 1;
  SliceHierarchy hierarchy(*table_, *profit_, options);
  const HierarchyStats& stats = hierarchy.stats();
  ASSERT_GE(stats.max_level, 2u);

  uint64_t level_total = 0;
  for (size_t level = 1; level <= stats.max_level; ++level) {
    const uint64_t counted = CounterValue(
        "hierarchy.level." + std::to_string(level) + ".nodes");
    EXPECT_EQ(counted, hierarchy.nodes_at_level(level).size())
        << "level " << level;
    level_total += counted;
  }
  // Levels partition the node set (level metric names are capped at 16;
  // this fixture's hierarchy is far shallower).
  EXPECT_EQ(level_total, stats.nodes_generated);
}

TEST_F(HierarchyObsTest, DedupHitsCountRepeatedPropertySets) {
  BuildFixture();
  HierarchyOptions options;
  options.num_threads = 1;
  SliceHierarchy hierarchy(*table_, *profit_, options);
  // Distinct entities share property sets and parent generation re-derives
  // shared ancestors, so a non-trivial source always dedups.
  EXPECT_GT(CounterValue("hierarchy.dedup_hits"), 0u);
}

}  // namespace
}  // namespace core
}  // namespace midas
