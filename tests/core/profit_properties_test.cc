// Property-based tests of the profit model over 200 seeded random fact
// tables: the incremental SetAccumulator must agree bit-for-bit with the
// from-scratch SetProfit at every prefix, DeltaIfAdd must predict the next
// profit, and under a pure-gain cost model (all cost coefficients zero) the
// marginal profit of a fixed candidate slice is monotone non-increasing as
// the selected set grows (submodularity of coverage gain). A subset of the
// seeds additionally builds the full hierarchy and re-checks the
// lower-bound invariants on random inputs.

#include "midas/core/profit.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/corpus_fixture.h"
#include "midas/core/fact_table.h"
#include "midas/core/slice_hierarchy.h"

namespace midas {
namespace core {
namespace {

constexpr int kNumSeeds = 200;

/// Diversifies the table shape across seeds: 30..90 entities, 3..6
/// predicates, fact/KB densities swept over a few bands.
tests::RandomFactsParams ParamsForSeed(int seed) {
  tests::RandomFactsParams params;
  params.seed = static_cast<uint64_t>(seed);
  params.entities = 30 + (seed * 7) % 61;
  params.predicates = 3 + seed % 4;
  params.values = 2 + seed % 2;
  params.fact_density = 0.4 + 0.1 * (seed % 5);
  params.kb_density = 0.2 + 0.15 * (seed % 4);
  return params;
}

/// The natural slices of a table: one entity set per catalog property (its
/// inverted list). Skips empty lists.
std::vector<std::vector<EntityId>> PropertySlices(const FactTable& table) {
  std::vector<std::vector<EntityId>> slices;
  for (PropertyId p = 0; p < table.catalog().size(); ++p) {
    if (!table.property_entities(p).empty()) {
      slices.push_back(table.property_entities(p));
    }
  }
  return slices;
}

TEST(ProfitPropertiesTest, AccumulatorMatchesFromScratchOnEveryPrefix) {
  for (int seed = 0; seed < kNumSeeds; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    tests::RandomTableFixture fx(ParamsForSeed(seed));
    const auto slices = PropertySlices(*fx.table);
    ASSERT_FALSE(slices.empty());

    ProfitContext::SetAccumulator acc(*fx.profit);
    std::vector<const std::vector<EntityId>*> prefix;
    std::set<EntityId> covered;
    for (const auto& slice : slices) {
      const double before = acc.Profit();
      const double delta = acc.DeltaIfAdd(slice);
      acc.Add(slice);
      prefix.push_back(&slice);
      covered.insert(slice.begin(), slice.end());

      // Incremental == from-scratch (the class promises bit-identical
      // profits from identical integral totals).
      EXPECT_DOUBLE_EQ(acc.Profit(), fx.profit->SetProfit(prefix));
      // DeltaIfAdd predicted the transition.
      EXPECT_NEAR(acc.Profit(), before + delta, 1e-9);
      // The aggregated totals are the union's totals, independently
      // recomputed entity by entity.
      uint64_t facts = 0, fresh = 0;
      for (EntityId e : covered) {
        facts += fx.profit->entity_fact_count(e);
        fresh += fx.profit->entity_new_count(e);
      }
      EXPECT_EQ(acc.total_facts(), facts);
      EXPECT_EQ(acc.total_new(), fresh);
      EXPECT_EQ(acc.num_slices(), prefix.size());
      for (EntityId e : covered) EXPECT_TRUE(acc.Covers(e));
    }
  }
}

TEST(ProfitPropertiesTest, PureGainMarginalProfitIsMonotoneNonIncreasing) {
  for (int seed = 0; seed < kNumSeeds; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    tests::RandomTableFixture fx(ParamsForSeed(seed));
    const auto slices = PropertySlices(*fx.table);
    if (slices.size() < 2) continue;

    // All cost coefficients zero: f(S) degenerates to the coverage gain
    // G(S) = |union of new facts|, which is monotone and submodular.
    ProfitContext gain(*fx.table, *fx.kb, CostModel{0.0, 0.0, 0.0, 0.0});
    const std::vector<EntityId>& candidate = slices[0];
    ProfitContext::SetAccumulator acc(gain);
    double prev_delta = acc.DeltaIfAdd(candidate);
    EXPECT_GE(prev_delta, 0.0);
    for (size_t i = 1; i < slices.size(); ++i) {
      acc.Add(slices[i]);
      const double delta = acc.DeltaIfAdd(candidate);
      // Growing the selected set can only shrink the candidate's marginal
      // contribution.
      EXPECT_LE(delta, prev_delta + 1e-9) << "after adding slice " << i;
      EXPECT_GE(delta, 0.0);
      prev_delta = delta;
    }
    // Once the candidate itself is in the set, its marginal gain is zero.
    acc.Add(candidate);
    EXPECT_DOUBLE_EQ(acc.DeltaIfAdd(candidate), 0.0);
  }
}

TEST(ProfitPropertiesTest, HierarchyLowerBoundsHoldOnRandomTables) {
  // Full hierarchy construction is the expensive part; a spread-out subset
  // of the seeds exercises it against the same invariants the curated
  // fixtures pin (invariants_test.cc).
  for (int seed = 0; seed < kNumSeeds; seed += 25) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    tests::RandomTableFixture fx(ParamsForSeed(seed));
    SliceHierarchy hierarchy(*fx.table, *fx.profit, HierarchyOptions());
    const auto& nodes = hierarchy.nodes();
    ASSERT_FALSE(nodes.empty());
    for (uint32_t i = 0; i < nodes.size(); ++i) {
      const SliceNode& node = nodes[i];
      if (node.removed) continue;
      EXPECT_GE(node.lb_profit, 0.0);
      EXPECT_GE(node.lb_profit, node.profit - 1e-9);
      if (node.lb_set.empty()) {
        EXPECT_DOUBLE_EQ(node.lb_profit, 0.0);
        continue;
      }
      std::vector<std::vector<EntityId>> lb_entities;
      lb_entities.reserve(node.lb_set.size());
      std::vector<const std::vector<EntityId>*> sets;
      for (uint32_t s : node.lb_set) {
        lb_entities.push_back(nodes[s].EntityVector());
        sets.push_back(&lb_entities.back());
      }
      EXPECT_NEAR(node.lb_profit, fx.profit->SetProfit(sets), 1e-9);
    }
  }
}

}  // namespace
}  // namespace core
}  // namespace midas
