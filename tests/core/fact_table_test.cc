#include "midas/core/fact_table.h"

#include <gtest/gtest.h>

#include "midas/rdf/dictionary.h"

namespace midas {
namespace core {
namespace {

class FactTableTest : public ::testing::Test {
 protected:
  rdf::Triple T(const char* s, const char* p, const char* o) {
    return rdf::Triple(dict_.Intern(s), dict_.Intern(p), dict_.Intern(o));
  }
  rdf::Dictionary dict_;
};

TEST_F(FactTableTest, EmptyInput) {
  FactTable table({});
  EXPECT_EQ(table.num_entities(), 0u);
  EXPECT_EQ(table.num_predicates(), 0u);
  EXPECT_EQ(table.num_facts(), 0u);
  EXPECT_EQ(table.catalog().size(), 0u);
  EXPECT_TRUE(table.MatchEntities({}).empty());
}

TEST_F(FactTableTest, RowsInFirstSeenOrder) {
  std::vector<rdf::Triple> facts = {
      T("b", "p", "1"), T("a", "p", "2"), T("b", "q", "3")};
  FactTable table(facts);
  ASSERT_EQ(table.num_entities(), 2u);
  EXPECT_EQ(dict_.Term(table.subject(0)), "b");
  EXPECT_EQ(dict_.Term(table.subject(1)), "a");
  EXPECT_EQ(table.entity_facts(0).size(), 2u);
  EXPECT_EQ(table.entity_facts(1).size(), 1u);
  EXPECT_EQ(table.num_predicates(), 2u);
  EXPECT_EQ(table.num_facts(), 3u);
}

TEST_F(FactTableTest, FindEntity) {
  FactTable table({T("x", "p", "1")});
  EXPECT_EQ(table.FindEntity(*dict_.Lookup("x")), 0u);
  EXPECT_EQ(table.FindEntity(dict_.Intern("unknown")), kInvalidIndex);
}

TEST_F(FactTableTest, MultivaluedCellsYieldMultipleProperties) {
  // Entity with two sponsors -> two distinct properties on one predicate.
  std::vector<rdf::Triple> facts = {
      T("e", "sponsor", "NASA"), T("e", "sponsor", "ESA")};
  FactTable table(facts);
  EXPECT_EQ(table.catalog().size(), 2u);
  EXPECT_EQ(table.entity_properties(0).size(), 2u);
  EXPECT_EQ(table.num_predicates(), 1u);
}

TEST_F(FactTableTest, PropertyEntitiesInvertedLists) {
  std::vector<rdf::Triple> facts = {
      T("e1", "cat", "a"), T("e2", "cat", "a"), T("e3", "cat", "b")};
  FactTable table(facts);
  auto a = table.catalog().Lookup(*dict_.Lookup("cat"), *dict_.Lookup("a"));
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(table.property_entities(*a).size(), 2u);
  EXPECT_TRUE(std::is_sorted(table.property_entities(*a).begin(),
                             table.property_entities(*a).end()));
}

TEST_F(FactTableTest, MatchEntitiesIntersection) {
  std::vector<rdf::Triple> facts = {
      T("e1", "cat", "a"), T("e1", "loc", "x"),
      T("e2", "cat", "a"), T("e2", "loc", "y"),
      T("e3", "cat", "b"), T("e3", "loc", "x")};
  FactTable table(facts);
  auto prop = [&](const char* p, const char* v) {
    return *table.catalog().Lookup(*dict_.Lookup(p), *dict_.Lookup(v));
  };
  auto both = table.MatchEntities({prop("cat", "a"), prop("loc", "x")});
  ASSERT_EQ(both.size(), 1u);
  EXPECT_EQ(dict_.Term(table.subject(both[0])), "e1");

  // Empty property set selects everyone.
  EXPECT_EQ(table.MatchEntities({}).size(), 3u);

  // Disjoint combination selects nobody.
  EXPECT_TRUE(
      table.MatchEntities({prop("cat", "b"), prop("loc", "y")}).empty());
}

TEST_F(FactTableTest, EntityPropertiesSortedUnique) {
  std::vector<rdf::Triple> facts = {
      T("e", "p1", "a"), T("e", "p2", "b"), T("e", "p3", "c")};
  FactTable table(facts);
  const auto& props = table.entity_properties(0);
  EXPECT_EQ(props.size(), 3u);
  EXPECT_TRUE(std::is_sorted(props.begin(), props.end()));
}

TEST(PropertyCatalogTest, InternLookupRoundTrip) {
  PropertyCatalog catalog;
  PropertyId a = catalog.Intern(1, 2);
  PropertyId b = catalog.Intern(1, 3);
  EXPECT_NE(a, b);
  EXPECT_EQ(catalog.Intern(1, 2), a);
  EXPECT_EQ(catalog.size(), 2u);
  EXPECT_EQ(catalog.predicate(a), 1u);
  EXPECT_EQ(catalog.value(b), 3u);
  ASSERT_TRUE(catalog.Lookup(1, 3).has_value());
  EXPECT_EQ(*catalog.Lookup(1, 3), b);
  EXPECT_FALSE(catalog.Lookup(9, 9).has_value());
}

TEST(PropertyCatalogTest, ToPairs) {
  PropertyCatalog catalog;
  PropertyId a = catalog.Intern(5, 6);
  PropertyId b = catalog.Intern(7, 8);
  auto pairs = catalog.ToPairs({b, a});
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0].predicate, 7u);
  EXPECT_EQ(pairs[1].value, 6u);
}

}  // namespace
}  // namespace core
}  // namespace midas
