// Shared helpers for tests that drive the CLI command library in-process.

#ifndef MIDAS_TESTS_COMMON_CLI_HELPERS_H_
#define MIDAS_TESTS_COMMON_CLI_HELPERS_H_

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "midas/util/flags.h"
#include "midas/util/status.h"

namespace midas {
namespace tests {

/// Parses `args` (sans argv[0]) into an already-registered FlagParser.
inline Status ParseInto(FlagParser* flags, std::vector<std::string> args) {
  std::vector<char*> argv = {const_cast<char*>("midas")};
  for (auto& a : args) argv.push_back(a.data());
  return flags->Parse(static_cast<int>(argv.size()), argv.data());
}

/// Slurps a file; empty string when unreadable.
inline std::string ReadAll(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace tests
}  // namespace midas

#endif  // MIDAS_TESTS_COMMON_CLI_HELPERS_H_
