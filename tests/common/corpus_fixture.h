// Shared corpus-generation fixtures for the test suite. The obs,
// robustness, and property tests all need the same two corpora — a small
// deterministic sectioned site and a seeded random fact table — plus a
// detector that fails on demand; keeping them here means a fixture tweak
// changes every consumer at once instead of drifting per test file.

#ifndef MIDAS_TESTS_COMMON_CORPUS_FIXTURE_H_
#define MIDAS_TESTS_COMMON_CORPUS_FIXTURE_H_

#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "midas/core/fact_table.h"
#include "midas/core/midas_alg.h"
#include "midas/core/profit.h"
#include "midas/core/slice_detector.h"
#include "midas/rdf/dictionary.h"
#include "midas/rdf/knowledge_base.h"
#include "midas/rdf/triple.h"
#include "midas/util/random.h"
#include "midas/web/web_source.h"

namespace midas {
namespace tests {

/// Fills `corpus` with the canonical sectioned site: `sections` sections of
/// `entities_per_section` entities each, every entity carrying one
/// cat=rocket fact, pages at http://a.com/sec<p>/page.htm. Four URL depths
/// (page -> section -> host -> root), so framework rounds, sharding, and
/// consolidation all engage.
inline void FillSectionedCorpus(web::Corpus* corpus, int sections = 4,
                                int entities_per_section = 6) {
  for (int p = 0; p < sections; ++p) {
    for (int e = 0; e < entities_per_section; ++e) {
      corpus->AddFactRaw("http://a.com/sec" + std::to_string(p) + "/page.htm",
                         "e" + std::to_string(p) + "_" + std::to_string(e),
                         "cat", "rocket");
    }
  }
}

/// Parameters of the seeded random fact table (defaults match the original
/// hierarchy obs fixture: 60 entities x 4 predicates, fact density 0.7, KB
/// density 0.4 over the drawn facts).
struct RandomFactsParams {
  uint64_t seed = 13;
  size_t entities = 60;
  size_t predicates = 4;
  size_t values = 2;
  double fact_density = 0.7;
  double kb_density = 0.4;
};

/// Draws the random facts into `facts` and the KB subset into `kb`. Fully
/// determined by `params.seed`.
inline void FillRandomFacts(const RandomFactsParams& params,
                            rdf::Dictionary* dict, rdf::KnowledgeBase* kb,
                            std::vector<rdf::Triple>* facts) {
  Rng rng(params.seed);
  for (size_t e = 0; e < params.entities; ++e) {
    rdf::TermId subj = dict->Intern("e" + std::to_string(e));
    for (size_t p = 0; p < params.predicates; ++p) {
      if (!rng.Bernoulli(params.fact_density)) continue;
      rdf::Triple t(
          subj, dict->Intern("p" + std::to_string(p)),
          dict->Intern("v" + std::to_string(rng.Uniform(params.values))));
      facts->push_back(t);
      if (rng.Bernoulli(params.kb_density)) kb->Add(t);
    }
  }
}

/// A random fact table bundled with its profit context — the unit the
/// hierarchy and profit-model tests actually consume.
struct RandomTableFixture {
  std::shared_ptr<rdf::Dictionary> dict =
      std::make_shared<rdf::Dictionary>();
  std::unique_ptr<rdf::KnowledgeBase> kb =
      std::make_unique<rdf::KnowledgeBase>(dict);
  std::vector<rdf::Triple> facts;
  std::unique_ptr<core::FactTable> table;
  std::unique_ptr<core::ProfitContext> profit;

  explicit RandomTableFixture(const RandomFactsParams& params = {},
                              core::CostModel cost_model =
                                  core::CostModel::Default()) {
    FillRandomFacts(params, dict.get(), kb.get(), &facts);
    table = std::make_unique<core::FactTable>(facts);
    profit = std::make_unique<core::ProfitContext>(*table, *kb, cost_model);
  }
};

/// Delegates to MidasAlg except on sources whose URL contains `poison`,
/// where it throws — the framework must contain the failure (close the
/// shard's span, count the error, report the source failed) and keep the
/// round going.
class ThrowingDetector : public core::SliceDetector {
 public:
  ThrowingDetector(const core::MidasOptions& options, std::string poison)
      : alg_(options), poison_(std::move(poison)) {}

  std::string name() const override { return "Throwing"; }

  std::vector<core::DiscoveredSlice> Detect(
      const core::SourceInput& input,
      const rdf::KnowledgeBase& kb) const override {
    if (input.url.find(poison_) != std::string::npos) {
      throw std::runtime_error("synthetic detector failure");
    }
    return alg_.Detect(input, kb);
  }

 private:
  core::MidasAlg alg_;
  std::string poison_;
};

}  // namespace tests
}  // namespace midas

#endif  // MIDAS_TESTS_COMMON_CORPUS_FIXTURE_H_
