#include "midas/synth/dataset_stats.h"

#include <gtest/gtest.h>

#include <memory>

namespace midas {
namespace synth {
namespace {

TEST(DatasetStatsTest, CountsCorpusAndKb) {
  auto dict = std::make_shared<rdf::Dictionary>();
  web::Corpus corpus(dict);
  corpus.AddFactRaw("http://a.com/x", "e1", "p1", "v1");
  corpus.AddFactRaw("http://a.com/x", "e1", "p2", "v2");
  corpus.AddFactRaw("http://b.com/y", "e2", "p1", "v3");

  rdf::KnowledgeBase kb(dict);
  kb.Add("e1", "p1", "v1");

  auto stats = ComputeDatasetStats("toy", corpus, kb);
  EXPECT_EQ(stats.name, "toy");
  EXPECT_EQ(stats.num_facts, 3u);
  EXPECT_EQ(stats.num_predicates, 2u);
  EXPECT_EQ(stats.num_urls, 2u);
  EXPECT_EQ(stats.kb_facts, 1u);
  EXPECT_EQ(stats.KbColumn(), "1");
}

TEST(DatasetStatsTest, EmptyKbColumn) {
  auto dict = std::make_shared<rdf::Dictionary>();
  web::Corpus corpus(dict);
  rdf::KnowledgeBase kb(dict);
  auto stats = ComputeDatasetStats("empty", corpus, kb);
  EXPECT_EQ(stats.KbColumn(), "Empty");
  EXPECT_EQ(stats.num_facts, 0u);
}

TEST(DatasetStatsTest, LargeCountsFormatted) {
  DatasetStats stats;
  stats.kb_facts = 1234567;
  EXPECT_EQ(stats.KbColumn(), "1,234,567");
}

}  // namespace
}  // namespace synth
}  // namespace midas
