#include "midas/synth/ontology_sampler.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "midas/core/midas.h"

namespace midas {
namespace synth {
namespace {

TEST(BuildStockOntologyTest, ShapeAndDeterminism) {
  auto a = BuildStockOntology(5, 13);
  auto b = BuildStockOntology(5, 13);
  ASSERT_EQ(a.size(), 5u);
  EXPECT_EQ(a.NumDistinctPredicates(), b.NumDistinctPredicates());
  for (const auto& type : a.types()) {
    // type + >=2 attrs + tags + id
    EXPECT_GE(type.predicates.size(), 5u);
    EXPECT_EQ(type.predicates[0].name, "type");
    ASSERT_EQ(type.predicates[0].values.size(), 1u);
    EXPECT_EQ(type.predicates[0].values[0], type.name);
  }
  // Different seed -> different attribute pools (sizes may differ).
  auto c = BuildStockOntology(5, 14);
  EXPECT_EQ(c.size(), 5u);
}

class OntologySamplerTest : public ::testing::Test {
 protected:
  OntologySamplerTest()
      : ontology_(BuildStockOntology(3, 21)),
        dict_(std::make_shared<rdf::Dictionary>()),
        sampler_(&ontology_, dict_.get()) {}

  rdf::Ontology ontology_;
  std::shared_ptr<rdf::Dictionary> dict_;
  OntologySampler sampler_;
};

TEST_F(OntologySamplerTest, EntitiesConformToSchema) {
  Rng rng(1);
  std::vector<rdf::Triple> facts;
  auto subjects = sampler_.SampleEntities("type_0", 50, "ent_", &rng, &facts);
  ASSERT_EQ(subjects.size(), 50u);
  EXPECT_FALSE(facts.empty());

  const rdf::TypeSpec* type = ontology_.FindType("type_0");
  std::set<std::string> allowed_preds;
  for (const auto& pred : type->predicates) allowed_preds.insert(pred.name);
  std::set<rdf::TermId> subject_set(subjects.begin(), subjects.end());

  for (const auto& t : facts) {
    EXPECT_TRUE(subject_set.count(t.subject));
    EXPECT_TRUE(allowed_preds.count(dict_->Term(t.predicate)))
        << dict_->Term(t.predicate);
  }

  // The always-present "type" predicate appears exactly once per entity
  // with the right value.
  std::map<rdf::TermId, int> type_facts;
  for (const auto& t : facts) {
    if (dict_->Term(t.predicate) == "type") {
      type_facts[t.subject]++;
      EXPECT_EQ(dict_->Term(t.object), "type_0");
    }
  }
  EXPECT_EQ(type_facts.size(), 50u);
  for (const auto& [s, count] : type_facts) {
    (void)s;
    EXPECT_EQ(count, 1);
  }
}

TEST_F(OntologySamplerTest, MultivaluedPredicateEmitsMultipleValues) {
  Rng rng(2);
  std::vector<rdf::Triple> facts;
  sampler_.SampleEntities("type_1", 100, "m_", &rng, &facts);
  // At least one entity carries >= 2 tag values.
  std::map<rdf::TermId, std::set<rdf::TermId>> tags;
  for (const auto& t : facts) {
    if (dict_->Term(t.predicate) == "t1_tags") {
      tags[t.subject].insert(t.object);
    }
  }
  bool multi = false;
  for (const auto& [s, values] : tags) {
    (void)s;
    if (values.size() >= 2) multi = true;
  }
  EXPECT_TRUE(multi);
}

TEST_F(OntologySamplerTest, UnknownTypeReturnsEmpty) {
  Rng rng(3);
  std::vector<rdf::Triple> facts;
  EXPECT_TRUE(
      sampler_.SampleEntities("no_such_type", 5, "x_", &rng, &facts)
          .empty());
  EXPECT_TRUE(facts.empty());
}

TEST_F(OntologySamplerTest, SubjectsAreUniqueAcrossCalls) {
  Rng rng(4);
  std::vector<rdf::Triple> facts;
  auto a = sampler_.SampleEntities("type_0", 10, "u_", &rng, &facts);
  auto b = sampler_.SampleEntities("type_1", 10, "u_", &rng, &facts);
  std::set<rdf::TermId> all(a.begin(), a.end());
  all.insert(b.begin(), b.end());
  EXPECT_EQ(all.size(), 20u);
}

TEST_F(OntologySamplerTest, MidasFindsTypeSlicesInSampledSource) {
  // Sample two types into one "page" and let MIDAS separate them.
  Rng rng(5);
  std::vector<rdf::Triple> facts;
  sampler_.SampleEntities("type_0", 12, "a_", &rng, &facts);
  sampler_.SampleEntities("type_2", 12, "b_", &rng, &facts);

  rdf::KnowledgeBase kb(dict_);
  core::MidasOptions options;
  options.cost_model = core::CostModel::RunningExample();
  core::MidasAlg alg(options);
  core::SourceInput input;
  input.url = "http://sampled.example.com";
  input.facts = &facts;
  auto slices = alg.Detect(input, kb);

  // Both type groups are covered by some selected slice.
  size_t covered = 0;
  for (const auto& s : slices) covered += s.entities.size();
  EXPECT_GE(covered, 24u);
  EXPECT_GE(slices.size(), 2u);
}

}  // namespace
}  // namespace synth
}  // namespace midas
