#include "midas/synth/corpus_generator.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "midas/util/string_util.h"
#include "midas/web/url.h"

namespace midas {
namespace synth {
namespace {

TEST(CorpusGeneratorTest, Deterministic) {
  CorpusGenParams params = SlimParams(false, 20, 5);
  auto a = GenerateCorpus(params);
  auto b = GenerateCorpus(params);
  EXPECT_EQ(a.corpus->NumFacts(), b.corpus->NumFacts());
  EXPECT_EQ(a.corpus->NumSources(), b.corpus->NumSources());
  EXPECT_EQ(a.silver.size(), b.silver.size());
  EXPECT_EQ(a.kb->size(), b.kb->size());
}

TEST(CorpusGeneratorTest, UrlsFormAHierarchy) {
  auto data = GenerateCorpus(SlimParams(false, 20, 6));
  size_t with_depth2 = 0;
  for (const auto& src : data.corpus->sources()) {
    size_t depth = web::UrlDepth(src.url);
    EXPECT_GE(depth, 1u);
    EXPECT_LE(depth, 2u);
    if (depth == 2) ++with_depth2;
    EXPECT_TRUE(StartsWith(src.url, "http://www.domain"));
  }
  EXPECT_GT(with_depth2, 0u);
}

TEST(CorpusGeneratorTest, EntityGroupsCoverAllSubjects) {
  auto data = GenerateCorpus(SlimParams(false, 20, 7));
  size_t noise = 0, grouped = 0;
  for (const auto& src : data.corpus->sources()) {
    for (const auto& t : src.facts) {
      auto it = data.entity_group.find(t.subject);
      if (it == data.entity_group.end()) continue;  // minted noise terms
      if (it->second == GeneratedCorpus::kNoiseGroup) {
        ++noise;
      } else {
        ++grouped;
      }
    }
  }
  EXPECT_GT(noise, 0u);
  EXPECT_GT(grouped, 0u);
}

TEST(CorpusGeneratorTest, KbCoverageKnobs) {
  CorpusGenParams params = NellLikeParams(0.3);
  params.skewed_large_domain = false;
  auto data = GenerateCorpus(params);
  EXPECT_GT(data.kb->size(), 0u);
  // Known sections put ~95% of their facts into the KB, so the KB is a
  // sizable fraction of the true facts.
  EXPECT_GT(data.kb->size(), data.num_true_facts / 10);
  EXPECT_LT(data.kb->size(), data.num_true_facts);
}

TEST(CorpusGeneratorTest, SkewedDomainDominates) {
  CorpusGenParams params = NellLikeParams(0.3);
  ASSERT_TRUE(params.skewed_large_domain);
  auto data = GenerateCorpus(params);
  // Count facts per domain; domain0 must dwarf the median.
  std::unordered_map<std::string, size_t> per_domain;
  for (const auto& src : data.corpus->sources()) {
    auto url = web::Url::Parse(src.url);
    ASSERT_TRUE(url.ok());
    per_domain[url->host()] += src.facts.size();
  }
  size_t big = per_domain["www.domain0.example.com"];
  size_t max_other = 0;
  for (const auto& [host, count] : per_domain) {
    if (host != "www.domain0.example.com") {
      max_other = std::max(max_other, count);
    }
  }
  EXPECT_GT(big, 5 * max_other);
}

TEST(CorpusGeneratorTest, OpenIeModeExplodesPredicates) {
  auto closed = GenerateCorpus(SlimParams(false, 30, 8));
  auto open = GenerateCorpus(SlimParams(true, 30, 8));
  // Both modes mint extractor-noise predicates, which dampens the ratio;
  // the paraphrase explosion must still dominate.
  EXPECT_GT(static_cast<double>(open.corpus->NumDistinctPredicates()),
            1.5 * static_cast<double>(closed.corpus->NumDistinctPredicates()));
}

TEST(CorpusGeneratorTest, SilverSlicesHaveMinimumNewFacts) {
  CorpusGenParams params = SlimParams(false, 30, 9);
  params.min_silver_new_facts = 25;
  auto data = GenerateCorpus(params);
  for (const auto& gt : data.silver.slices) {
    size_t fresh = 0;
    for (const auto& t : gt.facts) {
      if (!data.kb->Contains(t)) ++fresh;
    }
    EXPECT_GE(fresh, 25u);
  }
}

TEST(CorpusGeneratorTest, SilverRuleHasTwoDefiningProperties) {
  auto data = GenerateCorpus(SlimParams(false, 20, 10));
  ASSERT_GT(data.silver.size(), 0u);
  for (const auto& gt : data.silver.slices) {
    EXPECT_EQ(gt.rule.size(), 2u);  // category + group
    EXPECT_FALSE(gt.description.empty());
    EXPECT_FALSE(gt.entities.empty());
  }
}

TEST(CorpusGeneratorTest, ExtractionLosesFacts) {
  auto data = GenerateCorpus(SlimParams(false, 20, 11));
  // recall < 1 and confidence filtering: extracted < true, filtered <=
  // extracted.
  EXPECT_LT(data.num_filtered, data.num_true_facts);
  EXPECT_LE(data.num_filtered, data.num_extracted);
}

}  // namespace
}  // namespace synth
}  // namespace midas
