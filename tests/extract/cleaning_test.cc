#include "midas/extract/cleaning.h"

#include <gtest/gtest.h>

#include <memory>

namespace midas {
namespace extract {
namespace {

class CleaningTest : public ::testing::Test {
 protected:
  CleaningTest() : dict_(std::make_shared<rdf::Dictionary>()) {}

  void Add(const char* url, const char* s, const char* p, const char* o,
           double conf) {
    facts_.push_back(ExtractedFact{
        url,
        rdf::Triple(dict_->Intern(s), dict_->Intern(p), dict_->Intern(o)),
        conf});
  }

  std::string Term(rdf::TermId id) const { return dict_->Term(id); }

  std::shared_ptr<rdf::Dictionary> dict_;
  std::vector<ExtractedFact> facts_;
};

TEST(NormalizeTermWhitespaceTest, TrimsAndCollapses) {
  EXPECT_EQ(NormalizeTermWhitespace("  Atlas  "), "Atlas");
  EXPECT_EQ(NormalizeTermWhitespace("Project\t\tMercury"),
            "Project Mercury");
  EXPECT_EQ(NormalizeTermWhitespace("a \n b"), "a b");
  EXPECT_EQ(NormalizeTermWhitespace(""), "");
  EXPECT_EQ(NormalizeTermWhitespace("   "), "");
  EXPECT_EQ(NormalizeTermWhitespace("clean"), "clean");
}

TEST_F(CleaningTest, MergesDuplicatesKeepingMaxConfidence) {
  Add("http://x", "Atlas", "sponsor", "NASA", 0.6);
  Add("http://x", "Atlas", "sponsor", "NASA", 0.9);
  Add("http://x", "Atlas", "sponsor", "NASA", 0.7);
  auto stats = CleanExtractions({}, dict_.get(), &facts_);
  ASSERT_EQ(facts_.size(), 1u);
  EXPECT_DOUBLE_EQ(facts_[0].confidence, 0.9);
  EXPECT_EQ(stats.duplicates_merged, 2u);
  EXPECT_EQ(stats.output_records, 1u);
}

TEST_F(CleaningTest, SameTripleOnDifferentPagesKept) {
  Add("http://x/a", "Atlas", "sponsor", "NASA", 0.8);
  Add("http://x/b", "Atlas", "sponsor", "NASA", 0.8);
  CleanExtractions({}, dict_.get(), &facts_);
  EXPECT_EQ(facts_.size(), 2u);
}

TEST_F(CleaningTest, NormalizesWhitespaceAndThenMerges) {
  Add("http://x", "Atlas ", "sponsor", "NASA", 0.5);
  Add("http://x", " Atlas", "sponsor", "NASA", 0.8);
  auto stats = CleanExtractions({}, dict_.get(), &facts_);
  ASSERT_EQ(facts_.size(), 1u);
  EXPECT_EQ(Term(facts_[0].triple.subject), "Atlas");
  EXPECT_DOUBLE_EQ(facts_[0].confidence, 0.8);
  EXPECT_GE(stats.terms_normalized, 2u);
}

TEST_F(CleaningTest, ConfidenceFloorApplied) {
  Add("http://x", "a", "p", "1", 0.2);
  Add("http://x", "b", "p", "2", 0.8);
  CleaningOptions options;
  options.min_confidence = 0.5;
  auto stats = CleanExtractions(options, dict_.get(), &facts_);
  ASSERT_EQ(facts_.size(), 1u);
  EXPECT_EQ(Term(facts_[0].triple.subject), "b");
  EXPECT_EQ(stats.below_confidence, 1u);
}

TEST_F(CleaningTest, FunctionalPredicateKeepsBestObject) {
  Add("http://x", "Atlas", "started", "1957", 0.9);
  Add("http://x", "Atlas", "started", "1958", 0.4);  // extractor misread
  Add("http://x", "Atlas", "sponsor", "NASA", 0.8);
  Add("http://x", "Atlas", "sponsor", "ESA", 0.7);  // sponsor NOT functional
  CleaningOptions options;
  options.functional_predicates = {"started"};
  auto stats = CleanExtractions(options, dict_.get(), &facts_);
  EXPECT_EQ(stats.conflicts_resolved, 1u);
  ASSERT_EQ(facts_.size(), 3u);
  for (const auto& f : facts_) {
    if (Term(f.triple.predicate) == "started") {
      EXPECT_EQ(Term(f.triple.object), "1957");
    }
  }
}

TEST_F(CleaningTest, FunctionalConflictScopedToPage) {
  // Conflicting objects on different pages are both kept: cross-source
  // resolution is the knowledge-fusion stage's job, not extraction
  // hygiene's.
  Add("http://x/a", "Atlas", "started", "1957", 0.9);
  Add("http://x/b", "Atlas", "started", "1958", 0.4);
  CleaningOptions options;
  options.functional_predicates = {"started"};
  CleanExtractions(options, dict_.get(), &facts_);
  EXPECT_EQ(facts_.size(), 2u);
}

TEST_F(CleaningTest, LaterHigherConfidenceWinsFunctionalConflict) {
  Add("http://x", "Atlas", "started", "1958", 0.4);
  Add("http://x", "Atlas", "started", "1957", 0.9);
  CleaningOptions options;
  options.functional_predicates = {"started"};
  CleanExtractions(options, dict_.get(), &facts_);
  ASSERT_EQ(facts_.size(), 1u);
  EXPECT_EQ(Term(facts_[0].triple.object), "1957");
}

TEST_F(CleaningTest, DisableEverythingIsIdentity) {
  Add("http://x", "a ", "p", "1", 0.2);
  Add("http://x", "a ", "p", "1", 0.3);
  CleaningOptions options;
  options.merge_duplicates = false;
  options.normalize_whitespace = false;
  auto stats = CleanExtractions(options, dict_.get(), &facts_);
  EXPECT_EQ(facts_.size(), 2u);
  EXPECT_EQ(Term(facts_[0].triple.subject), "a ");
  EXPECT_EQ(stats.output_records, 2u);
}

TEST_F(CleaningTest, EmptyInput) {
  auto stats = CleanExtractions({}, dict_.get(), &facts_);
  EXPECT_EQ(stats.input_records, 0u);
  EXPECT_EQ(stats.output_records, 0u);
}

}  // namespace
}  // namespace extract
}  // namespace midas
