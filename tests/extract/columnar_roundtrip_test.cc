// TSV <-> columnar equivalence on randomized extraction dumps: both
// formats must yield the same facts, the same TermIds (fresh-dictionary
// load), and bit-identical corpora — which makes everything downstream
// (slices, profits, dedup hashes) independent of the on-disk format.

#include "midas/extract/columnar_io.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "midas/extract/dump_io.h"
#include "midas/extract/extraction.h"
#include "midas/rdf/dictionary.h"
#include "midas/util/random.h"
#include "midas/web/web_source.h"

namespace midas {
namespace extract {
namespace {

class ColumnarRoundtripTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test case: ctest runs cases of this binary as separate
    // concurrent processes, so a shared fixed path would collide.
    const std::string stem =
        ::testing::TempDir() + "/midas_roundtrip_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    tsv_path_ = stem + ".tsv";
    col_path_ = stem + ".midascol";
    std::remove(tsv_path_.c_str());
    std::remove(col_path_.c_str());
  }
  void TearDown() override {
    std::remove(tsv_path_.c_str());
    std::remove(col_path_.c_str());
  }

  // A randomized dump with duplicate (url, triple) pairs and confidences
  // straddling the 0.7 threshold. Confidences are drawn on a 1e-4 grid so
  // the TSV serialization (4 decimal places) is lossless and both formats
  // carry bit-identical values.
  ExtractionDump MakeDump(size_t n, uint64_t seed) const {
    Rng rng(seed);
    ExtractionDump dump;
    dump.dict = std::make_shared<rdf::Dictionary>();
    std::vector<rdf::TermId> entities, predicates;
    for (size_t i = 0; i < 40; ++i) {
      entities.push_back(dump.dict->Intern("entity" + std::to_string(i)));
    }
    for (size_t i = 0; i < 8; ++i) {
      predicates.push_back(dump.dict->Intern("pred" + std::to_string(i)));
    }
    for (size_t i = 0; i < n; ++i) {
      ExtractedFact fact;
      fact.url = "http://site" + std::to_string(rng.Uniform(6)) +
                 ".com/page" + std::to_string(rng.Uniform(5));
      fact.triple =
          rdf::Triple(entities[rng.Uniform(entities.size())],
                      predicates[rng.Uniform(predicates.size())],
                      entities[rng.Uniform(entities.size())]);
      fact.confidence = static_cast<double>(rng.Uniform(10001)) / 10000.0;
      dump.facts.push_back(std::move(fact));
    }
    return dump;
  }

  static void ExpectDumpsEqual(const ExtractionDump& a,
                               const ExtractionDump& b) {
    ASSERT_EQ(a.facts.size(), b.facts.size());
    for (size_t i = 0; i < a.facts.size(); ++i) {
      EXPECT_EQ(a.facts[i].url, b.facts[i].url) << "fact " << i;
      // Compare resolved strings, not raw ids, so the check is meaningful
      // even if the dictionaries assign ids in different orders.
      EXPECT_EQ(a.dict->Term(a.facts[i].triple.subject),
                b.dict->Term(b.facts[i].triple.subject));
      EXPECT_EQ(a.dict->Term(a.facts[i].triple.predicate),
                b.dict->Term(b.facts[i].triple.predicate));
      EXPECT_EQ(a.dict->Term(a.facts[i].triple.object),
                b.dict->Term(b.facts[i].triple.object));
      EXPECT_EQ(a.facts[i].confidence, b.facts[i].confidence);  // bit-exact
    }
  }

  static void ExpectCorporaIdentical(const web::Corpus& a,
                                     const web::Corpus& b) {
    ASSERT_EQ(a.NumSources(), b.NumSources());
    ASSERT_EQ(a.NumFacts(), b.NumFacts());
    for (size_t s = 0; s < a.NumSources(); ++s) {
      const web::WebSource& sa = a.sources()[s];
      const web::WebSource& sb = b.sources()[s];
      EXPECT_EQ(sa.url, sb.url) << "source " << s;
      ASSERT_EQ(sa.facts.size(), sb.facts.size()) << "source " << s;
      for (size_t f = 0; f < sa.facts.size(); ++f) {
        // Raw TermId equality: the columnar fast path must reproduce the
        // exact ids BuildCorpus assigns, not merely equivalent strings.
        EXPECT_EQ(sa.facts[f].subject, sb.facts[f].subject);
        EXPECT_EQ(sa.facts[f].predicate, sb.facts[f].predicate);
        EXPECT_EQ(sa.facts[f].object, sb.facts[f].object);
      }
    }
  }

  std::string tsv_path_;
  std::string col_path_;
};

TEST_F(ColumnarRoundtripTest, DumpSurvivesColumnarRoundTrip) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    const ExtractionDump original = MakeDump(2000, seed);
    ASSERT_TRUE(SaveColumnarDump(col_path_, original).ok());

    ExtractionDump loaded;
    LoadStats stats;
    uint64_t fingerprint = 0;
    ASSERT_TRUE(
        LoadColumnarDump(col_path_, &loaded, &stats, &fingerprint).ok());
    EXPECT_EQ(stats.rows_loaded, original.facts.size());
    EXPECT_EQ(stats.rows_quarantined, 0u);
    EXPECT_NE(fingerprint, 0u);
    ExpectDumpsEqual(original, loaded);
    // Fresh-dictionary load reproduces the saved TermIds exactly.
    for (size_t i = 0; i < original.facts.size(); ++i) {
      EXPECT_EQ(original.facts[i].triple.subject,
                loaded.facts[i].triple.subject);
      EXPECT_EQ(original.facts[i].triple.predicate,
                loaded.facts[i].triple.predicate);
      EXPECT_EQ(original.facts[i].triple.object,
                loaded.facts[i].triple.object);
    }
  }
}

TEST_F(ColumnarRoundtripTest, TsvAndColumnarLoadsAgree) {
  const ExtractionDump original = MakeDump(3000, 0xBEEF);
  ASSERT_TRUE(SaveDump(tsv_path_, original).ok());
  ASSERT_TRUE(SaveColumnarDump(col_path_, original).ok());

  ExtractionDump from_tsv;
  ASSERT_TRUE(LoadDump(tsv_path_, &from_tsv).ok());
  ExtractionDump from_col;
  ASSERT_TRUE(LoadColumnarDump(col_path_, &from_col, nullptr, nullptr).ok());
  ExpectDumpsEqual(from_tsv, from_col);
}

TEST_F(ColumnarRoundtripTest, FastCorpusPathMatchesBuildCorpus) {
  for (uint64_t seed : {11u, 12u}) {
    const ExtractionDump dump = MakeDump(4000, seed);
    ASSERT_TRUE(SaveColumnarDump(col_path_, dump).ok());

    const web::Corpus reference = BuildCorpus(dump, 0.7);
    web::Corpus fast;
    uint64_t fingerprint = 0;
    ASSERT_TRUE(LoadColumnarCorpus(col_path_, 0.7, /*dict=*/nullptr, &fast,
                                   &fingerprint)
                    .ok());
    EXPECT_NE(fingerprint, 0u);
    ExpectCorporaIdentical(reference, fast);
    // Same TermId space too: resolved strings match under each corpus's
    // own dictionary.
    for (size_t s = 0; s < reference.NumSources(); ++s) {
      for (size_t f = 0; f < reference.sources()[s].facts.size(); ++f) {
        EXPECT_EQ(reference.dict().Term(reference.sources()[s].facts[f].subject),
                  fast.dict().Term(fast.sources()[s].facts[f].subject));
      }
    }
  }
}

TEST_F(ColumnarRoundtripTest, SourceGroupedDumpMatchesBuildCorpus) {
  // Grouping all of a source's records contiguously (the layout every
  // writer in this repo produces) routes LoadColumnarCorpus through its
  // per-run dedup fast path; MakeDump's random URL order (the other tests)
  // covers the interleaved fallback. Both must match BuildCorpus exactly.
  for (uint64_t seed : {21u, 22u}) {
    ExtractionDump dump = MakeDump(4000, seed);
    std::stable_sort(dump.facts.begin(), dump.facts.end(),
                     [](const ExtractedFact& a, const ExtractedFact& b) {
                       return a.url < b.url;
                     });
    ASSERT_TRUE(SaveColumnarDump(col_path_, dump).ok());

    const web::Corpus reference = BuildCorpus(dump, 0.7);
    web::Corpus fast;
    ASSERT_TRUE(
        LoadColumnarCorpus(col_path_, 0.7, /*dict=*/nullptr, &fast, nullptr)
            .ok());
    ExpectCorporaIdentical(reference, fast);
  }
}

TEST_F(ColumnarRoundtripTest, PreSeededDictionaryRemapsCodes) {
  const ExtractionDump dump = MakeDump(1500, 99);
  ASSERT_TRUE(SaveColumnarDump(col_path_, dump).ok());

  // A dictionary that already holds unrelated terms forces the remap path
  // (code != TermId); resolved strings must still match the reference.
  auto seeded = std::make_shared<rdf::Dictionary>();
  seeded->Intern("pre-existing-kb-term-a");
  seeded->Intern("pre-existing-kb-term-b");
  const web::Corpus reference = BuildCorpus(dump, 0.7);

  web::Corpus remapped;
  ASSERT_TRUE(
      LoadColumnarCorpus(col_path_, 0.7, seeded, &remapped, nullptr).ok());
  ASSERT_EQ(reference.NumSources(), remapped.NumSources());
  ASSERT_EQ(reference.NumFacts(), remapped.NumFacts());
  for (size_t s = 0; s < reference.NumSources(); ++s) {
    const web::WebSource& sa = reference.sources()[s];
    const web::WebSource& sb = remapped.sources()[s];
    EXPECT_EQ(sa.url, sb.url);
    ASSERT_EQ(sa.facts.size(), sb.facts.size());
    for (size_t f = 0; f < sa.facts.size(); ++f) {
      EXPECT_EQ(reference.dict().Term(sa.facts[f].subject),
                remapped.dict().Term(sb.facts[f].subject));
      EXPECT_EQ(reference.dict().Term(sa.facts[f].predicate),
                remapped.dict().Term(sb.facts[f].predicate));
      EXPECT_EQ(reference.dict().Term(sa.facts[f].object),
                remapped.dict().Term(sb.facts[f].object));
    }
  }
  // The seeded terms kept their ids.
  EXPECT_EQ(remapped.dict().Term(0), "pre-existing-kb-term-a");
  EXPECT_EQ(remapped.dict().Term(1), "pre-existing-kb-term-b");
}

TEST_F(ColumnarRoundtripTest, ThresholdFiltersExactlyLikeBuildCorpus) {
  const ExtractionDump dump = MakeDump(2500, 7);
  ASSERT_TRUE(SaveColumnarDump(col_path_, dump).ok());
  for (double threshold : {0.0, 0.5, 0.7, 0.95, 1.0}) {
    const web::Corpus reference = BuildCorpus(dump, threshold);
    web::Corpus fast;
    ASSERT_TRUE(
        LoadColumnarCorpus(col_path_, threshold, nullptr, &fast, nullptr)
            .ok());
    ExpectCorporaIdentical(reference, fast);
  }
}

TEST_F(ColumnarRoundtripTest, EmptyDumpRoundTrips) {
  ExtractionDump dump;
  dump.dict = std::make_shared<rdf::Dictionary>();
  ASSERT_TRUE(SaveColumnarDump(col_path_, dump).ok());
  ExtractionDump loaded;
  ASSERT_TRUE(LoadColumnarDump(col_path_, &loaded, nullptr, nullptr).ok());
  EXPECT_TRUE(loaded.facts.empty());
  web::Corpus corpus;
  ASSERT_TRUE(
      LoadColumnarCorpus(col_path_, 0.7, nullptr, &corpus, nullptr).ok());
  EXPECT_EQ(corpus.NumSources(), 0u);
}

TEST_F(ColumnarRoundtripTest, FingerprintIsStableAcrossSaves) {
  const ExtractionDump dump = MakeDump(800, 21);
  ASSERT_TRUE(SaveColumnarDump(col_path_, dump).ok());
  uint64_t fp1 = 0, fp2 = 0;
  ExtractionDump scratch1, scratch2;
  ASSERT_TRUE(LoadColumnarDump(col_path_, &scratch1, nullptr, &fp1).ok());
  ASSERT_TRUE(SaveColumnarDump(col_path_, dump).ok());  // rewrite
  ASSERT_TRUE(LoadColumnarDump(col_path_, &scratch2, nullptr, &fp2).ok());
  EXPECT_EQ(fp1, fp2);
}

}  // namespace
}  // namespace extract
}  // namespace midas
