#include "midas/extract/extraction.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "midas/extract/dump_io.h"

namespace midas {
namespace extract {
namespace {

ExtractionDump MakeDump() {
  ExtractionDump dump;
  dump.dict = std::make_shared<rdf::Dictionary>();
  auto add = [&](const char* url, const char* s, const char* p,
                 const char* o, double conf) {
    dump.facts.push_back(ExtractedFact{
        url,
        rdf::Triple(dump.dict->Intern(s), dump.dict->Intern(p),
                    dump.dict->Intern(o)),
        conf});
  };
  add("http://x.com/a", "Atlas", "sponsor", "NASA", 0.95);
  add("http://x.com/a", "Atlas", "started", "1957", 0.72);
  add("http://x.com/a", "Atlas", "noise", "junk", 0.3);
  add("http://x.com/b", "Castor-4", "sponsor", "NASA", 0.88);
  return dump;
}

TEST(FilterByConfidenceTest, KeepsStrictlyAbove) {
  auto dump = MakeDump();
  auto kept = FilterByConfidence(dump.facts, 0.7);
  EXPECT_EQ(kept.size(), 3u);
  kept = FilterByConfidence(dump.facts, 0.72);  // strict >
  EXPECT_EQ(kept.size(), 2u);
  kept = FilterByConfidence(dump.facts, 0.0);
  EXPECT_EQ(kept.size(), 4u);
}

TEST(BuildCorpusTest, GroupsByUrlAndFilters) {
  auto dump = MakeDump();
  web::Corpus corpus = BuildCorpus(dump, kKnowledgeVaultConfidenceThreshold);
  EXPECT_EQ(corpus.NumSources(), 2u);
  const auto* a = corpus.FindSource("http://x.com/a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->facts.size(), 2u);  // noise fact filtered out
  EXPECT_EQ(corpus.shared_dict().get(), dump.dict.get());
}

TEST(DumpIoTest, SaveLoadRoundTrip) {
  std::string path = ::testing::TempDir() + "/midas_dump_test.tsv";
  auto dump = MakeDump();
  ASSERT_TRUE(SaveDump(path, dump).ok());

  ExtractionDump loaded;
  ASSERT_TRUE(LoadDump(path, &loaded).ok());
  ASSERT_EQ(loaded.facts.size(), dump.facts.size());
  EXPECT_EQ(loaded.facts[0].url, "http://x.com/a");
  EXPECT_EQ(loaded.dict->Term(loaded.facts[0].triple.subject), "Atlas");
  EXPECT_NEAR(loaded.facts[1].confidence, 0.72, 1e-6);
  std::remove(path.c_str());
}

TEST(DumpIoTest, RejectsBadConfidence) {
  std::string path = ::testing::TempDir() + "/midas_dump_bad.tsv";
  {
    FILE* f = fopen(path.c_str(), "w");
    fputs("http://x.com\ts\tp\to\t1.5\n", f);
    fclose(f);
  }
  ExtractionDump loaded;
  EXPECT_EQ(LoadDump(path, &loaded).code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(DumpIoTest, RejectsWrongColumnCount) {
  std::string path = ::testing::TempDir() + "/midas_dump_cols.tsv";
  {
    FILE* f = fopen(path.c_str(), "w");
    fputs("http://x.com\ts\tp\to\n", f);
    fclose(f);
  }
  ExtractionDump loaded;
  EXPECT_EQ(LoadDump(path, &loaded).code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace extract
}  // namespace midas
