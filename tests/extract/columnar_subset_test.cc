// Subset and parallel columnar loads against the full serial load: a
// subset materialization of selected sources must equal filtering a full
// load to those sources (same TermIds, same fact order), a multi-threaded
// load must be bit-identical to the serial one, and CollectColumnarFacts
// (the worker side of by-reference dispatch) must reproduce exactly the
// fact vectors the in-process framework builds from a corpus.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "midas/extract/columnar_io.h"
#include "midas/extract/extraction.h"
#include "midas/rdf/dictionary.h"
#include "midas/rdf/triple.h"
#include "midas/store/columnar.h"
#include "midas/util/random.h"
#include "midas/web/url.h"
#include "midas/web/web_source.h"

namespace midas {
namespace extract {
namespace {

class ColumnarSubsetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    col_path_ = ::testing::TempDir() + "/midas_subset_" +
                ::testing::UnitTest::GetInstance()->current_test_info()->name() +
                ".midascol";
    std::remove(col_path_.c_str());
  }
  void TearDown() override { std::remove(col_path_.c_str()); }

  // Randomized dump shaped like the roundtrip tests: duplicate (url, triple)
  // pairs, confidences straddling 0.7. `grouped` stable-sorts records by URL
  // first appearance, the layout whose save carries the source-range index.
  ExtractionDump MakeDump(size_t n, uint64_t seed, bool grouped) const {
    Rng rng(seed);
    ExtractionDump dump;
    dump.dict = std::make_shared<rdf::Dictionary>();
    std::vector<rdf::TermId> entities, predicates;
    for (size_t i = 0; i < 40; ++i) {
      entities.push_back(dump.dict->Intern("entity" + std::to_string(i)));
    }
    for (size_t i = 0; i < 8; ++i) {
      predicates.push_back(dump.dict->Intern("pred" + std::to_string(i)));
    }
    for (size_t i = 0; i < n; ++i) {
      ExtractedFact fact;
      fact.url = "http://site" + std::to_string(rng.Uniform(12)) + ".com/page" +
                 std::to_string(rng.Uniform(6));
      fact.triple = rdf::Triple(entities[rng.Uniform(entities.size())],
                                predicates[rng.Uniform(predicates.size())],
                                entities[rng.Uniform(entities.size())]);
      fact.confidence = static_cast<double>(rng.Uniform(10001)) / 10000.0;
      dump.facts.push_back(std::move(fact));
    }
    if (grouped) {
      std::vector<std::pair<std::string, uint32_t>> order_vec;
      auto order_of = [&order_vec](const std::string& url) {
        for (const auto& [u, o] : order_vec) {
          if (u == url) return o;
        }
        order_vec.emplace_back(url, static_cast<uint32_t>(order_vec.size()));
        return order_vec.back().second;
      };
      std::stable_sort(dump.facts.begin(), dump.facts.end(),
                       [&](const ExtractedFact& a, const ExtractedFact& b) {
                         return order_of(a.url) < order_of(b.url);
                       });
    }
    return dump;
  }

  // Saves `dump`, opens a lazily-verified reader over it.
  void SaveAndOpen(const ExtractionDump& dump, store::ColumnarReader* reader) {
    ASSERT_TRUE(SaveColumnarDump(col_path_, dump).ok());
    store::ColumnarReadOptions options;
    options.lazy_verify = true;
    ASSERT_TRUE(reader->Open(col_path_, options).ok());
  }

  static void ExpectSourcesEqual(const web::WebSource& a,
                                 const web::WebSource& b) {
    EXPECT_EQ(a.url, b.url);
    ASSERT_EQ(a.facts.size(), b.facts.size()) << a.url;
    for (size_t f = 0; f < a.facts.size(); ++f) {
      // Raw TermId equality: both corpora adopted the same file dictionary.
      EXPECT_EQ(a.facts[f], b.facts[f]) << a.url << " fact " << f;
    }
  }

  std::string col_path_;
};

TEST_F(ColumnarSubsetTest, SubsetMatchesFilteredFullLoad) {
  const ExtractionDump dump = MakeDump(5000, 31, /*grouped=*/true);
  store::ColumnarReader reader;
  SaveAndOpen(dump, &reader);
  ASSERT_TRUE(reader.has_source_index());

  for (double threshold : {0.0, 0.7}) {
    ColumnarLoadOptions options;
    options.threshold = threshold;
    web::Corpus full;
    std::vector<rdf::TermId> remap;
    ASSERT_TRUE(
        LoadColumnarCorpusFromReader(&reader, options, &full, &remap).ok());
    EXPECT_TRUE(remap.empty());  // fresh dictionary: codes adopted verbatim

    // Select every third source of the full corpus, then every file url
    // code normalizing to a selected source (whole canon groups, the
    // BuildSourceRangeCatalog contract).
    std::set<std::string> selected_urls;
    std::vector<size_t> selected_sources;
    for (size_t s = 0; s < full.NumSources(); s += 3) {
      selected_sources.push_back(s);
      selected_urls.insert(full.sources()[s].url);
    }
    std::vector<uint32_t> url_codes;
    for (uint32_t code = 0; code < reader.num_urls(); ++code) {
      if (selected_urls.count(web::NormalizeUrl(reader.url(code))) > 0) {
        url_codes.push_back(code);
      }
    }

    // Seeded with the full load's dictionary, the subset's lazy interning
    // resolves every term to its existing id — raw TermId equality holds.
    ColumnarLoadOptions seeded = options;
    seeded.dict = full.shared_dict();
    web::Corpus subset;
    ASSERT_TRUE(
        LoadColumnarCorpusSubset(&reader, url_codes, seeded, &subset).ok());
    ASSERT_EQ(subset.NumSources(), selected_sources.size());
    for (size_t i = 0; i < selected_sources.size(); ++i) {
      ExpectSourcesEqual(full.sources()[selected_sources[i]],
                         subset.sources()[i]);
    }

    // A fresh dictionary interns in first-use order: ids may differ from
    // the file codes, but every resolved term string must still match.
    web::Corpus fresh;
    ASSERT_TRUE(
        LoadColumnarCorpusSubset(&reader, url_codes, options, &fresh).ok());
    ASSERT_EQ(fresh.NumSources(), selected_sources.size());
    for (size_t i = 0; i < selected_sources.size(); ++i) {
      const web::WebSource& want = full.sources()[selected_sources[i]];
      const web::WebSource& got = fresh.sources()[i];
      EXPECT_EQ(want.url, got.url);
      ASSERT_EQ(want.facts.size(), got.facts.size()) << want.url;
      for (size_t f = 0; f < want.facts.size(); ++f) {
        EXPECT_EQ(full.dict().Term(want.facts[f].subject),
                  fresh.dict().Term(got.facts[f].subject));
        EXPECT_EQ(full.dict().Term(want.facts[f].predicate),
                  fresh.dict().Term(got.facts[f].predicate));
        EXPECT_EQ(full.dict().Term(want.facts[f].object),
                  fresh.dict().Term(got.facts[f].object));
      }
    }
  }
}

TEST_F(ColumnarSubsetTest, SubsetRequiresSourceIndex) {
  // Random URL order: the writer cannot emit the index, so a subset load
  // must refuse instead of scanning the whole file.
  const ExtractionDump dump = MakeDump(800, 5, /*grouped=*/false);
  store::ColumnarReader reader;
  SaveAndOpen(dump, &reader);
  ASSERT_FALSE(reader.has_source_index());

  web::Corpus subset;
  const Status status =
      LoadColumnarCorpusSubset(&reader, {0}, ColumnarLoadOptions{}, &subset);
  EXPECT_FALSE(status.ok());
}

TEST_F(ColumnarSubsetTest, ParallelLoadBitIdenticalToSerial) {
  const ExtractionDump dump = MakeDump(6000, 47, /*grouped=*/true);
  store::ColumnarReader reader;
  SaveAndOpen(dump, &reader);

  ColumnarLoadOptions serial_options;
  serial_options.threshold = 0.7;
  web::Corpus serial;
  std::vector<rdf::TermId> serial_remap;
  ASSERT_TRUE(LoadColumnarCorpusFromReader(&reader, serial_options, &serial,
                                           &serial_remap)
                  .ok());

  for (size_t threads : {2u, 4u, 7u}) {
    // Fresh reader per load: the parallel path must settle lazy
    // verification itself, not inherit the serial load's memoization.
    store::ColumnarReader fresh;
    store::ColumnarReadOptions read_options;
    read_options.lazy_verify = true;
    ASSERT_TRUE(fresh.Open(col_path_, read_options).ok());
    ColumnarLoadOptions options = serial_options;
    options.num_threads = threads;
    web::Corpus parallel;
    std::vector<rdf::TermId> remap;
    ASSERT_TRUE(
        LoadColumnarCorpusFromReader(&fresh, options, &parallel, &remap).ok());
    EXPECT_EQ(serial_remap, remap);
    ASSERT_EQ(serial.NumSources(), parallel.NumSources()) << threads;
    ASSERT_EQ(serial.NumFacts(), parallel.NumFacts()) << threads;
    for (size_t s = 0; s < serial.NumSources(); ++s) {
      ExpectSourcesEqual(serial.sources()[s], parallel.sources()[s]);
    }
  }
}

TEST_F(ColumnarSubsetTest, ParallelLoadRemapsSeededDictionaryIdentically) {
  const ExtractionDump dump = MakeDump(3000, 53, /*grouped=*/true);
  store::ColumnarReader reader;
  SaveAndOpen(dump, &reader);

  auto MakeSeeded = [] {
    auto dict = std::make_shared<rdf::Dictionary>();
    dict->Intern("kb-resident-term-a");
    dict->Intern("kb-resident-term-b");
    return dict;
  };
  ColumnarLoadOptions options;
  options.threshold = 0.7;
  options.dict = MakeSeeded();
  web::Corpus serial;
  std::vector<rdf::TermId> serial_remap;
  ASSERT_TRUE(
      LoadColumnarCorpusFromReader(&reader, options, &serial, &serial_remap)
          .ok());
  EXPECT_FALSE(serial_remap.empty());  // seeded: codes shifted past residents

  options.dict = MakeSeeded();
  options.num_threads = 4;
  web::Corpus parallel;
  std::vector<rdf::TermId> remap;
  ASSERT_TRUE(
      LoadColumnarCorpusFromReader(&reader, options, &parallel, &remap).ok());
  EXPECT_EQ(serial_remap, remap);
  ASSERT_EQ(serial.NumSources(), parallel.NumSources());
  for (size_t s = 0; s < serial.NumSources(); ++s) {
    ExpectSourcesEqual(serial.sources()[s], parallel.sources()[s]);
  }
}

TEST_F(ColumnarSubsetTest, CollectUnsortedMatchesEachCorpusSource) {
  const ExtractionDump dump = MakeDump(4000, 61, /*grouped=*/true);
  store::ColumnarReader reader;
  SaveAndOpen(dump, &reader);

  const double threshold = 0.7;
  ColumnarLoadOptions options;
  options.threshold = threshold;
  web::Corpus corpus;
  std::vector<rdf::TermId> remap;
  ASSERT_TRUE(
      LoadColumnarCorpusFromReader(&reader, options, &corpus, &remap).ok());

  SourceRangeCatalog catalog;
  ASSERT_TRUE(BuildSourceRangeCatalog(&reader, corpus, &catalog).ok());
  ASSERT_EQ(catalog.size(), corpus.NumSources());

  for (size_t s = 0; s < corpus.NumSources(); ++s) {
    ASSERT_FALSE(catalog[s].empty()) << corpus.sources()[s].url;
    std::vector<rdf::Triple> collected;
    ASSERT_TRUE(CollectColumnarFacts(reader, remap, threshold, catalog[s],
                                     /*sorted=*/false, &collected)
                    .ok());
    // Unsorted collection reproduces the source's corpus fact list exactly
    // (record-order dedup) — the ablation-mode worker contract.
    EXPECT_EQ(collected, corpus.sources()[s].facts) << corpus.sources()[s].url;
  }
}

TEST_F(ColumnarSubsetTest, CollectSortedMatchesNormalizedUnion) {
  const ExtractionDump dump = MakeDump(4000, 67, /*grouped=*/true);
  store::ColumnarReader reader;
  SaveAndOpen(dump, &reader);

  const double threshold = 0.7;
  ColumnarLoadOptions options;
  options.threshold = threshold;
  web::Corpus corpus;
  std::vector<rdf::TermId> remap;
  ASSERT_TRUE(
      LoadColumnarCorpusFromReader(&reader, options, &corpus, &remap).ok());
  SourceRangeCatalog catalog;
  ASSERT_TRUE(BuildSourceRangeCatalog(&reader, corpus, &catalog).ok());
  ASSERT_GE(corpus.NumSources(), 4u);

  // A multi-source shard, as the hierarchy executor builds them: the union
  // of several sources' ranges, collected sorted, must equal the
  // framework's NormalizeShardFacts (sort + dedup) over the union of those
  // sources' corpus fact lists.
  const std::vector<size_t> members = {0, 2, 3};
  std::vector<store::RecordRange> ranges;
  std::vector<rdf::Triple> expected;
  for (const size_t s : members) {
    ranges.insert(ranges.end(), catalog[s].begin(), catalog[s].end());
    expected.insert(expected.end(), corpus.sources()[s].facts.begin(),
                    corpus.sources()[s].facts.end());
  }
  std::sort(expected.begin(), expected.end());
  expected.erase(std::unique(expected.begin(), expected.end()),
                 expected.end());

  std::vector<rdf::Triple> collected;
  ASSERT_TRUE(CollectColumnarFacts(reader, remap, threshold, ranges,
                                   /*sorted=*/true, &collected)
                  .ok());
  EXPECT_EQ(collected, expected);
}

TEST_F(ColumnarSubsetTest, CollectRejectsHostileRanges) {
  const ExtractionDump dump = MakeDump(500, 71, /*grouped=*/true);
  store::ColumnarReader reader;
  SaveAndOpen(dump, &reader);
  const std::vector<rdf::TermId> remap;  // identity

  std::vector<rdf::Triple> out;
  // Range past the end of the file.
  EXPECT_FALSE(CollectColumnarFacts(reader, remap, 0.0,
                                    {{reader.num_records(),
                                      reader.num_records() + 10}},
                                    false, &out)
                   .ok());
  // Inverted range.
  EXPECT_FALSE(CollectColumnarFacts(reader, remap, 0.0, {{10, 2}}, false, &out)
                   .ok());
}

}  // namespace
}  // namespace extract
}  // namespace midas
