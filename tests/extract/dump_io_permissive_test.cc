// LoadDump strict-vs-permissive contract: strict aborts on the first
// malformed row (historical behavior), permissive quarantines malformed
// rows — counted in LoadStats and the extract.rows_quarantined counter —
// and still loads every well-formed row.

#include "midas/extract/dump_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "midas/fault/fault.h"
#include "midas/obs/metrics.h"

namespace midas {
namespace extract {
namespace {

class DumpIoPermissiveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/midas_dump_permissive_test.tsv";
    std::remove(path_.c_str());
#ifndef MIDAS_OBS_NOOP
    obs::Registry::Global().ResetAllForTest();
#endif
  }
  void TearDown() override {
    fault::FaultInjector::Global().Disarm();
    std::remove(path_.c_str());
  }

  void WriteDump(const std::string& contents) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out << contents;
    ASSERT_TRUE(static_cast<bool>(out));
  }

  // Two malformed rows (wrong field count, bad confidence) between three
  // good ones.
  void WriteMixedDump() {
    WriteDump(
        "# comment line\n"
        "http://x.com/a\tAtlas\tsponsor\tNASA\t0.95\n"
        "http://x.com/a\tAtlas\tstarted\n"  // 3 fields, not 5
        "http://x.com/a\tAtlas\tstarted\t1957\t0.72\n"
        "http://x.com/b\tCastor-4\tsponsor\tNASA\tnot-a-number\n"
        "http://x.com/b\tCastor-4\tkind\trocket\t0.8\n");
  }

  std::string path_;
};

TEST_F(DumpIoPermissiveTest, StrictModeAbortsOnFirstMalformedRow) {
  WriteMixedDump();
  ExtractionDump dump;
  LoadStats stats;
  const Status status = LoadDump(path_, LoadOptions{}, &dump, &stats);
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_EQ(stats.rows_quarantined, 0u);
}

TEST_F(DumpIoPermissiveTest, TwoArgOverloadStaysStrict) {
  WriteMixedDump();
  ExtractionDump dump;
  EXPECT_EQ(LoadDump(path_, &dump).code(), StatusCode::kCorruption);
}

TEST_F(DumpIoPermissiveTest, PermissiveModeQuarantinesAndLoadsTheRest) {
  WriteMixedDump();
  ExtractionDump dump;
  LoadStats stats;
  LoadOptions options;
  options.strict = false;
  ASSERT_TRUE(LoadDump(path_, options, &dump, &stats).ok());
  EXPECT_EQ(stats.rows_loaded, 3u);
  EXPECT_EQ(stats.rows_quarantined, 2u);
  ASSERT_EQ(dump.facts.size(), 3u);
  EXPECT_EQ(dump.dict->Term(dump.facts[0].triple.subject), "Atlas");
  EXPECT_EQ(dump.dict->Term(dump.facts[2].triple.object), "rocket");
  EXPECT_DOUBLE_EQ(dump.facts[1].confidence, 0.72);

#ifndef MIDAS_OBS_NOOP
  const obs::Counter* c =
      obs::Registry::Global().FindCounter("extract.rows_quarantined");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->Value(), 2u);
#endif
}

TEST_F(DumpIoPermissiveTest, PermissiveCleanDumpQuarantinesNothing) {
  WriteDump("http://x.com/a\tAtlas\tsponsor\tNASA\t0.95\n");
  ExtractionDump dump;
  LoadStats stats;
  LoadOptions options;
  options.strict = false;
  ASSERT_TRUE(LoadDump(path_, options, &dump, &stats).ok());
  EXPECT_EQ(stats.rows_loaded, 1u);
  EXPECT_EQ(stats.rows_quarantined, 0u);
}

TEST_F(DumpIoPermissiveTest, OutOfRangeConfidenceIsMalformed) {
  WriteDump(
      "http://x.com/a\tAtlas\tsponsor\tNASA\t1.5\n"
      "http://x.com/a\tAtlas\tstarted\t1957\t-0.1\n"
      "http://x.com/a\tAtlas\tkind\trocket\t0.9\n");
  ExtractionDump dump;
  LoadStats stats;
  LoadOptions options;
  options.strict = false;
  ASSERT_TRUE(LoadDump(path_, options, &dump, &stats).ok());
  EXPECT_EQ(stats.rows_loaded, 1u);
  EXPECT_EQ(stats.rows_quarantined, 2u);
}

#ifdef MIDAS_FAULT_INJECTION

TEST_F(DumpIoPermissiveTest, InjectedCorruptRecordsAreQuarantined) {
  WriteDump(
      "http://x.com/a\tAtlas\tsponsor\tNASA\t0.95\n"
      "http://x.com/a\tAtlas\tstarted\t1957\t0.72\n"
      "http://x.com/b\tCastor-4\tkind\trocket\t0.8\n");
  fault::ScopedFaultSpec armed("site=dump_record,rate=1,seed=1");

  ExtractionDump strict_dump;
  EXPECT_EQ(LoadDump(path_, &strict_dump).code(), StatusCode::kCorruption);

  ExtractionDump dump;
  LoadStats stats;
  LoadOptions options;
  options.strict = false;
  ASSERT_TRUE(LoadDump(path_, options, &dump, &stats).ok());
  EXPECT_EQ(stats.rows_loaded, 0u);
  EXPECT_EQ(stats.rows_quarantined, 3u);
  EXPECT_TRUE(dump.facts.empty());
}

#endif  // MIDAS_FAULT_INJECTION

}  // namespace
}  // namespace extract
}  // namespace midas
