#include "midas/extract/extractor_sim.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "midas/util/string_util.h"

namespace midas {
namespace extract {
namespace {

std::vector<PageContent> MakePages(rdf::Dictionary* dict, size_t num_pages,
                                   size_t facts_per_page) {
  std::vector<PageContent> pages;
  for (size_t p = 0; p < num_pages; ++p) {
    PageContent page;
    page.url = StringPrintf("http://site.com/page%zu", p);
    for (size_t f = 0; f < facts_per_page; ++f) {
      page.facts.emplace_back(
          dict->Intern(StringPrintf("e%zu_%zu", p, f)),
          dict->Intern("pred"),
          dict->Intern(StringPrintf("v%zu", f)));
    }
    pages.push_back(std::move(page));
  }
  return pages;
}

TEST(ExtractionSimulatorTest, RecallControlsTrueExtractionRate) {
  auto dict = std::make_shared<rdf::Dictionary>();
  auto pages = MakePages(dict.get(), 100, 50);  // 5000 true facts

  ExtractorProfile profile;
  profile.recall = 0.3;
  profile.noise_rate = 0.0;
  ExtractionSimulator sim(profile, dict.get());
  Rng rng(1);
  auto dump = sim.ExtractAll(pages, dict, &rng);

  EXPECT_NEAR(static_cast<double>(dump.facts.size()), 1500.0, 120.0);
  // All extracted facts are true page facts (no noise configured).
  std::unordered_set<rdf::Triple, rdf::TripleHash> truth;
  for (const auto& page : pages) {
    truth.insert(page.facts.begin(), page.facts.end());
  }
  for (const auto& f : dump.facts) {
    EXPECT_TRUE(truth.count(f.triple));
  }
}

TEST(ExtractionSimulatorTest, NoiseRateMintsSpuriousFacts) {
  auto dict = std::make_shared<rdf::Dictionary>();
  auto pages = MakePages(dict.get(), 50, 40);  // 2000 true facts

  ExtractorProfile profile;
  profile.recall = 0.0;
  profile.noise_rate = 0.5;
  ExtractionSimulator sim(profile, dict.get());
  Rng rng(2);
  auto dump = sim.ExtractAll(pages, dict, &rng);

  EXPECT_NEAR(static_cast<double>(dump.facts.size()), 1000.0, 100.0);
  // Every extraction is spurious: it must differ from the original triple.
  std::unordered_set<rdf::Triple, rdf::TripleHash> truth;
  for (const auto& page : pages) {
    truth.insert(page.facts.begin(), page.facts.end());
  }
  for (const auto& f : dump.facts) {
    EXPECT_FALSE(truth.count(f.triple));
  }
}

TEST(ExtractionSimulatorTest, ConfidencesSeparateTrueFromNoise) {
  auto dict = std::make_shared<rdf::Dictionary>();
  auto pages = MakePages(dict.get(), 50, 40);

  ExtractorProfile profile;  // defaults: recall .3, noise .25
  ExtractionSimulator sim(profile, dict.get());
  Rng rng(3);
  std::unordered_set<rdf::Triple, rdf::TripleHash> truth;
  for (const auto& page : pages) {
    truth.insert(page.facts.begin(), page.facts.end());
  }
  auto dump = sim.ExtractAll(pages, dict, &rng);

  double true_sum = 0, noise_sum = 0;
  size_t true_n = 0, noise_n = 0;
  for (const auto& f : dump.facts) {
    if (truth.count(f.triple)) {
      true_sum += f.confidence;
      ++true_n;
    } else {
      noise_sum += f.confidence;
      ++noise_n;
    }
    EXPECT_GT(f.confidence, 0.0);
    EXPECT_LT(f.confidence, 1.0);
  }
  ASSERT_GT(true_n, 0u);
  ASSERT_GT(noise_n, 0u);
  EXPECT_GT(true_sum / static_cast<double>(true_n),
            noise_sum / static_cast<double>(noise_n) + 0.2);
}

TEST(ExtractionSimulatorTest, SalienceBoostsExtraction) {
  auto dict = std::make_shared<rdf::Dictionary>();
  PageContent page;
  page.url = "http://site.com/p";
  for (int i = 0; i < 2000; ++i) {
    page.facts.emplace_back(dict->Intern("e" + std::to_string(i)),
                            dict->Intern("p"), dict->Intern("v"));
    page.salience.push_back(i % 2 == 0 ? 3.0 : 1.0);
  }
  ExtractorProfile profile;
  profile.recall = 0.3;
  profile.noise_rate = 0.0;
  ExtractionSimulator sim(profile, dict.get());
  Rng rng(4);
  std::vector<ExtractedFact> out;
  sim.ExtractPage(page, &rng, &out);

  size_t salient = 0, plain = 0;
  for (const auto& f : out) {
    // Even-index subjects are the salient ones ("e0", "e2", ...).
    const std::string& name = dict->Term(f.triple.subject);
    int idx = std::stoi(name.substr(1));
    (idx % 2 == 0 ? salient : plain)++;
  }
  // salience 3.0 * recall 0.3 = 0.9 vs 0.3: expect ~900 vs ~300.
  EXPECT_GT(salient, 800u);
  EXPECT_LT(plain, 400u);
}

TEST(ExtractionSimulatorTest, DeterministicGivenRng) {
  auto dict_a = std::make_shared<rdf::Dictionary>();
  auto pages_a = MakePages(dict_a.get(), 10, 10);
  auto dict_b = std::make_shared<rdf::Dictionary>();
  auto pages_b = MakePages(dict_b.get(), 10, 10);

  ExtractorProfile profile;
  ExtractionSimulator sim_a(profile, dict_a.get());
  ExtractionSimulator sim_b(profile, dict_b.get());
  Rng rng_a(7), rng_b(7);
  auto dump_a = sim_a.ExtractAll(pages_a, dict_a, &rng_a);
  auto dump_b = sim_b.ExtractAll(pages_b, dict_b, &rng_b);

  ASSERT_EQ(dump_a.facts.size(), dump_b.facts.size());
  for (size_t i = 0; i < dump_a.facts.size(); ++i) {
    EXPECT_EQ(dump_a.facts[i].url, dump_b.facts[i].url);
    EXPECT_DOUBLE_EQ(dump_a.facts[i].confidence, dump_b.facts[i].confidence);
  }
}

}  // namespace
}  // namespace extract
}  // namespace midas
