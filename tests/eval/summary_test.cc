#include "midas/eval/summary.h"

#include <gtest/gtest.h>

namespace midas {
namespace eval {
namespace {

core::DiscoveredSlice Slice(const std::string& url, uint32_t first,
                            uint32_t count, double profit, bool all_new) {
  core::DiscoveredSlice s;
  s.source_url = url;
  s.profit = profit;
  for (uint32_t e = first; e < first + count; ++e) {
    s.entities.push_back(e);
    s.facts.emplace_back(e, 1, e);
  }
  s.num_facts = s.facts.size();
  s.num_new_facts = all_new ? s.num_facts : s.num_facts / 2;
  return s;
}

TEST(SummaryTest, EmptySet) {
  auto s = SummarizeSlices({});
  EXPECT_EQ(s.num_slices, 0u);
  EXPECT_EQ(s.distinct_facts, 0u);
  EXPECT_DOUBLE_EQ(s.total_profit, 0.0);
  EXPECT_FALSE(s.ToString().empty());
}

TEST(SummaryTest, CountsAndDistribution) {
  std::vector<core::DiscoveredSlice> slices = {
      Slice("http://a.com/x/p", 0, 10, 5.0, true),
      Slice("http://a.com/y", 10, 20, 9.0, true),
      Slice("http://b.com", 30, 4, 1.0, true),
  };
  auto s = SummarizeSlices(slices);
  EXPECT_EQ(s.num_slices, 3u);
  EXPECT_EQ(s.total_facts, 34u);
  EXPECT_EQ(s.distinct_facts, 34u);
  EXPECT_EQ(s.distinct_new_facts, 34u);
  EXPECT_DOUBLE_EQ(s.total_profit, 15.0);
  EXPECT_EQ(s.min_facts, 4u);
  EXPECT_EQ(s.max_facts, 20u);
  EXPECT_NEAR(s.mean_facts, 34.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(s.profit_p50, 5.0);
  // URL depths: 2, 1, 0.
  EXPECT_EQ(s.by_url_depth.at(0), 1u);
  EXPECT_EQ(s.by_url_depth.at(1), 1u);
  EXPECT_EQ(s.by_url_depth.at(2), 1u);
}

TEST(SummaryTest, OverlapCollapsesInDistinct) {
  std::vector<core::DiscoveredSlice> slices = {
      Slice("http://a.com", 0, 10, 5.0, true),
      Slice("http://a.com/x", 0, 10, 5.0, true),  // identical facts
  };
  auto s = SummarizeSlices(slices);
  EXPECT_EQ(s.total_facts, 20u);
  EXPECT_EQ(s.distinct_facts, 10u);
}

TEST(SummaryTest, PartiallyNewSlicesLowerBoundDistinctNew) {
  std::vector<core::DiscoveredSlice> slices = {
      Slice("http://a.com", 0, 10, 5.0, /*all_new=*/false),
  };
  auto s = SummarizeSlices(slices);
  EXPECT_EQ(s.total_new_facts, 5u);
  EXPECT_EQ(s.distinct_new_facts, 0u);  // lower bound (documented)
}

TEST(SummaryTest, JsonRendering) {
  auto s = SummarizeSlices({Slice("http://a.com", 0, 3, 2.5, true)});
  std::string json = s.ToJson().Dump();
  EXPECT_NE(json.find("\"num_slices\":1"), std::string::npos);
  EXPECT_NE(json.find("\"total_profit\":2.5"), std::string::npos);
  EXPECT_NE(json.find("\"by_url_depth\":{\"0\":1}"), std::string::npos);
}

TEST(SummaryTest, HumanRendering) {
  auto s = SummarizeSlices({Slice("http://a.com/x", 0, 3, 2.5, true)});
  std::string text = s.ToString();
  EXPECT_NE(text.find("slices: 1"), std::string::npos);
  EXPECT_NE(text.find("d1=1"), std::string::npos);
}

}  // namespace
}  // namespace eval
}  // namespace midas
