#include "midas/eval/labeling.h"

#include <gtest/gtest.h>

#include <memory>

namespace midas {
namespace eval {
namespace {

constexpr uint32_t kNoise = 0xFFFFFFFFu;

class LabelingTest : public ::testing::Test {
 protected:
  LabelingTest() : dict_(std::make_shared<rdf::Dictionary>()), kb_(dict_) {}

  rdf::TermId Entity(const std::string& name, uint32_t group) {
    rdf::TermId id = dict_->Intern(name);
    groups_[id] = group;
    return id;
  }

  core::DiscoveredSlice SliceOf(const std::vector<rdf::TermId>& entities,
                                bool facts_in_kb) {
    core::DiscoveredSlice s;
    s.entities = entities;
    for (rdf::TermId e : entities) {
      rdf::Triple t(e, dict_->Intern("p"), dict_->Intern("v"));
      s.facts.push_back(t);
      if (facts_in_kb) kb_.Add(t);
    }
    s.num_facts = s.facts.size();
    return s;
  }

  std::shared_ptr<rdf::Dictionary> dict_;
  rdf::KnowledgeBase kb_;
  std::unordered_map<rdf::TermId, uint32_t> groups_;
};

TEST_F(LabelingTest, HomogeneousNewSliceIsCorrect) {
  std::vector<rdf::TermId> entities;
  for (int i = 0; i < 10; ++i) {
    entities.push_back(Entity("e" + std::to_string(i), /*group=*/1));
  }
  auto slice = SliceOf(entities, /*facts_in_kb=*/false);
  GroundTruthLabeler labeler(&groups_, kNoise, &kb_);
  EXPECT_TRUE(labeler.IsCorrect(slice));
  EXPECT_DOUBLE_EQ(labeler.last_rnew(), 1.0);
  EXPECT_DOUBLE_EQ(labeler.last_ranno(), 1.0);
}

TEST_F(LabelingTest, KnownFactsFailRnew) {
  std::vector<rdf::TermId> entities;
  for (int i = 0; i < 10; ++i) {
    entities.push_back(Entity("e" + std::to_string(i), 1));
  }
  auto slice = SliceOf(entities, /*facts_in_kb=*/true);
  GroundTruthLabeler labeler(&groups_, kNoise, &kb_);
  EXPECT_FALSE(labeler.IsCorrect(slice));
  EXPECT_DOUBLE_EQ(labeler.last_rnew(), 0.0);
}

TEST_F(LabelingTest, NoiseEntitiesFailRanno) {
  std::vector<rdf::TermId> entities;
  for (int i = 0; i < 10; ++i) {
    entities.push_back(Entity("n" + std::to_string(i), kNoise));
  }
  auto slice = SliceOf(entities, /*facts_in_kb=*/false);
  GroundTruthLabeler labeler(&groups_, kNoise, &kb_);
  EXPECT_FALSE(labeler.IsCorrect(slice));
  EXPECT_DOUBLE_EQ(labeler.last_ranno(), 0.0);
  EXPECT_DOUBLE_EQ(labeler.last_rnew(), 1.0);
}

TEST_F(LabelingTest, MixedGroupsNeedMajority) {
  std::vector<rdf::TermId> entities;
  for (int i = 0; i < 6; ++i) entities.push_back(Entity("a" + std::to_string(i), 1));
  for (int i = 0; i < 4; ++i) entities.push_back(Entity("b" + std::to_string(i), 2));
  auto slice = SliceOf(entities, false);
  GroundTruthLabeler labeler(&groups_, kNoise, &kb_);
  EXPECT_TRUE(labeler.IsCorrect(slice));
  EXPECT_DOUBLE_EQ(labeler.last_ranno(), 0.6);

  // 50/50 split: ranno == 0.5 is not strictly above the threshold.
  std::vector<rdf::TermId> even;
  for (int i = 0; i < 5; ++i) even.push_back(Entity("c" + std::to_string(i), 1));
  for (int i = 0; i < 5; ++i) even.push_back(Entity("d" + std::to_string(i), 2));
  EXPECT_FALSE(labeler.IsCorrect(SliceOf(even, false)));
}

TEST_F(LabelingTest, EmptySliceIsIncorrect) {
  core::DiscoveredSlice empty;
  GroundTruthLabeler labeler(&groups_, kNoise, &kb_);
  EXPECT_FALSE(labeler.IsCorrect(empty));
}

TEST_F(LabelingTest, SamplingBoundsWork) {
  // 100 entities, sample K=20: still labeled correct.
  std::vector<rdf::TermId> entities;
  for (int i = 0; i < 100; ++i) {
    entities.push_back(Entity("e" + std::to_string(i), 3));
  }
  auto slice = SliceOf(entities, false);
  LabelerOptions options;
  options.sample_k = 20;
  GroundTruthLabeler labeler(&groups_, kNoise, &kb_, options);
  EXPECT_TRUE(labeler.IsCorrect(slice));
}

TEST_F(LabelingTest, TopKPrecision) {
  std::vector<core::DiscoveredSlice> ranked;
  for (int i = 0; i < 4; ++i) {
    std::vector<rdf::TermId> entities;
    for (int j = 0; j < 5; ++j) {
      entities.push_back(Entity("g" + std::to_string(i) + "_" +
                                    std::to_string(j),
                                i < 2 ? i + 10 : kNoise));
    }
    ranked.push_back(SliceOf(entities, false));
  }
  GroundTruthLabeler labeler(&groups_, kNoise, &kb_);
  EXPECT_DOUBLE_EQ(labeler.TopKPrecision(ranked, 2), 1.0);
  EXPECT_DOUBLE_EQ(labeler.TopKPrecision(ranked, 4), 0.5);
  EXPECT_DOUBLE_EQ(labeler.TopKPrecision(ranked, 100), 0.5);  // clamps
  EXPECT_DOUBLE_EQ(labeler.TopKPrecision({}, 5), 0.0);
}

}  // namespace
}  // namespace eval
}  // namespace midas
