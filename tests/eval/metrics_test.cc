#include "midas/eval/metrics.h"

#include <gtest/gtest.h>

namespace midas {
namespace eval {
namespace {

rdf::Triple T(uint32_t s, uint32_t p, uint32_t o) {
  return rdf::Triple(s, p, o);
}

core::DiscoveredSlice Slice(std::vector<rdf::Triple> facts, double profit) {
  core::DiscoveredSlice s;
  s.facts = std::move(facts);
  s.num_facts = s.facts.size();
  s.profit = profit;
  return s;
}

synth::GroundTruthSlice Gt(std::vector<rdf::Triple> facts) {
  synth::GroundTruthSlice gt;
  gt.facts = std::move(facts);
  return gt;
}

TEST(JaccardTest, BasicCases) {
  EXPECT_DOUBLE_EQ(JaccardTriples({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardTriples({T(1, 1, 1)}, {}), 0.0);
  EXPECT_DOUBLE_EQ(JaccardTriples({T(1, 1, 1)}, {T(1, 1, 1)}), 1.0);
  EXPECT_DOUBLE_EQ(
      JaccardTriples({T(1, 1, 1), T(2, 2, 2)}, {T(1, 1, 1), T(3, 3, 3)}),
      1.0 / 3.0);
}

TEST(JaccardTest, DuplicatesTreatedAsSets) {
  EXPECT_DOUBLE_EQ(
      JaccardTriples({T(1, 1, 1), T(1, 1, 1)}, {T(1, 1, 1)}), 1.0);
}

TEST(ScoreTest, PerfectMatch) {
  synth::SilverStandard silver;
  silver.slices = {Gt({T(1, 1, 1), T(2, 2, 2)})};
  std::vector<core::DiscoveredSlice> returned = {
      Slice({T(1, 1, 1), T(2, 2, 2)}, 5.0)};
  auto scores = ScoreAgainstSilver(returned, silver);
  EXPECT_DOUBLE_EQ(scores.precision, 1.0);
  EXPECT_DOUBLE_EQ(scores.recall, 1.0);
  EXPECT_DOUBLE_EQ(scores.f_measure, 1.0);
}

TEST(ScoreTest, JaccardThresholdGates) {
  synth::SilverStandard silver;
  std::vector<rdf::Triple> gt_facts;
  for (uint32_t i = 0; i < 20; ++i) gt_facts.push_back(T(i, 0, 0));
  silver.slices = {Gt(gt_facts)};

  // 19/20 facts: Jaccard 0.95 — not strictly above threshold 0.95.
  std::vector<rdf::Triple> nearly(gt_facts.begin(), gt_facts.end() - 1);
  auto scores =
      ScoreAgainstSilver({Slice(nearly, 1.0)}, silver, /*threshold=*/0.95);
  EXPECT_EQ(scores.matched, 0u);

  // Lower threshold accepts it.
  scores = ScoreAgainstSilver({Slice(nearly, 1.0)}, silver, 0.9);
  EXPECT_EQ(scores.matched, 1u);
}

TEST(ScoreTest, SilverConsumedOnce) {
  synth::SilverStandard silver;
  silver.slices = {Gt({T(1, 1, 1)})};
  std::vector<core::DiscoveredSlice> returned = {
      Slice({T(1, 1, 1)}, 2.0), Slice({T(1, 1, 1)}, 1.0)};
  auto scores = ScoreAgainstSilver(returned, silver);
  EXPECT_EQ(scores.matched, 1u);  // duplicate is a false positive
  EXPECT_DOUBLE_EQ(scores.precision, 0.5);
  EXPECT_DOUBLE_EQ(scores.recall, 1.0);
}

TEST(ScoreTest, EmptyEdges) {
  synth::SilverStandard empty_silver;
  auto scores = ScoreAgainstSilver({}, empty_silver);
  EXPECT_DOUBLE_EQ(scores.precision, 0.0);
  EXPECT_DOUBLE_EQ(scores.recall, 0.0);
  EXPECT_DOUBLE_EQ(scores.f_measure, 0.0);

  synth::SilverStandard silver;
  silver.slices = {Gt({T(1, 1, 1)})};
  scores = ScoreAgainstSilver({}, silver);
  EXPECT_EQ(scores.matched, 0u);
  EXPECT_EQ(scores.expected, 1u);
}

TEST(ScoreTest, BestMatchWins) {
  // A returned slice overlapping two silver slices matches the better one.
  synth::SilverStandard silver;
  silver.slices = {Gt({T(1, 0, 0), T(2, 0, 0)}),
                   Gt({T(1, 0, 0), T(2, 0, 0), T(3, 0, 0)})};
  std::vector<core::DiscoveredSlice> returned = {
      Slice({T(1, 0, 0), T(2, 0, 0), T(3, 0, 0)}, 1.0)};
  auto scores = ScoreAgainstSilver(returned, silver, 0.5);
  EXPECT_EQ(scores.matched, 1u);
  EXPECT_DOUBLE_EQ(scores.recall, 0.5);
}

TEST(AveragePrecisionTest, PerfectRankingIsOne) {
  synth::SilverStandard silver;
  silver.slices = {Gt({T(1, 0, 0)}), Gt({T(2, 0, 0)})};
  std::vector<core::DiscoveredSlice> returned = {
      Slice({T(1, 0, 0)}, 3.0), Slice({T(2, 0, 0)}, 2.0)};
  EXPECT_DOUBLE_EQ(AveragePrecision(returned, silver), 1.0);
}

TEST(AveragePrecisionTest, FalsePositivesEarlyHurtMore) {
  synth::SilverStandard silver;
  silver.slices = {Gt({T(1, 0, 0)})};
  // Hit at rank 1: AP = 1. Hit at rank 2 after a miss: AP = 0.5.
  std::vector<core::DiscoveredSlice> hit_first = {
      Slice({T(1, 0, 0)}, 3.0), Slice({T(9, 0, 0)}, 2.0)};
  std::vector<core::DiscoveredSlice> miss_first = {
      Slice({T(9, 0, 0)}, 3.0), Slice({T(1, 0, 0)}, 2.0)};
  EXPECT_DOUBLE_EQ(AveragePrecision(hit_first, silver), 1.0);
  EXPECT_DOUBLE_EQ(AveragePrecision(miss_first, silver), 0.5);
}

TEST(AveragePrecisionTest, MissingSilverCountsAgainst) {
  synth::SilverStandard silver;
  silver.slices = {Gt({T(1, 0, 0)}), Gt({T(2, 0, 0)})};
  std::vector<core::DiscoveredSlice> returned = {Slice({T(1, 0, 0)}, 3.0)};
  EXPECT_DOUBLE_EQ(AveragePrecision(returned, silver), 0.5);
}

TEST(AveragePrecisionTest, Edges) {
  synth::SilverStandard empty;
  EXPECT_DOUBLE_EQ(AveragePrecision({}, empty), 0.0);
  synth::SilverStandard silver;
  silver.slices = {Gt({T(1, 0, 0)})};
  EXPECT_DOUBLE_EQ(AveragePrecision({}, silver), 0.0);
}

TEST(PrCurveTest, MonotoneRecallAndPrefixPrecision) {
  synth::SilverStandard silver;
  silver.slices = {Gt({T(1, 0, 0)}), Gt({T(2, 0, 0)})};
  std::vector<core::DiscoveredSlice> returned = {
      Slice({T(1, 0, 0)}, 3.0),   // hit
      Slice({T(9, 0, 0)}, 2.0),   // miss
      Slice({T(2, 0, 0)}, 1.0)};  // hit
  auto curve = PrecisionRecallCurve(returned, silver);
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_DOUBLE_EQ(curve[0].precision, 1.0);
  EXPECT_DOUBLE_EQ(curve[0].recall, 0.5);
  EXPECT_DOUBLE_EQ(curve[1].precision, 0.5);
  EXPECT_DOUBLE_EQ(curve[1].recall, 0.5);
  EXPECT_NEAR(curve[2].precision, 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(curve[2].recall, 1.0);
}

}  // namespace
}  // namespace eval
}  // namespace midas
