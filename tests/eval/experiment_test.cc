#include "midas/eval/experiment.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "midas/synth/corpus_generator.h"
#include "midas/web/url.h"

namespace midas {
namespace eval {
namespace {

TEST(MethodSuiteTest, ProvidesTheFourPaperMethods) {
  MethodSuite suite;
  ASSERT_EQ(suite.specs().size(), 4u);
  EXPECT_NE(suite.Find("MIDAS"), nullptr);
  EXPECT_NE(suite.Find("Greedy"), nullptr);
  EXPECT_NE(suite.Find("AggCluster"), nullptr);
  EXPECT_NE(suite.Find("Naive"), nullptr);
  EXPECT_EQ(suite.Find("Bogus"), nullptr);
  // Run modes per DESIGN: MIDAS/Greedy in framework rounds, AggCluster and
  // Naive per domain.
  EXPECT_EQ(suite.Find("MIDAS")->mode, RunMode::kFrameworkRounds);
  EXPECT_EQ(suite.Find("Naive")->mode, RunMode::kPerDomain);
  EXPECT_EQ(suite.Find("AggCluster")->mode, RunMode::kPerDomain);
}

TEST(AggregateByDomainTest, MergesPathsUnderDomains) {
  auto dict = std::make_shared<rdf::Dictionary>();
  web::Corpus corpus(dict);
  corpus.AddFactRaw("http://a.com/x/p1", "e1", "p", "1");
  corpus.AddFactRaw("http://a.com/y/p2", "e2", "p", "2");
  corpus.AddFactRaw("http://b.com/z", "e3", "p", "3");

  web::Corpus by_domain = AggregateByDomain(corpus);
  EXPECT_EQ(by_domain.NumSources(), 2u);
  EXPECT_EQ(by_domain.NumFacts(), 3u);
  const auto* a = by_domain.FindSource("http://a.com");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->facts.size(), 2u);
}

TEST(AggregateByDomainTest, DedupesSameTripleAcrossPages) {
  auto dict = std::make_shared<rdf::Dictionary>();
  web::Corpus corpus(dict);
  corpus.AddFactRaw("http://a.com/x", "e1", "p", "1");
  corpus.AddFactRaw("http://a.com/y", "e1", "p", "1");
  web::Corpus by_domain = AggregateByDomain(corpus);
  EXPECT_EQ(by_domain.NumFacts(), 1u);
}

TEST(RunMethodTest, StatsReturnedAndSlicesRanked) {
  auto data = synth::GenerateCorpus(synth::SlimParams(false, 20, 41));
  MethodSuite suite;
  core::FrameworkStats stats;
  auto slices =
      RunMethod(*suite.Find("MIDAS"), *data.corpus, *data.kb, &stats);
  EXPECT_GT(stats.detector_calls, 0u);
  EXPECT_GT(stats.rounds, 1u);
  for (size_t i = 1; i < slices.size(); ++i) {
    EXPECT_GE(slices[i - 1].profit, slices[i].profit);
  }
}

TEST(RunMethodTest, NaiveReportsDomainUrls) {
  auto data = synth::GenerateCorpus(synth::SlimParams(false, 20, 42));
  MethodSuite suite;
  auto slices = RunMethod(*suite.Find("Naive"), *data.corpus, *data.kb);
  ASSERT_FALSE(slices.empty());
  for (const auto& s : slices) {
    EXPECT_EQ(web::UrlDepth(s.source_url), 0u) << s.source_url;
  }
}

TEST(CoverageSweepTest, MonotoneKbAndDisjointOptimalOutput) {
  auto data = synth::GenerateCorpus(synth::SlimParams(false, 20, 43));
  MethodSuite suite;
  std::vector<MethodSpec> midas_only = {*suite.Find("MIDAS")};
  auto rows = RunCoverageSweep(*data.corpus, data.dict, data.silver,
                               midas_only, {0.0, 0.5, 1.0});
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].scores.expected, data.silver.size());
  EXPECT_LT(rows[1].scores.expected, rows[0].scores.expected);
  EXPECT_EQ(rows[2].scores.expected, 0u);  // full coverage: nothing left
}

}  // namespace
}  // namespace eval
}  // namespace midas
