#include "midas/eval/report.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace midas {
namespace eval {
namespace {

TEST(ExperimentReportTest, BuildsDocument) {
  ExperimentReport report("fig9_coverage");
  report.SetContext("dataset", "ReVerb-Slim-like");
  report.SetContext("seed", "11");
  report.AddRow("MIDAS", 0.0, {{"f_measure", 0.99}});
  report.AddRow("Greedy", 0.0, {{"f_measure", 0.53}});

  std::string json = report.ToJson().Dump();
  EXPECT_NE(json.find("\"experiment\":\"fig9_coverage\""),
            std::string::npos);
  EXPECT_NE(json.find("\"dataset\":\"ReVerb-Slim-like\""),
            std::string::npos);
  EXPECT_NE(json.find("\"series\":\"MIDAS\""), std::string::npos);
  EXPECT_NE(json.find("\"f_measure\":0.99"), std::string::npos);
  EXPECT_EQ(report.num_rows(), 2u);
}

TEST(ExperimentReportTest, SetContextReplaces) {
  ExperimentReport report("x");
  report.SetContext("k", "a");
  report.SetContext("k", "b");
  std::string json = report.ToJson().Dump();
  EXPECT_EQ(json.find("\"k\":\"a\""), std::string::npos);
  EXPECT_NE(json.find("\"k\":\"b\""), std::string::npos);
}

TEST(ExperimentReportTest, AddPrfRow) {
  ExperimentReport report("x");
  PrfScores scores;
  scores.precision = 0.5;
  scores.recall = 1.0;
  scores.f_measure = 2.0 / 3.0;
  scores.returned = 4;
  scores.matched = 2;
  scores.expected = 2;
  report.AddPrfRow("MIDAS", 0.4, scores);
  std::string json = report.ToJson().Dump();
  EXPECT_NE(json.find("\"precision\":0.5"), std::string::npos);
  EXPECT_NE(json.find("\"returned\":4"), std::string::npos);
}

TEST(ExperimentReportTest, WriteToFile) {
  std::string path = ::testing::TempDir() + "/midas_report_test.json";
  ExperimentReport report("smoke");
  report.AddRow("s", 1.0, {{"v", 2.0}});
  ASSERT_TRUE(report.WriteTo(path).ok());
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("\"experiment\": \"smoke\""),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(SlicesToJsonTest, SerializesAndLimits) {
  rdf::Dictionary dict;
  std::vector<core::DiscoveredSlice> slices(3);
  for (size_t i = 0; i < slices.size(); ++i) {
    slices[i].source_url = "http://x.com/" + std::to_string(i);
    slices[i].profit = static_cast<double>(i);
    slices[i].properties.push_back(core::PropertyPair{
        dict.Intern("cat"), dict.Intern("v" + std::to_string(i))});
  }
  JsonValue all = SlicesToJson(slices, dict);
  EXPECT_EQ(all.size(), 3u);
  JsonValue limited = SlicesToJson(slices, dict, 2);
  EXPECT_EQ(limited.size(), 2u);
  EXPECT_NE(all.Dump().find("cat=v1"), std::string::npos);
}

}  // namespace
}  // namespace eval
}  // namespace midas
