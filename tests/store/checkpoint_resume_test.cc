// Kill-and-resume acceptance suite (ISSUE 4 tentpole): a checkpointed run
// that dies at ANY byte of the checkpoint log — every record boundary and
// mid-record tears included — must, after --resume, produce slices and
// per-source reports bit-identical to an uninterrupted run. Also covers
// fingerprint rejection, the ablation (no-hierarchy) path, and injected
// checkpoint-append failures.

#include "midas/store/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <sys/stat.h>
#include <vector>

#include "common/corpus_fixture.h"
#include "midas/core/framework.h"
#include "midas/core/midas_alg.h"
#include "midas/fault/fault.h"
#include "midas/store/record_log.h"

namespace midas {
namespace core {
namespace {

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(in)) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(static_cast<bool>(out)) << path;
}

/// The bit-identity digest: every field that reaches users. Profit uses
/// the scientific round-trip of to_string only for display — the checkpoint
/// stores exact bit patterns, so == on the double itself is the real check,
/// done via the slice vectors below.
struct RunDigest {
  std::vector<std::string> slice_keys;
  std::vector<std::string> source_keys;
  bool partial = false;

  bool operator==(const RunDigest& other) const = default;
};

RunDigest Digest(const FrameworkResult& result) {
  RunDigest digest;
  for (const auto& s : result.slices) {
    std::string key = s.source_url + "|" + std::to_string(s.num_facts) + "|" +
                      std::to_string(s.num_new_facts) + "|";
    // Exact profit bits, not a decimal rendering.
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(s.profit));
    std::memcpy(&bits, &s.profit, sizeof(bits));
    key += std::to_string(bits);
    key += "|props=" + std::to_string(s.properties.size());
    key += "|ents=" + std::to_string(s.entities.size());
    key += "|facts=" + std::to_string(s.facts.size());
    for (const auto& p : s.properties) {
      key += "|" + std::to_string(p.predicate) + ":" +
             std::to_string(p.value);
    }
    digest.slice_keys.push_back(std::move(key));
  }
  for (const auto& sr : result.sources) {
    digest.source_keys.push_back(sr.url + "|" +
                                 SourceStatusName(sr.status) + "|" +
                                 std::to_string(sr.attempts) + "|" +
                                 sr.error);
  }
  digest.partial = result.partial;
  return digest;
}

class CheckpointResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = ::testing::TempDir() + "/midas_ckpt_" + info->name();
    ::mkdir(dir_.c_str(), 0755);
    ckpt_path_ = dir_ + "/" + store::kCheckpointFileName;
    std::remove(ckpt_path_.c_str());
  }
  void TearDown() override {
    fault::FaultInjector::Global().Disarm();
    std::remove(ckpt_path_.c_str());
    ::rmdir(dir_.c_str());
  }

  FrameworkResult RunPipeline(FrameworkOptions fw) {
    auto dict = std::make_shared<rdf::Dictionary>();
    web::Corpus corpus(dict);
    tests::FillSectionedCorpus(&corpus, /*sections=*/5,
                               /*entities_per_section=*/7);
    rdf::KnowledgeBase kb(dict);
    MidasOptions alg_options;
    alg_options.cost_model = CostModel::RunningExample();
    MidasAlg alg(alg_options);
    return MidasFramework(&alg, fw).Run(corpus, kb);
  }

  FrameworkOptions CheckpointedOptions(bool resume,
                                       bool hierarchy = true) const {
    FrameworkOptions fw;
    fw.use_hierarchy_rounds = hierarchy;
    fw.checkpoint_dir = dir_;
    fw.resume = resume;
    return fw;
  }

  /// Record boundaries (byte offsets) of the checkpoint log: after the
  /// magic, after the header record, then after each entry.
  std::vector<size_t> LogBoundaries(const std::string& bytes) {
    std::vector<size_t> boundaries{store::kRecordLogMagicLen};
    StatusOr<store::RecordReadResult> read =
        store::ReadRecordLog(ckpt_path_);
    EXPECT_TRUE(read.ok()) << read.status().ToString();
    EXPECT_FALSE(read->tail_truncated);
    for (const std::string& record : read->records) {
      boundaries.push_back(boundaries.back() + store::kRecordHeaderLen +
                           record.size());
    }
    EXPECT_EQ(boundaries.back(), bytes.size());
    return boundaries;
  }

  std::string dir_;
  std::string ckpt_path_;
};

TEST_F(CheckpointResumeTest, CheckpointingDoesNotChangeTheResult) {
  const RunDigest plain = Digest(RunPipeline(FrameworkOptions{}));
  const FrameworkResult checkpointed =
      RunPipeline(CheckpointedOptions(/*resume=*/false));
  EXPECT_EQ(Digest(checkpointed), plain);
  EXPECT_EQ(checkpointed.stats.checkpoint_write_errors, 0u);
  EXPECT_EQ(checkpointed.stats.sources_resumed, 0u);

  // One entry per non-cancelled source made it into the log.
  StatusOr<store::RecordReadResult> read = store::ReadRecordLog(ckpt_path_);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->records.size(), checkpointed.sources.size() + 1);
}

TEST_F(CheckpointResumeTest, ResumeFromCompleteCheckpointRestoresEverything) {
  const FrameworkResult first =
      RunPipeline(CheckpointedOptions(/*resume=*/false));
  const FrameworkResult second =
      RunPipeline(CheckpointedOptions(/*resume=*/true));
  EXPECT_EQ(Digest(second), Digest(first));
  EXPECT_EQ(second.stats.sources_resumed, first.sources.size());
}

// The acceptance criterion: kill the run at every record boundary of the
// checkpoint log AND at torn offsets inside every record; resume must be
// bit-identical to the uninterrupted run, restoring exactly the sources
// the truncated log fully records.
TEST_F(CheckpointResumeTest, KillAndResumeAtEveryCrashPointIsBitIdentical) {
  const FrameworkResult uninterrupted =
      RunPipeline(CheckpointedOptions(/*resume=*/false));
  const RunDigest expected = Digest(uninterrupted);
  const std::string full = ReadFileBytes(ckpt_path_);
  const std::vector<size_t> boundaries = LogBoundaries(full);
  ASSERT_GE(boundaries.size(), 3u);  // magic + header + at least one entry

  std::vector<size_t> cuts;
  // Mid-magic and empty-file crashes (checkpoint unusable => fresh run).
  cuts.push_back(0);
  cuts.push_back(store::kRecordLogMagicLen / 2);
  for (size_t b = 0; b < boundaries.size(); ++b) {
    cuts.push_back(boundaries[b]);                      // clean kill point
    if (b + 1 < boundaries.size()) {
      cuts.push_back(boundaries[b] + 1);                // torn frame header
      const size_t next = boundaries[b + 1];
      cuts.push_back(boundaries[b] + (next - boundaries[b]) / 2);  // torn payload
      cuts.push_back(next - 1);                         // one byte short
    }
  }

  for (const size_t cut : cuts) {
    SCOPED_TRACE("cut=" + std::to_string(cut));
    WriteFileBytes(ckpt_path_, full.substr(0, cut));

    const FrameworkResult resumed =
        RunPipeline(CheckpointedOptions(/*resume=*/true));
    EXPECT_EQ(Digest(resumed), expected);

    // The number of restored sources equals the number of complete entry
    // records in the truncated log (boundary index minus magic and header).
    size_t complete_records = 0;
    while (complete_records + 1 < boundaries.size() &&
           boundaries[complete_records + 1] <= cut) {
      ++complete_records;
    }
    const size_t expected_resumed =
        complete_records == 0 ? 0 : complete_records - 1;
    EXPECT_EQ(resumed.stats.sources_resumed, expected_resumed);

    // After the resumed run the log is complete again: it can seed yet
    // another resume (crash-during-resume is the same contract).
    const FrameworkResult resumed_again =
        RunPipeline(CheckpointedOptions(/*resume=*/true));
    EXPECT_EQ(Digest(resumed_again), expected);
    EXPECT_EQ(resumed_again.stats.sources_resumed,
              uninterrupted.sources.size());
  }
}

TEST_F(CheckpointResumeTest, AblationPathResumesBitIdentically) {
  const FrameworkResult uninterrupted = RunPipeline(
      CheckpointedOptions(/*resume=*/false, /*hierarchy=*/false));
  const RunDigest expected = Digest(uninterrupted);
  const std::string full = ReadFileBytes(ckpt_path_);
  const std::vector<size_t> boundaries = LogBoundaries(full);

  for (size_t b = 0; b < boundaries.size(); ++b) {
    SCOPED_TRACE("boundary=" + std::to_string(b));
    WriteFileBytes(ckpt_path_, full.substr(0, boundaries[b]));
    const FrameworkResult resumed = RunPipeline(
        CheckpointedOptions(/*resume=*/true, /*hierarchy=*/false));
    EXPECT_EQ(Digest(resumed), expected);
  }
}

TEST_F(CheckpointResumeTest, FingerprintMismatchStartsFresh) {
  FrameworkOptions fw = CheckpointedOptions(/*resume=*/false);
  fw.run_seed = 1;
  const FrameworkResult first = RunPipeline(fw);

  // Same checkpoint dir, different seed: the stored fingerprint no longer
  // matches, so nothing is resumed — but the run still succeeds and
  // rewrites the checkpoint for ITS fingerprint.
  FrameworkOptions other = CheckpointedOptions(/*resume=*/true);
  other.run_seed = 2;
  const FrameworkResult second = RunPipeline(other);
  EXPECT_EQ(second.stats.sources_resumed, 0u);
  // The seed only drives retry jitter, so the fault-free results agree.
  EXPECT_EQ(Digest(second), Digest(first));

  // And a third run WITH seed 2 resumes from the rewritten checkpoint.
  const FrameworkResult third = RunPipeline(other);
  EXPECT_EQ(third.stats.sources_resumed, second.sources.size());
  EXPECT_EQ(Digest(third), Digest(second));
}

TEST_F(CheckpointResumeTest, GarbageCheckpointFileStartsFresh) {
  const RunDigest plain = Digest(RunPipeline(FrameworkOptions{}));
  WriteFileBytes(ckpt_path_, "this is not a checkpoint log\n");
  const FrameworkResult resumed =
      RunPipeline(CheckpointedOptions(/*resume=*/true));
  EXPECT_EQ(Digest(resumed), plain);
  EXPECT_EQ(resumed.stats.sources_resumed, 0u);
}

TEST_F(CheckpointResumeTest, MissingCheckpointDirDisablesCheckpointing) {
  FrameworkOptions fw;
  fw.checkpoint_dir = dir_ + "/does_not_exist";
  const FrameworkResult result = RunPipeline(fw);
  // The run completes and reports the problem in stats instead of failing.
  EXPECT_EQ(Digest(result), Digest(RunPipeline(FrameworkOptions{})));
  EXPECT_GE(result.stats.checkpoint_write_errors, 1u);
}

#ifdef MIDAS_FAULT_INJECTION

TEST_F(CheckpointResumeTest, InjectedAppendFailureDisablesNotDerails) {
  const RunDigest plain = Digest(RunPipeline(FrameworkOptions{}));
  fault::ScopedFaultSpec armed("site=io_write_fail,rate=1,seed=3");
  const FrameworkResult result =
      RunPipeline(CheckpointedOptions(/*resume=*/false));
  EXPECT_EQ(Digest(result), plain);
  EXPECT_GE(result.stats.checkpoint_write_errors, 1u);
}

TEST_F(CheckpointResumeTest, TornAppendIsRecoveredByResume) {
  const RunDigest expected =
      Digest(RunPipeline(CheckpointedOptions(/*resume=*/false)));
  std::remove(ckpt_path_.c_str());

  // Tear exactly one checkpoint append somewhere mid-run (rate keyed by
  // "<path>#<index>", so which append tears is deterministic per seed),
  // then resume over the torn log.
  size_t write_errors = 0;
  {
    fault::ScopedFaultSpec armed(
        "site=io_torn_write,rate=0.2,seed=11,max_fires=1");
    const FrameworkResult torn_run =
        RunPipeline(CheckpointedOptions(/*resume=*/false));
    EXPECT_EQ(Digest(torn_run), expected);  // the run itself is unaffected
    write_errors = torn_run.stats.checkpoint_write_errors;
  }

  const FrameworkResult resumed =
      RunPipeline(CheckpointedOptions(/*resume=*/true));
  EXPECT_EQ(Digest(resumed), expected);
  if (write_errors > 0) {
    // The torn tail was discarded: the resumed run re-detected the torn
    // source and everything after it, and the log is whole again.
    StatusOr<store::RecordReadResult> read =
        store::ReadRecordLog(ckpt_path_);
    ASSERT_TRUE(read.ok());
    EXPECT_FALSE(read->tail_truncated);
    EXPECT_EQ(read->records.size(), resumed.sources.size() + 1);
  }
}

TEST_F(CheckpointResumeTest, ZeroRateIoSitesKeepBitIdentity) {
  const RunDigest plain = Digest(RunPipeline(FrameworkOptions{}));
  fault::ScopedFaultSpec armed(
      "site=io_write_fail,rate=0,seed=1;site=io_torn_write,rate=0,seed=1");
  const FrameworkResult result =
      RunPipeline(CheckpointedOptions(/*resume=*/false));
  EXPECT_EQ(Digest(result), plain);
  EXPECT_EQ(result.stats.checkpoint_write_errors, 0u);
}

#endif  // MIDAS_FAULT_INJECTION

}  // namespace
}  // namespace core
}  // namespace midas
