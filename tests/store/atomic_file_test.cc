// Atomic-write contract: readers observe the old file or the complete new
// file, never a torn prefix; injected I/O faults fail the call without
// touching the destination.

#include "midas/store/atomic_file.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "midas/fault/fault.h"

namespace midas {
namespace store {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(in)) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool Exists(const std::string& path) {
  std::ifstream in(path);
  return static_cast<bool>(in);
}

class AtomicFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/midas_atomic_file_test.txt";
    std::remove(path_.c_str());
    std::remove(AtomicTempPath(path_).c_str());
  }
  void TearDown() override {
    fault::FaultInjector::Global().Disarm();
    std::remove(path_.c_str());
    std::remove(AtomicTempPath(path_).c_str());
  }

  std::string path_;
};

TEST_F(AtomicFileTest, WritesAndReplaces) {
  ASSERT_TRUE(AtomicWriteFile(path_, "first contents\n").ok());
  EXPECT_EQ(ReadFile(path_), "first contents\n");

  ASSERT_TRUE(AtomicWriteFile(path_, "second, longer contents\n").ok());
  EXPECT_EQ(ReadFile(path_), "second, longer contents\n");

  // No staging file left behind after a successful swap.
  EXPECT_FALSE(Exists(AtomicTempPath(path_)));
}

TEST_F(AtomicFileTest, HandlesEmptyAndBinaryContents) {
  ASSERT_TRUE(AtomicWriteFile(path_, "").ok());
  EXPECT_EQ(ReadFile(path_), "");

  const std::string binary("a\0b\xff\n\r\t", 7);
  ASSERT_TRUE(AtomicWriteFile(path_, binary).ok());
  EXPECT_EQ(ReadFile(path_), binary);
}

TEST_F(AtomicFileTest, FailsWhenParentDirectoryMissing) {
  const std::string bad = ::testing::TempDir() + "/midas_no_such_dir/x.txt";
  const Status status = AtomicWriteFile(bad, "contents");
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

TEST_F(AtomicFileTest, ParentDirHelper) {
  EXPECT_EQ(ParentDir("/a/b/c.txt"), "/a/b");
  EXPECT_EQ(ParentDir("/c.txt"), "/");
  EXPECT_EQ(ParentDir("c.txt"), ".");
}

#ifdef MIDAS_FAULT_INJECTION

TEST_F(AtomicFileTest, InjectedWriteFailLeavesDestinationUntouched) {
  ASSERT_TRUE(AtomicWriteFile(path_, "survivor\n").ok());

  fault::ScopedFaultSpec armed("site=io_write_fail,rate=1,seed=1");
  const Status status = AtomicWriteFile(path_, "never lands\n");
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_EQ(ReadFile(path_), "survivor\n");
  EXPECT_FALSE(Exists(AtomicTempPath(path_)));
}

TEST_F(AtomicFileTest, InjectedTornWriteLeavesTornTempAndOldDestination) {
  ASSERT_TRUE(AtomicWriteFile(path_, "survivor\n").ok());

  const std::string payload = "this write will be torn mid-way\n";
  fault::ScopedFaultSpec armed("site=io_torn_write,rate=1,seed=7");
  const Status status = AtomicWriteFile(path_, payload);
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  // Destination untouched: the rename never happened.
  EXPECT_EQ(ReadFile(path_), "survivor\n");
  // The torn temp file is the simulated crash state: a strict prefix of
  // the payload at the deterministic seeded offset.
  ASSERT_TRUE(Exists(AtomicTempPath(path_)));
  const std::string torn = ReadFile(AtomicTempPath(path_));
  EXPECT_LE(torn.size(), payload.size());
  EXPECT_EQ(torn, payload.substr(0, torn.size()));
  const uint64_t expected_len = fault::FaultInjector::Global().DrawOffset(
      fault::kSiteIoTornWrite, path_, payload.size() + 1);
  EXPECT_EQ(torn.size(), expected_len);
}

TEST_F(AtomicFileTest, ZeroRateArmedSitesAreInert) {
  fault::ScopedFaultSpec armed(
      "site=io_write_fail,rate=0,seed=1;site=io_torn_write,rate=0,seed=1");
  ASSERT_TRUE(AtomicWriteFile(path_, "written normally\n").ok());
  EXPECT_EQ(ReadFile(path_), "written normally\n");
  EXPECT_FALSE(Exists(AtomicTempPath(path_)));
}

#endif  // MIDAS_FAULT_INJECTION

}  // namespace
}  // namespace store
}  // namespace midas
