// MIDASCOL1 writer/reader contract: round-trip fidelity at the raw-code
// level, fingerprint stability, rejection of every corruption class (bad
// magic, flipped section bytes, truncation at arbitrary offsets), and the
// crash-safety discipline under injected I/O faults.

#include "midas/store/columnar.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "midas/fault/fault.h"
#include "midas/store/atomic_file.h"
#include "midas/util/random.h"
#include "midas/util/status.h"

namespace midas {
namespace store {
namespace {

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(in)) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(static_cast<bool>(out)) << path;
}

bool Exists(const std::string& path) {
  std::ifstream in(path);
  return static_cast<bool>(in);
}

struct RawRecord {
  uint32_t url, subject, predicate, object;
  double confidence;
};

class ColumnarTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test case: ctest runs cases of this binary as separate
    // concurrent processes, so a shared fixed path would collide.
    path_ = ::testing::TempDir() + "/midas_columnar_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".midascol";
    std::remove(path_.c_str());
  }
  void TearDown() override {
    std::remove(path_.c_str());
    std::remove(AtomicTempPathForTest().c_str());
  }

  std::string AtomicTempPathForTest() const { return AtomicTempPath(path_); }

  // A deterministic random corpus in raw-code space.
  std::vector<RawRecord> MakeRecords(size_t n, size_t num_terms,
                                     size_t num_urls, uint64_t seed) const {
    Rng rng(seed);
    std::vector<RawRecord> records;
    records.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      records.push_back(RawRecord{
          static_cast<uint32_t>(rng.Uniform(num_urls)),
          static_cast<uint32_t>(rng.Uniform(num_terms)),
          static_cast<uint32_t>(rng.Uniform(num_terms)),
          static_cast<uint32_t>(rng.Uniform(num_terms)),
          rng.UniformDouble()});
    }
    return records;
  }

  std::vector<std::string> MakeTerms(size_t n) const {
    std::vector<std::string> terms;
    for (size_t i = 0; i < n; ++i) {
      terms.push_back("term_" + std::to_string(i) +
                      std::string(i % 7, 'x'));  // varied lengths incl. long
    }
    if (!terms.empty()) terms[0] = "";  // empty string must round-trip
    return terms;
  }

  std::vector<std::string> MakeUrls(size_t n) const {
    std::vector<std::string> urls;
    for (size_t i = 0; i < n; ++i) {
      urls.push_back("http://example.com/page" + std::to_string(i));
    }
    return urls;
  }

  // Writes records + dictionaries; returns the writer's fingerprint.
  uint64_t WriteFile(const std::vector<RawRecord>& records,
                     const std::vector<std::string>& terms,
                     const std::vector<std::string>& urls) {
    ColumnarWriter writer(path_);
    for (const RawRecord& r : records) {
      writer.AddRecord(r.url, r.subject, r.predicate, r.object, r.confidence);
    }
    Status status = writer.Finish(terms, urls);
    EXPECT_TRUE(status.ok()) << status.ToString();
    return writer.content_fingerprint();
  }

  std::string path_;
};

TEST_F(ColumnarTest, RoundTripsRecordsAndDictionaries) {
  const auto terms = MakeTerms(57);
  const auto urls = MakeUrls(9);
  const auto records = MakeRecords(1000, terms.size(), urls.size(), 0xABC);
  const uint64_t fingerprint = WriteFile(records, terms, urls);
  EXPECT_NE(fingerprint, 0u);

  ColumnarReader reader;
  Status status = reader.Open(path_);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_TRUE(reader.is_open());
  ASSERT_EQ(reader.num_records(), records.size());
  ASSERT_EQ(reader.num_terms(), terms.size());
  ASSERT_EQ(reader.num_urls(), urls.size());
  EXPECT_EQ(reader.content_fingerprint(), fingerprint);

  for (size_t i = 0; i < terms.size(); ++i) {
    EXPECT_EQ(reader.term(static_cast<uint32_t>(i)), terms[i]);
  }
  for (size_t i = 0; i < urls.size(); ++i) {
    EXPECT_EQ(reader.url(static_cast<uint32_t>(i)), urls[i]);
  }
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(reader.url_codes()[i], records[i].url);
    EXPECT_EQ(reader.subjects()[i], records[i].subject);
    EXPECT_EQ(reader.predicates()[i], records[i].predicate);
    EXPECT_EQ(reader.objects()[i], records[i].object);
    EXPECT_EQ(reader.confidences()[i], records[i].confidence);  // bit-exact
  }
}

TEST_F(ColumnarTest, EmptyFileRoundTrips) {
  WriteFile({}, {}, {});
  ColumnarReader reader;
  Status status = reader.Open(path_);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(reader.num_records(), 0u);
  EXPECT_EQ(reader.num_terms(), 0u);
  EXPECT_EQ(reader.num_urls(), 0u);
}

TEST_F(ColumnarTest, FingerprintChangesWithContent) {
  const auto terms = MakeTerms(10);
  const auto urls = MakeUrls(3);
  auto records = MakeRecords(100, terms.size(), urls.size(), 1);
  const uint64_t fp1 = WriteFile(records, terms, urls);
  records[50].object = (records[50].object + 1) % terms.size();
  const uint64_t fp2 = WriteFile(records, terms, urls);
  EXPECT_NE(fp1, fp2);
}

TEST_F(ColumnarTest, RejectsOutOfRangeCodesAtFinish) {
  ColumnarWriter writer(path_);
  writer.AddRecord(0, 5, 0, 0, 0.5);  // subject 5 vs 3 terms
  Status status = writer.Finish(MakeTerms(3), MakeUrls(1));
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(Exists(path_));
}

TEST_F(ColumnarTest, FinishTwiceFails) {
  ColumnarWriter writer(path_);
  writer.AddRecord(0, 0, 0, 0, 0.5);
  ASSERT_TRUE(writer.Finish(MakeTerms(1), MakeUrls(1)).ok());
  EXPECT_EQ(writer.Finish(MakeTerms(1), MakeUrls(1)).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(ColumnarTest, SniffsMagic) {
  EXPECT_FALSE(SniffColumnarMagic(path_));  // missing
  WriteFileBytes(path_, "short");
  EXPECT_FALSE(SniffColumnarMagic(path_));
  WriteFileBytes(path_, "definitely not a columnar file, padded out long");
  EXPECT_FALSE(SniffColumnarMagic(path_));
  WriteFile(MakeRecords(5, 3, 2, 2), MakeTerms(3), MakeUrls(2));
  EXPECT_TRUE(SniffColumnarMagic(path_));
}

TEST_F(ColumnarTest, RejectsEveryTruncation) {
  WriteFile(MakeRecords(64, 11, 4, 3), MakeTerms(11), MakeUrls(4));
  const std::string bytes = ReadFileBytes(path_);
  ASSERT_GT(bytes.size(), 0u);
  // Every strict prefix must be rejected (footer magic/CRC catches all of
  // them without needing the section CRCs).
  const size_t step = bytes.size() > 512 ? 13 : 1;
  for (size_t len = 0; len < bytes.size(); len += step) {
    WriteFileBytes(path_, bytes.substr(0, len));
    ColumnarReader reader;
    Status status = reader.Open(path_);
    EXPECT_FALSE(status.ok()) << "accepted truncation at " << len;
    EXPECT_FALSE(reader.is_open());
  }
}

TEST_F(ColumnarTest, RejectsSingleByteCorruption) {
  WriteFile(MakeRecords(64, 11, 4, 4), MakeTerms(11), MakeUrls(4));
  const std::string bytes = ReadFileBytes(path_);
  // Flip one byte at a sample of offsets across every section; the
  // per-section CRCs (or footer CRC) must catch each.
  for (size_t pos = 0; pos < bytes.size(); pos += 17) {
    std::string corrupt = bytes;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x40);
    WriteFileBytes(path_, corrupt);
    ColumnarReader reader;
    Status status = reader.Open(path_);
    EXPECT_FALSE(status.ok()) << "accepted corruption at byte " << pos;
  }
}

TEST_F(ColumnarTest, UnverifiedOpenSkipsSectionChecksOnly) {
  WriteFile(MakeRecords(64, 11, 4, 5), MakeTerms(11), MakeUrls(4));
  const std::string bytes = ReadFileBytes(path_);
  // Corrupt one confidence byte (interior section). With checksums off the
  // open succeeds — but footer corruption must still be rejected.
  std::string corrupt = bytes;
  corrupt[bytes.size() / 2] = static_cast<char>(corrupt[bytes.size() / 2] ^ 1);
  WriteFileBytes(path_, corrupt);
  ColumnarReadOptions options;
  options.verify_checksums = false;
  ColumnarReader reader;
  EXPECT_TRUE(reader.Open(path_, options).ok());
  reader.Close();

  std::string torn = bytes.substr(0, bytes.size() - 1);
  WriteFileBytes(path_, torn);
  EXPECT_FALSE(reader.Open(path_, options).ok());
}

TEST_F(ColumnarTest, MissingFileIsNotFound) {
  ColumnarReader reader;
  EXPECT_EQ(reader.Open(path_).code(), StatusCode::kNotFound);
}

// A grouped record stream (every url's records contiguous, codes in
// first-appearance order) gets the source-range index; the runs must name
// the exact record intervals.
TEST_F(ColumnarTest, GroupedFileCarriesSourceIndex) {
  ColumnarWriter writer(path_);
  const uint32_t url_of_record[] = {0, 0, 0, 1, 2, 2};
  for (uint32_t url : url_of_record) writer.AddRecord(url, 0, 1, 2, 0.5);
  ASSERT_TRUE(writer.Finish(MakeTerms(3), MakeUrls(3)).ok());
  EXPECT_TRUE(writer.wrote_source_index());

  ColumnarReader reader;
  ASSERT_TRUE(reader.Open(path_).ok());
  ASSERT_TRUE(reader.has_source_index());
  ASSERT_EQ(reader.num_source_runs(), 3u);
  const ColumnarSourceRun* runs = reader.source_runs();
  EXPECT_EQ(runs[0].url_code, 0u);
  EXPECT_EQ(runs[0].first, 0u);
  EXPECT_EQ(runs[0].last, 3u);
  EXPECT_EQ(runs[1].url_code, 1u);
  EXPECT_EQ(runs[1].first, 3u);
  EXPECT_EQ(runs[1].last, 4u);
  EXPECT_EQ(runs[2].url_code, 2u);
  EXPECT_EQ(runs[2].first, 4u);
  EXPECT_EQ(runs[2].last, 6u);
  ASSERT_NE(reader.FindSourceRun(1), nullptr);
  EXPECT_EQ(reader.FindSourceRun(1)->first, 3u);
  EXPECT_EQ(reader.FindSourceRun(7), nullptr);
}

TEST_F(ColumnarTest, InterleavedFileHasNoIndex) {
  ColumnarWriter writer(path_);
  for (uint32_t url : {0u, 1u, 0u}) writer.AddRecord(url, 0, 0, 0, 0.5);
  ASSERT_TRUE(writer.Finish(MakeTerms(1), MakeUrls(2)).ok());
  EXPECT_FALSE(writer.wrote_source_index());
  ColumnarReader reader;
  ASSERT_TRUE(reader.Open(path_).ok());
  EXPECT_FALSE(reader.has_source_index());
  EXPECT_EQ(reader.FindSourceRun(0), nullptr);
}

// The index region and its announcing flag bit are excluded from the
// content hash: surgically stripping them yields a byte-valid legacy file
// with the SAME fingerprint — which is what lets a worker without an index
// still match the coordinator's corpus hash.
TEST_F(ColumnarTest, StrippedIndexReadsAsLegacyFileWithSameFingerprint) {
  ColumnarWriter writer(path_);
  for (uint32_t url : {0u, 0u, 1u, 1u, 2u}) {
    writer.AddRecord(url, url, 0, 1, 0.25 * url + 0.1);
  }
  ASSERT_TRUE(writer.Finish(MakeTerms(3), MakeUrls(3)).ok());
  ColumnarReader reader;
  ASSERT_TRUE(reader.Open(path_).ok());
  ASSERT_TRUE(reader.has_source_index());
  const uint64_t fingerprint = reader.content_fingerprint();
  const size_t index_bytes = 16 + 24 * reader.num_source_runs();
  reader.Close();

  std::string bytes = ReadFileBytes(path_);
  const size_t body_end = bytes.size() - 216;  // footer is fixed-size
  bytes.erase(body_end - index_bytes, index_bytes);
  bytes[10] = 0;  // clear the source-index flag
  WriteFileBytes(path_, bytes);

  ASSERT_TRUE(reader.Open(path_).ok());
  EXPECT_FALSE(reader.has_source_index());
  EXPECT_EQ(reader.content_fingerprint(), fingerprint);
  EXPECT_EQ(reader.num_records(), 5u);
}

// Every byte of the index region (and the flag byte announcing it) is
// semantic: any single-byte flip must be rejected at Open.
TEST_F(ColumnarTest, IndexRegionBitFlipsRejected) {
  ColumnarWriter writer(path_);
  for (uint32_t url : {0u, 0u, 1u, 2u, 2u, 2u}) {
    writer.AddRecord(url, 0, 1, 2, 0.5);
  }
  ASSERT_TRUE(writer.Finish(MakeTerms(3), MakeUrls(3)).ok());
  ColumnarReader probe;
  ASSERT_TRUE(probe.Open(path_).ok());
  const size_t index_bytes = 16 + 24 * probe.num_source_runs();
  probe.Close();

  const std::string bytes = ReadFileBytes(path_);
  const size_t index_start = bytes.size() - 216 - index_bytes;
  for (size_t pos : {size_t{10}}) {  // the flag byte
    std::string corrupt = bytes;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 1);
    WriteFileBytes(path_, corrupt);
    ColumnarReader reader;
    EXPECT_FALSE(reader.Open(path_).ok()) << "flag byte flip accepted";
  }
  for (size_t pos = index_start; pos < index_start + index_bytes; ++pos) {
    std::string corrupt = bytes;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x10);
    WriteFileBytes(path_, corrupt);
    ColumnarReader reader;
    EXPECT_FALSE(reader.Open(path_).ok())
        << "index byte flip at " << pos << " accepted";
  }
}

// lazy_verify defers the per-section CRC work to VerifySection: a corrupt
// interior section opens fine, its verification fails, untouched sections
// verify clean, and a second call on a verified section is memoized.
TEST_F(ColumnarTest, LazyVerifyDefersSectionChecks) {
  WriteFile(MakeRecords(64, 11, 4, 8), MakeTerms(11), MakeUrls(4));
  const std::string bytes = ReadFileBytes(path_);
  // Eager open pins down where the confidence section lives: corrupt one
  // byte in the middle of the file, which the truncation geometry checks
  // cannot see.
  std::string corrupt = bytes;
  corrupt[bytes.size() / 2] ^= 0x20;
  WriteFileBytes(path_, corrupt);

  ColumnarReadOptions lazy;
  lazy.lazy_verify = true;
  ColumnarReader reader;
  ASSERT_TRUE(reader.Open(path_, lazy).ok());
  // The flipped byte sits in one of the five record columns; at least one
  // section must fail, and the dictionaries (early in the file) are clean.
  EXPECT_TRUE(reader.VerifySection(kSectionTerms).ok());
  EXPECT_TRUE(reader.VerifySection(kSectionTerms).ok());  // memoized
  Status all = reader.VerifyAllSections();
  EXPECT_EQ(all.code(), StatusCode::kCorruption);
  reader.Close();

  // The pristine file passes the full lazy sweep and the code scan.
  WriteFileBytes(path_, bytes);
  ASSERT_TRUE(reader.Open(path_, lazy).ok());
  EXPECT_TRUE(reader.VerifyAllSections().ok());
  EXPECT_TRUE(reader.VerifyRecordCodes(0, reader.num_records()).ok());
}

// VerifyRecordCodes is the per-range replacement for the eager full-file
// code scan: an out-of-range code is caught by the range containing it and
// invisible to disjoint ranges.
TEST_F(ColumnarTest, VerifyRecordCodesIsRangeScoped) {
  ColumnarWriter writer(path_);
  for (uint32_t url : {0u, 0u, 1u, 1u}) writer.AddRecord(url, 0, 1, 2, 0.5);
  ASSERT_TRUE(writer.Finish(MakeTerms(3), MakeUrls(2)).ok());
  std::string bytes = ReadFileBytes(path_);

  // Overwrite record 3's subject code with an out-of-range value. The
  // subject column's last entry sits before the predicate + object columns
  // (4 bytes x 4 records each), the index region (16B header + 2 runs),
  // and the 216-byte footer.
  const size_t index_bytes = 16 + 24 * 2;
  const size_t subj3_off = bytes.size() - 216 - index_bytes - 2 * 4 * 4 - 4;
  const uint32_t big = 0xfffffff0u;
  std::memcpy(bytes.data() + subj3_off, &big, sizeof(big));
  WriteFileBytes(path_, bytes);

  ColumnarReadOptions lazy;
  lazy.lazy_verify = true;
  ColumnarReader reader;
  ASSERT_TRUE(reader.Open(path_, lazy).ok());
  EXPECT_TRUE(reader.VerifyRecordCodes(0, 3).ok());
  EXPECT_EQ(reader.VerifyRecordCodes(3, 4).code(), StatusCode::kCorruption);
}

#ifdef MIDAS_FAULT_INJECTION

TEST_F(ColumnarTest, InjectedWriteFailFailsCleanly) {
  fault::ScopedFaultSpec armed("site=io_write_fail,rate=1,seed=1");
  ColumnarWriter writer(path_);
  writer.AddRecord(0, 0, 0, 0, 0.5);
  Status status = writer.Finish(MakeTerms(1), MakeUrls(1));
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_FALSE(Exists(path_));
}

TEST_F(ColumnarTest, InjectedTornWriteLeavesDestinationAbsentAndTempTorn) {
  fault::ScopedFaultSpec armed("site=io_torn_write,rate=1,seed=9");
  ColumnarWriter writer(path_);
  const auto records = MakeRecords(128, 7, 3, 6);
  for (const RawRecord& r : records) {
    writer.AddRecord(r.url, r.subject, r.predicate, r.object, r.confidence);
  }
  Status status = writer.Finish(MakeTerms(7), MakeUrls(3));
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  // The rename never happened; the torn temp is the simulated crash state
  // and must be rejected by the reader like any truncated file.
  EXPECT_FALSE(Exists(path_));
  ASSERT_TRUE(Exists(AtomicTempPathForTest()));
  ColumnarReader reader;
  EXPECT_FALSE(reader.Open(AtomicTempPathForTest()).ok());
}

TEST_F(ColumnarTest, TornWriteSurvivorIsReplacedOnRetry) {
  // First attempt tears; a clean retry must land atomically over the
  // leftover temp file.
  {
    fault::ScopedFaultSpec armed("site=io_torn_write,rate=1,seed=9");
    ColumnarWriter writer(path_);
    writer.AddRecord(0, 0, 0, 0, 0.25);
    EXPECT_FALSE(writer.Finish(MakeTerms(1), MakeUrls(1)).ok());
  }
  WriteFile(MakeRecords(16, 3, 2, 7), MakeTerms(3), MakeUrls(2));
  ColumnarReader reader;
  Status status = reader.Open(path_);
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(reader.num_records(), 16u);
}

#endif  // MIDAS_FAULT_INJECTION

}  // namespace
}  // namespace store
}  // namespace midas
