// Record-log codec contract, including the satellite fuzz requirement:
// truncation at EVERY byte offset and single-bit corruption of every byte
// after the magic. The reader must never crash, always recover the exact
// prefix of intact records, and report where the valid bytes end.

#include "midas/store/record_log.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "midas/store/crc32.h"

namespace midas {
namespace store {
namespace {

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(in)) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(static_cast<bool>(out)) << path;
}

class RecordLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/midas_record_log_test.log";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  // Mixed sizes, binary bytes, an empty payload, and NULs: the framing must
  // be content-agnostic.
  std::vector<std::string> SamplePayloads() const {
    return {
        "first record",
        "",
        std::string("bin\0ary\xff\x00 payload", 18),
        std::string(300, 'x'),
    };
  }

  void WriteSampleLog() {
    RecordWriter writer;
    ASSERT_TRUE(writer.Create(path_).ok());
    for (const std::string& payload : SamplePayloads()) {
      ASSERT_TRUE(writer.Append(payload).ok());
    }
    ASSERT_TRUE(writer.Close().ok());
  }

  // Byte offset of each record boundary: after the magic, then after each
  // record's frame.
  std::vector<size_t> Boundaries(const std::vector<std::string>& payloads) {
    std::vector<size_t> boundaries{kRecordLogMagicLen};
    for (const std::string& p : payloads) {
      boundaries.push_back(boundaries.back() + kRecordHeaderLen + p.size());
    }
    return boundaries;
  }

  std::string path_;
};

TEST_F(RecordLogTest, RoundTripsRecords) {
  WriteSampleLog();
  StatusOr<RecordReadResult> read = ReadRecordLog(path_);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->records, SamplePayloads());
  EXPECT_FALSE(read->tail_truncated);
  EXPECT_EQ(read->valid_bytes, ReadFileBytes(path_).size());
}

TEST_F(RecordLogTest, MissingFileIsNotFound) {
  EXPECT_EQ(ReadRecordLog(path_).status().code(), StatusCode::kNotFound);
}

TEST_F(RecordLogTest, NonLogFilesAreCorruption) {
  WriteFileBytes(path_, "not a record log at all, just text\n");
  EXPECT_EQ(ReadRecordLog(path_).status().code(), StatusCode::kCorruption);
  WriteFileBytes(path_, "shrt");  // shorter than the magic
  EXPECT_EQ(ReadRecordLog(path_).status().code(), StatusCode::kCorruption);
}

TEST_F(RecordLogTest, EmptyLogHasNoRecords) {
  RecordWriter writer;
  ASSERT_TRUE(writer.Create(path_).ok());
  ASSERT_TRUE(writer.Close().ok());
  StatusOr<RecordReadResult> read = ReadRecordLog(path_);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->records.empty());
  EXPECT_FALSE(read->tail_truncated);
  EXPECT_EQ(read->valid_bytes, kRecordLogMagicLen);
}

TEST_F(RecordLogTest, RejectsOversizedAppend) {
  RecordWriter writer;
  ASSERT_TRUE(writer.Create(path_).ok());
  const Status status =
      writer.Append(std::string(kMaxRecordPayload + 1, 'x'));
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST_F(RecordLogTest, ImplausibleLengthFieldIsTruncatedTailNotAllocation) {
  WriteSampleLog();
  std::string bytes = ReadFileBytes(path_);
  // Overwrite the first record's length field with ~4 GB. The reader must
  // flag the tail rather than try to resize a string that large.
  bytes[kRecordLogMagicLen + 3] = '\xff';
  WriteFileBytes(path_, bytes);
  StatusOr<RecordReadResult> read = ReadRecordLog(path_);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->records.empty());
  EXPECT_TRUE(read->tail_truncated);
  EXPECT_EQ(read->valid_bytes, kRecordLogMagicLen);
}

// Truncation fuzz at every byte offset: the recovered records are exactly
// those whose full frame fits in the prefix; valid_bytes is the last
// boundary inside the prefix; leftover bytes flag tail_truncated.
TEST_F(RecordLogTest, TruncationAtEveryByteOffsetRecoversThePrefix) {
  WriteSampleLog();
  const std::string full = ReadFileBytes(path_);
  const std::vector<std::string> payloads = SamplePayloads();
  const std::vector<size_t> boundaries = Boundaries(payloads);
  ASSERT_EQ(boundaries.back(), full.size());

  for (size_t cut = 0; cut <= full.size(); ++cut) {
    SCOPED_TRACE("cut=" + std::to_string(cut));
    WriteFileBytes(path_, full.substr(0, cut));
    StatusOr<RecordReadResult> read = ReadRecordLog(path_);
    if (cut < kRecordLogMagicLen) {
      EXPECT_EQ(read.status().code(), StatusCode::kCorruption);
      continue;
    }
    ASSERT_TRUE(read.ok()) << read.status().ToString();
    size_t expected_records = 0;
    size_t expected_valid = kRecordLogMagicLen;
    while (expected_records + 1 < boundaries.size() &&
           boundaries[expected_records + 1] <= cut) {
      ++expected_records;
      expected_valid = boundaries[expected_records];
    }
    EXPECT_EQ(read->records.size(), expected_records);
    for (size_t i = 0; i < expected_records; ++i) {
      EXPECT_EQ(read->records[i], payloads[i]);
    }
    EXPECT_EQ(read->valid_bytes, expected_valid);
    EXPECT_EQ(read->tail_truncated, cut != expected_valid);
  }
}

// Bit-flip fuzz over every bit after the magic: CRC-32 detects every
// single-bit error, so the reader recovers exactly the records before the
// flipped one and flags the tail. Records *after* the flip are unreachable
// by design — the log is a crash log, not a skip-list.
TEST_F(RecordLogTest, SingleBitCorruptionOfEveryByteIsDetected) {
  WriteSampleLog();
  const std::string full = ReadFileBytes(path_);
  const std::vector<std::string> payloads = SamplePayloads();
  const std::vector<size_t> boundaries = Boundaries(payloads);

  for (size_t byte = kRecordLogMagicLen; byte < full.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupted = full;
      corrupted[byte] = static_cast<char>(corrupted[byte] ^ (1 << bit));
      WriteFileBytes(path_, corrupted);
      StatusOr<RecordReadResult> read = ReadRecordLog(path_);
      ASSERT_TRUE(read.ok()) << read.status().ToString();

      // Which record holds the flipped byte?
      size_t flipped_record = 0;
      while (boundaries[flipped_record + 1] <= byte) ++flipped_record;

      ASSERT_LE(read->records.size(), payloads.size());
      // Everything before the flipped record survives bit-exact; the
      // flipped record itself must never be returned as valid. (A flip in
      // a length field can make the frame "swallow" later records, but can
      // never resurrect a record whose CRC no longer matches.)
      for (size_t i = 0; i < read->records.size() && i < flipped_record;
           ++i) {
        EXPECT_EQ(read->records[i], payloads[i])
            << "byte=" << byte << " bit=" << bit;
      }
      EXPECT_LE(read->records.size(), flipped_record)
          << "corrupted record returned as valid at byte=" << byte
          << " bit=" << bit;
      EXPECT_TRUE(read->tail_truncated)
          << "byte=" << byte << " bit=" << bit;
    }
  }
}

TEST_F(RecordLogTest, OpenForAppendDiscardsTornTailAndContinues) {
  WriteSampleLog();
  const std::string full = ReadFileBytes(path_);
  // Tear mid-way through the last record.
  WriteFileBytes(path_, full.substr(0, full.size() - 3));

  StatusOr<RecordReadResult> read = ReadRecordLog(path_);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->tail_truncated);
  EXPECT_EQ(read->records.size(), SamplePayloads().size() - 1);

  RecordWriter writer;
  ASSERT_TRUE(writer.OpenForAppend(path_, read->valid_bytes).ok());
  ASSERT_TRUE(writer.Append("appended after recovery").ok());
  ASSERT_TRUE(writer.Close().ok());

  StatusOr<RecordReadResult> reread = ReadRecordLog(path_);
  ASSERT_TRUE(reread.ok());
  EXPECT_FALSE(reread->tail_truncated);
  ASSERT_EQ(reread->records.size(), SamplePayloads().size());
  EXPECT_EQ(reread->records.back(), "appended after recovery");
}

TEST_F(RecordLogTest, CrcMatchesReferenceVectors) {
  // The classic CRC-32 check value ("123456789" -> 0xCBF43926) pins the
  // polynomial and reflection; an implementation change would silently
  // orphan every existing log.
  EXPECT_EQ(Crc32(std::string_view("123456789")), 0xCBF43926u);
  EXPECT_EQ(Crc32(std::string_view("")), 0u);
  // Chained computation equals one-shot.
  const std::string_view data = "chained crc computation";
  const uint32_t whole = Crc32(data);
  uint32_t chained = Crc32(data.substr(0, 7));
  chained = Crc32(data.substr(7).data(), data.size() - 7, chained);
  EXPECT_EQ(chained, whole);
}

}  // namespace
}  // namespace store
}  // namespace midas
