// Golden end-to-end regression test for `midas experiment`: the full JSON
// report (scores, slice counts, robustness counters, per-source reports)
// for a fixed dataset/seed/thread-count is pinned against a checked-in
// golden file. Any behavior change in generation, detection, consolidation,
// scoring, or report shape shows up as a readable diff here.
//
// Updating the golden after an INTENDED change:
//
//   MIDAS_UPDATE_GOLDEN=1 ctest --test-dir build -R GoldenExperimentTest
//
// rewrites tests/golden/experiment_slim_nell.json with the current output
// (the test passes and prints the rewritten path). Commit the new golden
// together with the change that motivated it; review the diff first — an
// unexplained score shift is a regression, not a golden refresh.
//
// Wall-clock timings are the one nondeterministic part of the report; the
// comparison normalizes every "seconds" value to 0 on both sides.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "common/cli_helpers.h"
#include "midas/obs/metrics.h"
#include "midas/obs/trace.h"
#include "tools/commands.h"

#ifndef MIDAS_TEST_GOLDEN_DIR
#error "MIDAS_TEST_GOLDEN_DIR must be defined by the build"
#endif

namespace midas {
namespace tools {
namespace {

using tests::ParseInto;
using tests::ReadAll;

/// Replaces the value of every `"seconds":` line with 0, preserving
/// indentation and the trailing comma — the only volatile field in the
/// report.
std::string NormalizeSeconds(const std::string& doc) {
  std::istringstream in(doc);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    const size_t pos = line.find("\"seconds\":");
    if (pos != std::string::npos) {
      const bool comma = !line.empty() && line.back() == ',';
      line = line.substr(0, pos) + "\"seconds\": 0" + (comma ? "," : "");
    }
    out << line << "\n";
  }
  return out.str();
}

TEST(GoldenExperimentTest, JsonReportMatchesGolden) {
  const std::string golden_path =
      std::string(MIDAS_TEST_GOLDEN_DIR) + "/experiment_slim_nell.json";

  FlagParser flags;
  RegisterExperimentFlags(&flags);
  ASSERT_TRUE(ParseInto(&flags, {"--dataset=slim-nell", "--num_sources=12",
                                 "--seed=17", "--threads=2",
                                 "--methods=midas,greedy,naive", "--json"})
                  .ok());
  obs::Registry::Global().ResetAllForTest();
  obs::Tracer::Global().Reset();
  std::ostringstream out;
  Status status = RunExperiment(flags, out);
  ASSERT_TRUE(status.ok()) << status.ToString();
  const std::string actual = NormalizeSeconds(out.str());

  if (std::getenv("MIDAS_UPDATE_GOLDEN") != nullptr) {
    std::ofstream rewrite(golden_path, std::ios::trunc);
    ASSERT_TRUE(rewrite.good()) << "cannot write " << golden_path;
    rewrite << actual;
    rewrite.close();
    std::cout << "golden updated: " << golden_path << "\n";
    return;
  }

  const std::string expected = ReadAll(golden_path);
  ASSERT_FALSE(expected.empty())
      << "missing golden " << golden_path
      << " — generate it with MIDAS_UPDATE_GOLDEN=1";
  EXPECT_EQ(actual, NormalizeSeconds(expected))
      << "report drifted from " << golden_path
      << "; if the change is intended, refresh with MIDAS_UPDATE_GOLDEN=1";
}

/// The report must be reproducible run-to-run inside one process too —
/// otherwise the golden would only pin the first execution.
TEST(GoldenExperimentTest, BackToBackRunsAreBitIdentical) {
  auto run = [] {
    FlagParser flags;
    RegisterExperimentFlags(&flags);
    EXPECT_TRUE(ParseInto(&flags, {"--dataset=slim-nell", "--num_sources=12",
                                   "--seed=17", "--threads=2",
                                   "--methods=midas", "--json"})
                    .ok());
    std::ostringstream out;
    EXPECT_TRUE(RunExperiment(flags, out).ok());
    return NormalizeSeconds(out.str());
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace tools
}  // namespace midas
