// End-to-end tests of the `midas` CLI subcommands (driven through the
// command library, not a subprocess): generate a dataset to disk, discover
// slices from the dump, inspect stats, and evaluate against the silver
// standard.

#include "tools/commands.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli_helpers.h"
#include "midas/obs/obs.h"

namespace midas {
namespace tools {
namespace {

using tests::ParseInto;

class CommandsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir();
    dump_ = dir_ + "/cli_dump.tsv";
    kb_ = dir_ + "/cli_kb.tsv";
    silver_ = dir_ + "/cli_silver.tsv";
    slices_ = dir_ + "/cli_slices.tsv";
  }
  void TearDown() override {
    for (const auto& p : {dump_, kb_, silver_, slices_}) {
      std::remove(p.c_str());
    }
  }

  // Runs `generate` producing all three artifacts.
  void Generate() {
    FlagParser flags;
    RegisterGenerateFlags(&flags);
    ASSERT_TRUE(ParseInto(&flags, {"--dataset=slim-nell",
                                   "--num_sources=30", "--seed=17",
                                   "--dump=" + dump_, "--kb=" + kb_,
                                   "--silver=" + silver_})
                    .ok());
    std::ostringstream out;
    Status status = RunGenerate(flags, out);
    ASSERT_TRUE(status.ok()) << status.ToString();
    EXPECT_NE(out.str().find("extraction records"), std::string::npos);
  }

  // Runs `discover --json` on the generated dump with extra flags and
  // returns the report text.
  std::string DiscoverJson(const std::vector<std::string>& extra) {
    FlagParser flags;
    RegisterDiscoverFlags(&flags);
    std::vector<std::string> args = {"--dump=" + dump_, "--kb=" + kb_,
                                     "--json"};
    args.insert(args.end(), extra.begin(), extra.end());
    if (!ParseInto(&flags, args).ok()) {
      ADD_FAILURE() << "flag parse failed";
      return "";
    }
    std::ostringstream out;
    const Status status = RunDiscover(flags, out);
    EXPECT_TRUE(status.ok()) << status.ToString();
    return out.str();
  }

  // Drops the wall-clock line so reports from separate runs compare equal.
  static std::string StripSeconds(const std::string& json) {
    std::string out;
    std::istringstream in(json);
    std::string line;
    while (std::getline(in, line)) {
      if (line.find("\"seconds\"") != std::string::npos) continue;
      out += line;
      out += '\n';
    }
    return out;
  }

  std::string dir_, dump_, kb_, silver_, slices_;
};

TEST_F(CommandsTest, GenerateWritesArtifacts) {
  Generate();
  for (const auto& p : {dump_, kb_, silver_}) {
    std::ifstream in(p);
    EXPECT_TRUE(in.good()) << p;
  }
}

TEST_F(CommandsTest, GenerateRequiresDump) {
  FlagParser flags;
  RegisterGenerateFlags(&flags);
  ASSERT_TRUE(ParseInto(&flags, {}).ok());
  std::ostringstream out;
  EXPECT_EQ(RunGenerate(flags, out).code(), StatusCode::kInvalidArgument);
}

TEST_F(CommandsTest, GenerateRejectsUnknownDataset) {
  FlagParser flags;
  RegisterGenerateFlags(&flags);
  ASSERT_TRUE(
      ParseInto(&flags, {"--dataset=bogus", "--dump=" + dump_}).ok());
  std::ostringstream out;
  EXPECT_EQ(RunGenerate(flags, out).code(), StatusCode::kInvalidArgument);
}

TEST_F(CommandsTest, DiscoverThenEvaluateScoresWell) {
  Generate();

  {
    FlagParser flags;
    RegisterDiscoverFlags(&flags);
    ASSERT_TRUE(ParseInto(&flags, {"--dump=" + dump_, "--out=" + slices_,
                                   "--top_k=5"})
                    .ok());
    std::ostringstream out;
    Status status = RunDiscover(flags, out);
    ASSERT_TRUE(status.ok()) << status.ToString();
    EXPECT_NE(out.str().find("discovered"), std::string::npos);
    EXPECT_NE(out.str().find("saved full slice list"), std::string::npos);
  }

  {
    FlagParser flags;
    RegisterEvaluateFlags(&flags);
    ASSERT_TRUE(ParseInto(&flags, {"--slices=" + slices_,
                                   "--silver=" + silver_})
                    .ok());
    std::ostringstream out;
    Status status = RunEvaluate(flags, out);
    ASSERT_TRUE(status.ok()) << status.ToString();
    // MIDAS on a slim dataset recalls essentially everything; the printed
    // table must contain a high recall value. Just assert the run printed
    // non-zero matched slices.
    EXPECT_EQ(out.str().find("| 0       | 0"), std::string::npos);
  }
}

TEST_F(CommandsTest, DiscoverSupportsEveryMethod) {
  Generate();
  for (const char* method : {"midas", "greedy", "aggcluster", "naive"}) {
    FlagParser flags;
    RegisterDiscoverFlags(&flags);
    ASSERT_TRUE(ParseInto(&flags, {"--dump=" + dump_,
                                   std::string("--method=") + method})
                    .ok());
    std::ostringstream out;
    Status status = RunDiscover(flags, out);
    EXPECT_TRUE(status.ok()) << method << ": " << status.ToString();
  }
}

TEST_F(CommandsTest, DiscoverRejectsUnknownMethod) {
  Generate();
  FlagParser flags;
  RegisterDiscoverFlags(&flags);
  ASSERT_TRUE(
      ParseInto(&flags, {"--dump=" + dump_, "--method=magic"}).ok());
  std::ostringstream out;
  EXPECT_EQ(RunDiscover(flags, out).code(), StatusCode::kInvalidArgument);
}

// The --workers path must be byte-for-byte the in-process run (modulo the
// wall-clock "seconds" line of the JSON report).
TEST_F(CommandsTest, DiscoverWithWorkersMatchesInProcessJson) {
  Generate();
  const std::string in_process = DiscoverJson({});
  const std::string dist = DiscoverJson({"--workers=2"});
  EXPECT_EQ(StripSeconds(in_process), StripSeconds(dist));
}

#ifdef MIDAS_FAULT_INJECTION
// Regression: respawned workers fork from inside framework.Run, long after
// the coordinator-setup scope has returned — the worker_main closure must
// not reference anything on that dead stack frame. A seeded worker_crash
// forces losses + respawns; the healed run must still match in-process.
TEST_F(CommandsTest, DiscoverWorkersHealCrashesBitIdentical) {
  Generate();
  const std::string in_process = DiscoverJson({});
  obs::Counter* losses = MIDAS_OBS_COUNTER("dist.worker_losses");
  const uint64_t losses_before = losses->Value();
  const std::string healed = DiscoverJson(
      {"--workers=2", "--worker_respawn_limit=64",
       "--fault_spec=site=worker_crash,rate=0.02,seed=5"});
  // The seeded crash site must actually have killed workers — otherwise
  // this asserts nothing about the respawn path.
  EXPECT_GT(losses->Value(), losses_before);
  EXPECT_EQ(StripSeconds(in_process), StripSeconds(healed));
  EXPECT_NE(healed.find("\"shards_failed\": 0"), std::string::npos);
}
#endif  // MIDAS_FAULT_INJECTION

TEST_F(CommandsTest, DiscoverWithRangesFlag) {
  Generate();
  FlagParser flags;
  RegisterDiscoverFlags(&flags);
  ASSERT_TRUE(ParseInto(&flags, {"--dump=" + dump_, "--ranges"}).ok());
  std::ostringstream out;
  Status status = RunDiscover(flags, out);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_NE(out.str().find("numeric-range extension"), std::string::npos);
}

TEST_F(CommandsTest, DiscoverJsonOutput) {
  Generate();
  FlagParser flags;
  RegisterDiscoverFlags(&flags);
  ASSERT_TRUE(ParseInto(&flags, {"--dump=" + dump_, "--json"}).ok());
  std::ostringstream out;
  Status status = RunDiscover(flags, out);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(out.str()[0], '{');
  EXPECT_NE(out.str().find("\"slices\""), std::string::npos);
  EXPECT_NE(out.str().find("\"profit\""), std::string::npos);
}

TEST_F(CommandsTest, EvaluateJsonOutput) {
  Generate();
  {
    FlagParser flags;
    RegisterDiscoverFlags(&flags);
    ASSERT_TRUE(
        ParseInto(&flags, {"--dump=" + dump_, "--out=" + slices_}).ok());
    std::ostringstream out;
    ASSERT_TRUE(RunDiscover(flags, out).ok());
  }
  FlagParser flags;
  RegisterEvaluateFlags(&flags);
  ASSERT_TRUE(ParseInto(&flags, {"--slices=" + slices_,
                                 "--silver=" + silver_, "--json"})
                  .ok());
  std::ostringstream out;
  ASSERT_TRUE(RunEvaluate(flags, out).ok());
  EXPECT_NE(out.str().find("\"f_measure\""), std::string::npos);
}

#ifdef MIDAS_FAULT_INJECTION
TEST_F(CommandsTest, DiscoverReportsPartialWhenSourceDeadlineExpires) {
  Generate();
  FlagParser flags;
  RegisterDiscoverFlags(&flags);
  // Every shard sleeps past its 1 ms budget; the run must complete, flag
  // itself partial, and count the expirations — through the CLI surface.
  ASSERT_TRUE(
      ParseInto(&flags, {"--dump=" + dump_, "--source_deadline_ms=1",
                         "--fault_spec=site=slow_shard,delay_ms=5",
                         "--json"})
          .ok());
  std::ostringstream out;
  Status status = RunDiscover(flags, out);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_NE(out.str().find("\"partial\": true"), std::string::npos);
  EXPECT_EQ(out.str().find("\"deadline_expirations\": 0,"),
            std::string::npos);
  EXPECT_NE(out.str().find("\"status\": \"partial\""), std::string::npos);
}

TEST_F(CommandsTest, DiscoverRejectsMalformedFaultSpec) {
  Generate();
  FlagParser flags;
  RegisterDiscoverFlags(&flags);
  ASSERT_TRUE(ParseInto(&flags, {"--dump=" + dump_,
                                 "--fault_spec=site=detector,rate=nope"})
                  .ok());
  std::ostringstream out;
  EXPECT_EQ(RunDiscover(flags, out).code(), StatusCode::kInvalidArgument);
}
#endif  // MIDAS_FAULT_INJECTION

TEST_F(CommandsTest, StatsPrintsCounts) {
  Generate();
  FlagParser flags;
  RegisterStatsFlags(&flags);
  ASSERT_TRUE(ParseInto(&flags, {"--dump=" + dump_}).ok());
  std::ostringstream out;
  Status status = RunStats(flags, out);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_NE(out.str().find("# of facts"), std::string::npos);
}

TEST_F(CommandsTest, StatsMissingDumpFileIsIoError) {
  FlagParser flags;
  RegisterStatsFlags(&flags);
  ASSERT_TRUE(ParseInto(&flags, {"--dump=/no/such/file.tsv"}).ok());
  std::ostringstream out;
  EXPECT_EQ(RunStats(flags, out).code(), StatusCode::kIoError);
}

TEST_F(CommandsTest, EvaluateRequiresBothFiles) {
  FlagParser flags;
  RegisterEvaluateFlags(&flags);
  ASSERT_TRUE(ParseInto(&flags, {"--slices=" + slices_}).ok());
  std::ostringstream out;
  EXPECT_EQ(RunEvaluate(flags, out).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace tools
}  // namespace midas
