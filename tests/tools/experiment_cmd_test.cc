// End-to-end tests of the `experiment` subcommand: a synthetic corpus is
// generated in-process, the requested methods run against it, and the
// scores land in a table or JSON report. Also pins the --metrics_out
// contract CI relies on: the written document carries framework spans,
// hierarchy counters, and thread-pool histograms.

#include "tools/commands.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "common/cli_helpers.h"
#include "midas/obs/metrics.h"
#include "midas/obs/trace.h"

namespace midas {
namespace tools {
namespace {

using tests::ParseInto;
using tests::ReadAll;

class ExperimentCmdTest : public ::testing::Test {
 protected:
  void SetUp() override {
    metrics_ = ::testing::TempDir() + "/experiment_metrics.json";
    obs::Registry::Global().ResetAllForTest();
    obs::Tracer::Global().Reset();
  }
  void TearDown() override { std::remove(metrics_.c_str()); }

  std::string metrics_;
};

TEST_F(ExperimentCmdTest, RunsAndPrintsScoresTable) {
  FlagParser flags;
  RegisterExperimentFlags(&flags);
  ASSERT_TRUE(ParseInto(&flags, {"--num_sources=10", "--seed=7",
                                 "--methods=midas,naive"})
                  .ok());
  std::ostringstream out;
  Status status = RunExperiment(flags, out);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_NE(out.str().find("MIDAS"), std::string::npos);
  EXPECT_NE(out.str().find("Naive"), std::string::npos);
  EXPECT_NE(out.str().find("f-measure"), std::string::npos);
}

TEST_F(ExperimentCmdTest, JsonReportHasPerMethodRows) {
  FlagParser flags;
  RegisterExperimentFlags(&flags);
  ASSERT_TRUE(ParseInto(&flags, {"--num_sources=10", "--methods=midas",
                                 "--json"})
                  .ok());
  std::ostringstream out;
  ASSERT_TRUE(RunExperiment(flags, out).ok());
  EXPECT_EQ(out.str()[0], '{');
  EXPECT_NE(out.str().find("\"methods\""), std::string::npos);
  EXPECT_NE(out.str().find("\"f_measure\""), std::string::npos);
  EXPECT_NE(out.str().find("\"silver_slices\""), std::string::npos);
}

TEST_F(ExperimentCmdTest, RejectsUnknownMethod) {
  FlagParser flags;
  RegisterExperimentFlags(&flags);
  ASSERT_TRUE(ParseInto(&flags, {"--methods=magic"}).ok());
  std::ostringstream out;
  EXPECT_EQ(RunExperiment(flags, out).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ExperimentCmdTest, MetricsOutWritesPipelineDocument) {
  FlagParser flags;
  RegisterExperimentFlags(&flags);
  ASSERT_TRUE(ParseInto(&flags, {"--num_sources=10", "--methods=midas",
                                 "--metrics_out=" + metrics_,
                                 "--metrics_summary"})
                  .ok());
  std::ostringstream out;
  ASSERT_TRUE(RunExperiment(flags, out).ok());

  const std::string doc = ReadAll(metrics_);
  ASSERT_FALSE(doc.empty());
  // Always-present schema scaffolding (valid even in a noop build).
  EXPECT_NE(doc.find("\"benchmarks\""), std::string::npos);
  EXPECT_NE(doc.find("\"spans\""), std::string::npos);
#ifndef MIDAS_OBS_NOOP
  // The acceptance contract: per-source spans, per-level hierarchy
  // counters, and thread-pool histograms all present in one document.
  EXPECT_NE(doc.find("framework.source"), std::string::npos);
  EXPECT_NE(doc.find("hierarchy.level."), std::string::npos);
  EXPECT_NE(doc.find("threadpool.task_run_us"), std::string::npos);
  // --metrics_summary printed the human-readable table after the scores.
  EXPECT_NE(out.str().find("hierarchy.nodes_generated"), std::string::npos);
#endif
}

}  // namespace
}  // namespace tools
}  // namespace midas
