// Integration: the extraction-hygiene pass in front of slice discovery.
// A dump polluted with duplicate records, whitespace-variant subjects, and
// low-confidence junk must, after cleaning, yield the same discovery
// result as the pristine dump.

#include <gtest/gtest.h>

#include <memory>

#include "midas/core/midas.h"
#include "midas/extract/cleaning.h"
#include "midas/extract/extraction.h"
#include "midas/util/random.h"
#include "midas/util/string_util.h"

namespace midas {
namespace {

class CleaningPipelineTest : public ::testing::Test {
 protected:
  CleaningPipelineTest() : dict_(std::make_shared<rdf::Dictionary>()) {}

  extract::ExtractedFact Fact(const std::string& url, const std::string& s,
                              const std::string& p, const std::string& o,
                              double conf) {
    return extract::ExtractedFact{
        url,
        rdf::Triple(dict_->Intern(s), dict_->Intern(p), dict_->Intern(o)),
        conf};
  }

  // A clean dump: two coherent sections.
  std::vector<extract::ExtractedFact> PristineDump() {
    std::vector<extract::ExtractedFact> facts;
    for (int i = 0; i < 8; ++i) {
      std::string url = StringPrintf("http://a.com/rockets/p%d", i);
      std::string e = StringPrintf("rocket%d", i);
      facts.push_back(Fact(url, e, "cat", "rocket", 0.9));
      facts.push_back(Fact(url, e, "sponsor", "NASA", 0.9));
    }
    for (int i = 0; i < 8; ++i) {
      std::string url = StringPrintf("http://a.com/drinks/p%d", i);
      std::string e = StringPrintf("drink%d", i);
      facts.push_back(Fact(url, e, "cat", "cocktail", 0.9));
    }
    return facts;
  }

  // The same dump with pollution layered on.
  std::vector<extract::ExtractedFact> PollutedDump() {
    auto facts = PristineDump();
    Rng rng(9);
    std::vector<extract::ExtractedFact> polluted;
    for (const auto& f : facts) {
      polluted.push_back(f);
      // Duplicate record at lower confidence.
      auto dup = f;
      dup.confidence = 0.75;
      polluted.push_back(dup);
      // Whitespace-variant subject record.
      auto ws = f;
      ws.triple.subject =
          dict_->Intern("  " + dict_->Term(f.triple.subject) + " ");
      polluted.push_back(ws);
      // Low-confidence junk.
      polluted.push_back(Fact(f.url, "junk" + std::to_string(rng.Next() % 100),
                              "noise", "x", 0.2));
    }
    return polluted;
  }

  std::vector<core::DiscoveredSlice> Discover(
      std::vector<extract::ExtractedFact> facts) {
    extract::ExtractionDump dump;
    dump.dict = dict_;
    dump.facts = std::move(facts);
    web::Corpus corpus = extract::BuildCorpus(dump, 0.7);
    rdf::KnowledgeBase kb(dict_);
    core::MidasOptions options;
    options.cost_model = core::CostModel::RunningExample();
    core::Midas midas(options);
    return midas.DiscoverSlices(corpus, kb).slices;
  }

  std::shared_ptr<rdf::Dictionary> dict_;
};

TEST_F(CleaningPipelineTest, CleanedPollutedDumpMatchesPristine) {
  auto pristine_slices = Discover(PristineDump());
  ASSERT_EQ(pristine_slices.size(), 2u);

  auto polluted = PollutedDump();
  extract::CleaningOptions options;
  options.min_confidence = 0.7;
  auto stats = extract::CleanExtractions(options, dict_.get(), &polluted);
  EXPECT_GT(stats.duplicates_merged, 0u);
  EXPECT_GT(stats.below_confidence, 0u);
  EXPECT_GT(stats.terms_normalized, 0u);

  auto cleaned_slices = Discover(std::move(polluted));
  ASSERT_EQ(cleaned_slices.size(), pristine_slices.size());
  for (size_t i = 0; i < cleaned_slices.size(); ++i) {
    EXPECT_EQ(cleaned_slices[i].Description(*dict_),
              pristine_slices[i].Description(*dict_));
    EXPECT_EQ(cleaned_slices[i].num_facts, pristine_slices[i].num_facts);
  }
}

TEST_F(CleaningPipelineTest, WithoutCleaningThePollutionLeaksThrough) {
  auto polluted_slices = Discover(PollutedDump());
  auto pristine_slices = Discover(PristineDump());
  // Whitespace-variant subjects double the entities, so the polluted run's
  // slices disagree with the pristine ones in size.
  bool identical = polluted_slices.size() == pristine_slices.size();
  if (identical) {
    for (size_t i = 0; i < polluted_slices.size(); ++i) {
      if (polluted_slices[i].num_facts != pristine_slices[i].num_facts) {
        identical = false;
      }
    }
  }
  EXPECT_FALSE(identical);
}

}  // namespace
}  // namespace midas
