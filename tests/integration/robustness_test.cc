// Robustness / fuzz-style tests: random and adversarial inputs through the
// parsers and serializers (nothing may crash; round-trips must be
// lossless), plus framework determinism across thread counts.

#include <gtest/gtest.h>

#include <string>

#include "midas/core/midas.h"
#include "midas/rdf/ntriples.h"
#include "midas/synth/corpus_generator.h"
#include "midas/util/random.h"
#include "midas/util/tsv.h"
#include "midas/web/url.h"

namespace midas {
namespace {

// Random printable-ish string including separators and escapes.
std::string RandomNastyString(Rng* rng, size_t max_len) {
  static const char kAlphabet[] =
      "abcXYZ012 \t\n\r\\\"<>.:/?#@%&=;[]{}()|~^$!*+,'\x7f";
  size_t len = rng->Uniform(max_len + 1);
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(kAlphabet[rng->Uniform(sizeof(kAlphabet) - 1)]);
  }
  return out;
}

TEST(FuzzTest, UrlParseNeverCrashesAndNormalizeIsIdempotent) {
  Rng rng(1);
  for (int i = 0; i < 20000; ++i) {
    std::string input = RandomNastyString(&rng, 64);
    auto parsed = web::Url::Parse(input);
    if (parsed.ok()) {
      // Normalization must be a fixpoint.
      std::string normalized = parsed->ToString();
      auto again = web::Url::Parse(normalized);
      ASSERT_TRUE(again.ok()) << normalized;
      EXPECT_EQ(again->ToString(), normalized);
      // Depth helpers agree with the parsed form.
      EXPECT_EQ(web::UrlDepth(normalized), parsed->depth());
    }
  }
}

TEST(FuzzTest, ParentUrlStringTerminates) {
  Rng rng(2);
  for (int i = 0; i < 5000; ++i) {
    std::string url = RandomNastyString(&rng, 48);
    // Walking parents must reach a fixpoint in bounded steps.
    int steps = 0;
    std::string current = url;
    while (steps < 100) {
      std::string parent = web::ParentUrlString(current);
      if (parent == current) break;
      current = parent;
      ++steps;
    }
    EXPECT_LT(steps, 100) << url;
  }
}

TEST(FuzzTest, TsvEscapeRoundTripsArbitraryStrings) {
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    std::string s = RandomNastyString(&rng, 32);
    std::string escaped = TsvEscape(s);
    EXPECT_EQ(escaped.find('\t'), std::string::npos);
    EXPECT_EQ(escaped.find('\n'), std::string::npos);
    EXPECT_EQ(TsvUnescape(escaped), s);
  }
}

TEST(FuzzTest, TsvRowRoundTripsArbitraryFields) {
  Rng rng(4);
  for (int i = 0; i < 2000; ++i) {
    std::vector<std::string> fields;
    size_t n = 1 + rng.Uniform(5);
    for (size_t f = 0; f < n; ++f) {
      fields.push_back(RandomNastyString(&rng, 24));
    }
    std::string row = TsvFormatRow(fields);
    auto parsed =
        TsvParseRow(std::string_view(row).substr(0, row.size() - 1));
    EXPECT_EQ(parsed, fields);
  }
}

TEST(FuzzTest, NTriplesParserNeverCrashes) {
  Rng rng(5);
  std::vector<std::string> terms;
  for (int i = 0; i < 20000; ++i) {
    std::string line = RandomNastyString(&rng, 80);
    auto status = rdf::ParseNTriplesLine(line, &terms);
    (void)status;  // ok or error — just must not crash
  }
}

TEST(FuzzTest, NTriplesFormatParsesBackWhenTermsAreClean) {
  Rng rng(6);
  for (int i = 0; i < 2000; ++i) {
    // IRI-safe subject/predicate (no '>'), arbitrary literal object.
    auto clean = [&](size_t len) {
      std::string s;
      for (size_t c = 0; c < len; ++c) {
        s.push_back(static_cast<char>('a' + rng.Uniform(26)));
      }
      return s;
    };
    std::string subject = clean(8), predicate = clean(6);
    std::string object = RandomNastyString(&rng, 24);
    // The formatter only quotes/escapes literal objects; objects that look
    // like IRIs must themselves be clean.
    if (object.find("://") != std::string::npos) continue;

    std::string line = rdf::FormatNTriplesLine(subject, predicate, object);
    std::vector<std::string> terms;
    Status s = rdf::ParseNTriplesLine(line, &terms);
    ASSERT_TRUE(s.ok()) << line;
    EXPECT_EQ(terms[0], subject);
    EXPECT_EQ(terms[1], predicate);
    EXPECT_EQ(terms[2], object);
  }
}

TEST(FuzzTest, CorpusAcceptsGarbageUrlsAndTerms) {
  Rng rng(7);
  auto dict = std::make_shared<rdf::Dictionary>();
  web::Corpus corpus(dict);
  rdf::KnowledgeBase kb(dict);
  for (int i = 0; i < 2000; ++i) {
    corpus.AddFactRaw(RandomNastyString(&rng, 40),
                      RandomNastyString(&rng, 16),
                      RandomNastyString(&rng, 16),
                      RandomNastyString(&rng, 16));
  }
  // The full pipeline must survive whatever the corpus now contains.
  core::Midas midas;
  auto result = midas.DiscoverSlices(corpus, kb);
  (void)result;
  SUCCEED();
}

TEST(DeterminismTest, FrameworkResultsIndependentOfThreadCount) {
  auto params = synth::SlimParams(/*open_ie=*/false, 30, /*seed=*/77);
  auto data = synth::GenerateCorpus(params);

  core::MidasOptions options;
  core::MidasAlg alg(options);

  auto run = [&](size_t threads) {
    core::FrameworkOptions fw;
    fw.num_threads = threads;
    core::MidasFramework framework(&alg, fw);
    return framework.Run(*data.corpus, *data.kb);
  };

  auto one = run(1);
  auto many = run(8);
  ASSERT_EQ(one.slices.size(), many.slices.size());
  for (size_t i = 0; i < one.slices.size(); ++i) {
    EXPECT_EQ(one.slices[i].source_url, many.slices[i].source_url);
    EXPECT_EQ(one.slices[i].entities, many.slices[i].entities);
    EXPECT_DOUBLE_EQ(one.slices[i].profit, many.slices[i].profit);
  }
}

}  // namespace
}  // namespace midas
