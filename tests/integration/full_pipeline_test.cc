// Full-pipeline integration: the fig10-style path (full corpus, empty KB,
// ground-truth labeling) and the one-call facade, exercised at reduced
// scale so they run in CI time.

#include <gtest/gtest.h>

#include "midas/core/midas.h"
#include "midas/eval/experiment.h"
#include "midas/eval/labeling.h"
#include "midas/synth/corpus_generator.h"

namespace midas {
namespace {

TEST(FullPipelineTest, FacadeMatchesFrameworkComposition) {
  auto data = synth::GenerateCorpus(synth::SlimParams(false, 20, 61));

  core::Midas facade;
  auto via_facade = facade.DiscoverSlices(*data.corpus, *data.kb);

  core::MidasAlg alg;
  core::MidasFramework framework(&alg);
  auto via_parts = framework.Run(*data.corpus, *data.kb);

  ASSERT_EQ(via_facade.slices.size(), via_parts.slices.size());
  for (size_t i = 0; i < via_facade.slices.size(); ++i) {
    EXPECT_EQ(via_facade.slices[i].source_url,
              via_parts.slices[i].source_url);
    EXPECT_DOUBLE_EQ(via_facade.slices[i].profit,
                     via_parts.slices[i].profit);
  }
}

TEST(FullPipelineTest, TopKPrecisionShapeOnFullCorpus) {
  // A miniature of Fig. 10a/c: empty KB, ground-truth labeler, MIDAS must
  // dominate Naive by a wide margin.
  auto params = synth::NellLikeParams(0.15);
  params.gap_section_fraction = 1.0;
  params.gap_kb_fraction = 0.0;
  params.kb_known_fraction = 0.0;
  params.noisy_kb_fraction = 0.0;
  params.skewed_large_domain = false;
  auto data = synth::GenerateCorpus(params);

  eval::MethodSuite suite(core::CostModel(), /*agg_max_entities=*/500);

  auto midas_slices =
      eval::RunMethod(*suite.Find("MIDAS"), *data.corpus, *data.kb);
  auto naive_slices =
      eval::RunMethod(*suite.Find("Naive"), *data.corpus, *data.kb);
  ASSERT_GE(midas_slices.size(), 20u);

  eval::GroundTruthLabeler labeler(&data.entity_group,
                                   synth::GeneratedCorpus::kNoiseGroup,
                                   data.kb.get());
  double midas_p20 = labeler.TopKPrecision(midas_slices, 20);
  double naive_p20 = labeler.TopKPrecision(naive_slices, 20);
  EXPECT_GE(midas_p20, 0.8);
  EXPECT_LE(naive_p20, 0.5);
  EXPECT_GT(midas_p20, naive_p20 + 0.3);
}

TEST(FullPipelineTest, KbCoverageSuppressesKnownContent) {
  // The same corpus against (a) an empty KB and (b) its own truth KB with
  // high coverage: discovery must find much less in case (b).
  auto params = synth::SlimParams(false, 30, 62);
  auto data_empty = synth::GenerateCorpus(params);

  params.gap_section_fraction = 0.2;  // most sections known
  params.kb_known_fraction = 0.97;
  auto data_known = synth::GenerateCorpus(params);

  core::Midas midas;
  auto gaps_empty = midas.DiscoverSlices(*data_empty.corpus, *data_empty.kb);
  auto gaps_known = midas.DiscoverSlices(*data_known.corpus, *data_known.kb);
  EXPECT_GT(gaps_empty.slices.size(), 2 * gaps_known.slices.size());
}

TEST(FullPipelineTest, RangeExtensionThroughTheFacade) {
  auto data = synth::GenerateCorpus(synth::SlimParams(false, 20, 63));
  core::NumericRangeIndex ranges(data.dict.get(), *data.corpus);

  core::MidasOptions options;
  options.fact_table.range_index = &ranges;
  core::Midas midas(options);
  auto result = midas.DiscoverSlices(*data.corpus, *data.kb);
  // Sanity: the run completes and still finds the planted slices.
  EXPECT_GE(result.slices.size(), 10u);
}

}  // namespace
}  // namespace midas
