// Integration tests on the ReVerb-Slim-style generated corpus: generator
// contract, method comparison at coverage 0, and the coverage-sweep
// machinery used by the Fig. 9 bench.

#include <gtest/gtest.h>

#include "midas/eval/experiment.h"
#include "midas/synth/corpus_generator.h"

namespace midas {
namespace {

TEST(SlimCorpusTest, GeneratorContract) {
  auto params = synth::SlimParams(/*open_ie=*/false, 60, /*seed=*/21);
  auto data = synth::GenerateCorpus(params);

  // Empty KB (labeled against an empty knowledge base).
  EXPECT_EQ(data.kb->size(), 0u);
  // Roughly half the domains are coherent; each contributes 1-4 silver
  // slices (a few may fall under the min-new-facts cut).
  EXPECT_GE(data.silver.size(), 30u);
  EXPECT_LE(data.silver.size(), 120u);
  // Extraction happened and filtering dropped something.
  EXPECT_GT(data.num_extracted, 0u);
  EXPECT_LT(data.num_filtered, data.num_extracted);
  EXPECT_GT(data.corpus->NumFacts(), 0u);

  // Silver slices' facts exist in the filtered corpus space and are new.
  for (const auto& gt : data.silver.slices) {
    EXPECT_FALSE(gt.facts.empty());
    EXPECT_FALSE(gt.entities.empty());
    for (const auto& t : gt.facts) {
      EXPECT_FALSE(data.kb->Contains(t));
    }
  }
}

TEST(SlimCorpusTest, MidasBeatsBaselinesAtCoverageZero) {
  auto params = synth::SlimParams(/*open_ie=*/false, 60, /*seed=*/22);
  auto data = synth::GenerateCorpus(params);

  eval::MethodSuite suite;
  eval::PrfScores midas_scores, greedy_scores, naive_scores;
  for (const auto& spec : suite.specs()) {
    if (spec.name == "AggCluster") continue;  // covered separately (slow)
    auto slices = eval::RunMethod(spec, *data.corpus, *data.kb);
    auto scores = eval::ScoreAgainstSilver(slices, data.silver);
    if (spec.name == "MIDAS") midas_scores = scores;
    if (spec.name == "Greedy") greedy_scores = scores;
    if (spec.name == "Naive") naive_scores = scores;
  }

  // The paper's headline shape: MIDAS dominates on F-measure.
  EXPECT_GT(midas_scores.f_measure, 0.6);
  EXPECT_GT(midas_scores.f_measure, greedy_scores.f_measure);
  EXPECT_GT(midas_scores.f_measure, naive_scores.f_measure);
}

TEST(SlimCorpusTest, CoverageSweepShrinksOptimalOutput) {
  auto params = synth::SlimParams(/*open_ie=*/false, 40, /*seed=*/23);
  auto data = synth::GenerateCorpus(params);

  eval::MethodSuite suite;
  std::vector<eval::MethodSpec> midas_only = {*suite.Find("MIDAS")};
  auto rows = eval::RunCoverageSweep(*data.corpus, data.dict, data.silver,
                                     midas_only, {0.0, 0.4, 0.8});
  ASSERT_EQ(rows.size(), 3u);
  // Higher coverage -> fewer remaining silver slices.
  EXPECT_GT(rows[0].scores.expected, rows[1].scores.expected);
  EXPECT_GT(rows[1].scores.expected, rows[2].scores.expected);
  // MIDAS keeps a solid recall at coverage 0.
  EXPECT_GT(rows[0].scores.recall, 0.6);
}

}  // namespace
}  // namespace midas
