// Integration tests on the paper's §IV-D synthetic single-source workload:
// MIDAS should recover (nearly) all m optimal slices; Greedy at most one;
// the generator itself must respect its contract.

#include <gtest/gtest.h>

#include <unordered_set>

#include "midas/baselines/agg_cluster.h"
#include "midas/baselines/greedy.h"
#include "midas/core/midas_alg.h"
#include "midas/eval/metrics.h"
#include "midas/synth/single_source.h"

namespace midas {
namespace {

core::SourceInput MakeInput(const synth::SingleSourceData& data) {
  core::SourceInput input;
  input.url = data.url;
  input.facts = &data.facts;
  return input;
}

TEST(SyntheticGeneratorTest, RespectsParameters) {
  synth::SingleSourceParams params;
  params.num_facts = 5000;
  params.num_slices = 20;
  params.num_optimal = 10;
  params.seed = 1;
  auto data = synth::GenerateSingleSource(params);

  EXPECT_EQ(data.optimal.size(), 10u);
  // ~b * (n/100) * 5 conditions ≈ n facts (±5%).
  EXPECT_NEAR(static_cast<double>(data.facts.size()), 5000.0, 250.0);
  // Non-optimal slices are mostly in the KB: 10 slices * 250 facts * 0.98.
  EXPECT_GT(data.kb->size(), 2000u);
  // Optimal slices' facts are new.
  for (const auto& gt : data.optimal.slices) {
    for (const auto& t : gt.facts) {
      EXPECT_FALSE(data.kb->Contains(t));
    }
    EXPECT_EQ(gt.rule.size(), 5u);
    EXPECT_EQ(gt.entities.size(), 50u);  // n * 1%
  }
}

TEST(SyntheticGeneratorTest, DeterministicInSeed) {
  synth::SingleSourceParams params;
  params.num_facts = 1000;
  params.seed = 99;
  auto a = synth::GenerateSingleSource(params);
  auto b = synth::GenerateSingleSource(params);
  ASSERT_EQ(a.facts.size(), b.facts.size());
  for (size_t i = 0; i < a.facts.size(); ++i) {
    EXPECT_EQ(a.dict->Term(a.facts[i].subject),
              b.dict->Term(b.facts[i].subject));
    EXPECT_EQ(a.dict->Term(a.facts[i].object),
              b.dict->Term(b.facts[i].object));
  }
}

TEST(SyntheticSingleSourceTest, MidasRecoversAllOptimalSlices) {
  synth::SingleSourceParams params;
  params.num_facts = 5000;
  params.num_slices = 20;
  params.num_optimal = 10;
  params.seed = 7;
  auto data = synth::GenerateSingleSource(params);

  core::MidasAlg alg;
  auto slices = alg.Detect(MakeInput(data), *data.kb);
  auto scores = eval::ScoreAgainstSilver(slices, data.optimal);

  EXPECT_GE(scores.f_measure, 0.9) << "returned=" << scores.returned
                                   << " matched=" << scores.matched;
}

TEST(SyntheticSingleSourceTest, GreedyFindsAtMostOneSlice) {
  synth::SingleSourceParams params;
  params.num_facts = 5000;
  params.num_slices = 20;
  params.num_optimal = 10;
  params.seed = 7;
  auto data = synth::GenerateSingleSource(params);

  baselines::GreedyDetector greedy;
  auto slices = greedy.Detect(MakeInput(data), *data.kb);
  ASSERT_LE(slices.size(), 1u);

  auto scores = eval::ScoreAgainstSilver(slices, data.optimal);
  // Recall is bounded by 1/m by construction.
  EXPECT_LE(scores.recall, 0.1 + 1e-9);
}

TEST(SyntheticSingleSourceTest, GreedyOptimalWhenSingleSlice) {
  // Paper: "GREEDY is able to find the optimal slice when there is only
  // one."
  synth::SingleSourceParams params;
  params.num_facts = 3000;
  params.num_slices = 20;
  params.num_optimal = 1;
  params.seed = 3;
  auto data = synth::GenerateSingleSource(params);

  baselines::GreedyDetector greedy;
  auto slices = greedy.Detect(MakeInput(data), *data.kb);
  auto scores = eval::ScoreAgainstSilver(slices, data.optimal);
  EXPECT_EQ(scores.matched, 1u);
}

TEST(SyntheticSingleSourceTest, AggClusterFindsSlicesOnSmallInput) {
  synth::SingleSourceParams params;
  params.num_facts = 1500;
  params.num_slices = 10;
  params.num_optimal = 5;
  params.seed = 5;
  auto data = synth::GenerateSingleSource(params);

  baselines::AggClusterDetector agg;
  auto slices = agg.Detect(MakeInput(data), *data.kb);
  auto scores = eval::ScoreAgainstSilver(slices, data.optimal);
  EXPECT_GE(scores.recall, 0.6);
}

}  // namespace
}  // namespace midas
