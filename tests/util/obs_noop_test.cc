// Pins the MIDAS_OBS_NOOP contract. This translation unit is compiled with
// -DMIDAS_OBS_NOOP (set on the test target only — see tests/CMakeLists.txt)
// regardless of how the library was built, so every MIDAS_OBS_* macro here
// must expand to nothing: no allocations, no registry entries, no symbols
// referenced. Allocations are counted by instrumenting this binary's global
// operator new, exactly like profit_alloc_test.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "midas/obs/obs.h"

namespace {

std::atomic<bool> g_counting{false};
std::atomic<size_t> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace midas {
namespace obs {
namespace {

#ifndef MIDAS_OBS_NOOP
#error "obs_noop_test must be compiled with -DMIDAS_OBS_NOOP"
#endif

class AllocationGuard {
 public:
  AllocationGuard() {
    g_allocations.store(0, std::memory_order_relaxed);
    g_counting.store(true, std::memory_order_relaxed);
  }
  ~AllocationGuard() { g_counting.store(false, std::memory_order_relaxed); }

  size_t count() const {
    return g_allocations.load(std::memory_order_relaxed);
  }
};

TEST(ObsNoopTest, RegistrationMacrosYieldNull) {
  Counter* c = MIDAS_OBS_COUNTER("noop.counter");
  Gauge* g = MIDAS_OBS_GAUGE("noop.gauge");
  Histogram* h = MIDAS_OBS_HISTOGRAM("noop.hist");
  EXPECT_EQ(c, nullptr);
  EXPECT_EQ(g, nullptr);
  EXPECT_EQ(h, nullptr);
  // Nothing was interned into the (still functional) registry.
  EXPECT_EQ(Registry::Global().FindCounter("noop.counter"), nullptr);
  EXPECT_EQ(Registry::Global().FindGauge("noop.gauge"), nullptr);
  EXPECT_EQ(Registry::Global().FindHistogram("noop.hist"), nullptr);
}

TEST(ObsNoopTest, InstrumentationIsAllocationFree) {
  // The mutation macros below discard their arguments at preprocessing,
  // so these handles are "unused" in this (always-noop) translation unit.
  [[maybe_unused]] Counter* c = MIDAS_OBS_COUNTER("noop.alloc.counter");
  [[maybe_unused]] Gauge* g = MIDAS_OBS_GAUGE("noop.alloc.gauge");
  [[maybe_unused]] Histogram* h = MIDAS_OBS_HISTOGRAM("noop.alloc.hist");

  size_t allocations;
  uint64_t now_sum = 0;
  {
    AllocationGuard guard;
    for (int i = 0; i < 10000; ++i) {
      MIDAS_OBS_ADD(c, 1);
      MIDAS_OBS_GAUGE_SET(g, i);
      MIDAS_OBS_GAUGE_ADD(g, 1);
      MIDAS_OBS_GAUGE_MAX(g, i);
      MIDAS_OBS_RECORD(h, static_cast<uint64_t>(i));
      MIDAS_OBS_SPAN(span, "noop.span", "detail string that would allocate");
      now_sum += MIDAS_OBS_NOW_NS();
    }
    allocations = guard.count();
  }
  EXPECT_EQ(allocations, 0u);
  EXPECT_EQ(now_sum, 0u);  // the noop clock is a constant 0
}

TEST(ObsNoopTest, SpanMacroRecordsNothing) {
  Tracer& tracer = Tracer::Global();
  tracer.Reset();
  const int64_t open_before = tracer.open_spans();
  {
    MIDAS_OBS_SPAN(span, "noop.span.recorded");
  }
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.open_spans(), open_before);
}

}  // namespace
}  // namespace obs
}  // namespace midas
