#include "midas/util/flags.h"

#include <gtest/gtest.h>

namespace midas {
namespace {

// Helper: builds argv from a list of literals.
Status ParseArgs(FlagParser* parser, std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return parser->Parse(static_cast<int>(args.size()),
                       const_cast<char**>(args.data()));
}

class FlagsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    parser_.AddInt64("n", 10, "count");
    parser_.AddDouble("ratio", 0.5, "ratio");
    parser_.AddBool("verbose", false, "verbosity");
    parser_.AddString("name", "default", "a name");
  }
  FlagParser parser_;
};

TEST_F(FlagsTest, DefaultsApply) {
  ASSERT_TRUE(ParseArgs(&parser_, {}).ok());
  EXPECT_EQ(parser_.GetInt64("n"), 10);
  EXPECT_DOUBLE_EQ(parser_.GetDouble("ratio"), 0.5);
  EXPECT_FALSE(parser_.GetBool("verbose"));
  EXPECT_EQ(parser_.GetString("name"), "default");
}

TEST_F(FlagsTest, EqualsForm) {
  ASSERT_TRUE(ParseArgs(&parser_, {"--n=42", "--ratio=0.25",
                                   "--verbose=true", "--name=midas"})
                  .ok());
  EXPECT_EQ(parser_.GetInt64("n"), 42);
  EXPECT_DOUBLE_EQ(parser_.GetDouble("ratio"), 0.25);
  EXPECT_TRUE(parser_.GetBool("verbose"));
  EXPECT_EQ(parser_.GetString("name"), "midas");
}

TEST_F(FlagsTest, SpaceForm) {
  ASSERT_TRUE(ParseArgs(&parser_, {"--n", "7", "--name", "x"}).ok());
  EXPECT_EQ(parser_.GetInt64("n"), 7);
  EXPECT_EQ(parser_.GetString("name"), "x");
}

TEST_F(FlagsTest, BareBoolIsTrue) {
  ASSERT_TRUE(ParseArgs(&parser_, {"--verbose"}).ok());
  EXPECT_TRUE(parser_.GetBool("verbose"));
}

TEST_F(FlagsTest, NegativeNumbers) {
  ASSERT_TRUE(ParseArgs(&parser_, {"--n=-5", "--ratio=-1.5"}).ok());
  EXPECT_EQ(parser_.GetInt64("n"), -5);
  EXPECT_DOUBLE_EQ(parser_.GetDouble("ratio"), -1.5);
}

TEST_F(FlagsTest, UnknownFlagFails) {
  Status s = ParseArgs(&parser_, {"--bogus=1"});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST_F(FlagsTest, BadValueFails) {
  EXPECT_FALSE(ParseArgs(&parser_, {"--n=abc"}).ok());
  EXPECT_FALSE(ParseArgs(&parser_, {"--ratio=zz"}).ok());
  EXPECT_FALSE(ParseArgs(&parser_, {"--verbose=maybe"}).ok());
}

TEST_F(FlagsTest, MissingValueFails) {
  EXPECT_FALSE(ParseArgs(&parser_, {"--n"}).ok());
}

TEST_F(FlagsTest, PositionalArgsCollected) {
  ASSERT_TRUE(ParseArgs(&parser_, {"pos1", "--n=1", "pos2"}).ok());
  ASSERT_EQ(parser_.positional().size(), 2u);
  EXPECT_EQ(parser_.positional()[0], "pos1");
  EXPECT_EQ(parser_.positional()[1], "pos2");
}

TEST_F(FlagsTest, UsageListsFlags) {
  std::string usage = parser_.Usage("prog");
  EXPECT_NE(usage.find("--n"), std::string::npos);
  EXPECT_NE(usage.find("--verbose"), std::string::npos);
  EXPECT_NE(usage.find("count"), std::string::npos);
}

}  // namespace
}  // namespace midas
