// Pins the cancellable ParallelFor contract: a null predicate behaves like
// the plain overload, a never-true predicate runs everything, a pre-set
// predicate runs nothing, and a predicate that flips mid-run stops further
// chunk claims while letting already-claimed indices finish (the return
// value counts exactly the indices that ran).

#include "midas/util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace midas {
namespace {

TEST(ThreadPoolCancelTest, NullPredicateRunsEverything) {
  ThreadPool pool(4);
  std::atomic<size_t> executed{0};
  size_t ran = pool.ParallelFor(
      1000, [&](size_t) { executed.fetch_add(1); }, nullptr);
  EXPECT_EQ(ran, 1000u);
  EXPECT_EQ(executed.load(), 1000u);
}

TEST(ThreadPoolCancelTest, NeverTruePredicateMatchesPlainOverload) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  size_t ran = pool.ParallelFor(
      hits.size(), [&](size_t i) { hits[i].fetch_add(1); },
      [] { return false; });
  EXPECT_EQ(ran, hits.size());
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolCancelTest, PreCancelledRunsNothing) {
  ThreadPool pool(4);
  std::atomic<size_t> executed{0};
  size_t ran = pool.ParallelFor(
      1000, [&](size_t) { executed.fetch_add(1); }, [] { return true; });
  EXPECT_EQ(ran, 0u);
  EXPECT_EQ(executed.load(), 0u);
}

TEST(ThreadPoolCancelTest, MidRunCancelSkipsUnclaimedChunks) {
  // One worker makes the chunk walk serial: chunk = max(1, 400/4) = 100,
  // the predicate flips after the first chunk completes, so exactly one
  // chunk runs and three are skipped.
  ThreadPool pool(1);
  std::atomic<size_t> executed{0};
  size_t ran = pool.ParallelFor(
      400, [&](size_t) { executed.fetch_add(1); },
      [&] { return executed.load() >= 100; });
  EXPECT_EQ(ran, 100u);
  EXPECT_EQ(executed.load(), 100u);
}

TEST(ThreadPoolCancelTest, ReturnCountMatchesExecutedUnderContention) {
  // Multi-threaded flavor: the exact count depends on the schedule, but the
  // return value must equal the number of fn() invocations, and cancelling
  // early must skip at least the tail chunks.
  ThreadPool pool(4);
  std::atomic<size_t> executed{0};
  size_t ran = pool.ParallelFor(
      100000, [&](size_t) { executed.fetch_add(1); },
      [&] { return executed.load() >= 1; });
  EXPECT_EQ(ran, executed.load());
  EXPECT_LT(ran, 100000u);
}

TEST(ThreadPoolCancelTest, ZeroIterationsReturnsZero) {
  ThreadPool pool(2);
  size_t ran = pool.ParallelFor(0, [](size_t) {}, [] { return false; });
  EXPECT_EQ(ran, 0u);
}

}  // namespace
}  // namespace midas
