#include "midas/util/tsv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace midas {
namespace {

TEST(TsvEscapeTest, RoundTrip) {
  const std::string nasty = "a\tb\nc\rd\\e plain";
  std::string escaped = TsvEscape(nasty);
  EXPECT_EQ(escaped.find('\t'), std::string::npos);
  EXPECT_EQ(escaped.find('\n'), std::string::npos);
  EXPECT_EQ(TsvUnescape(escaped), nasty);
}

TEST(TsvEscapeTest, PlainStringsUntouched) {
  EXPECT_EQ(TsvEscape("hello world"), "hello world");
  EXPECT_EQ(TsvUnescape("hello world"), "hello world");
}

TEST(TsvEscapeTest, UnknownEscapePreserved) {
  EXPECT_EQ(TsvUnescape("a\\qb"), "a\\qb");
  // Trailing lone backslash preserved.
  EXPECT_EQ(TsvUnescape("a\\"), "a\\");
}

TEST(TsvRowTest, FormatAndParse) {
  std::vector<std::string> fields = {"url", "a\tb", "c"};
  std::string row = TsvFormatRow(fields);
  EXPECT_EQ(row.back(), '\n');
  auto parsed = TsvParseRow(std::string_view(row).substr(0, row.size() - 1));
  EXPECT_EQ(parsed, fields);
}

class TsvFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/midas_tsv_test.tsv";
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(TsvFileTest, WriteThenRead) {
  std::vector<std::vector<std::string>> rows = {
      {"a", "b", "c"}, {"d", "e\tf", "g"}};
  ASSERT_TRUE(TsvWriteFile(path_, rows).ok());

  std::vector<std::vector<std::string>> read;
  Status s = TsvReadFile(path_, [&](size_t, const std::vector<std::string>& f) {
    read.push_back(f);
    return Status::OK();
  });
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(read, rows);
}

TEST_F(TsvFileTest, SkipsCommentsAndBlankLines) {
  {
    std::ofstream out(path_);
    out << "# comment\n\nreal\trow\n";
  }
  size_t rows = 0;
  ASSERT_TRUE(TsvReadFile(path_, [&](size_t row,
                                     const std::vector<std::string>& f) {
                EXPECT_EQ(row, rows);
                EXPECT_EQ(f.size(), 2u);
                ++rows;
                return Status::OK();
              }).ok());
  EXPECT_EQ(rows, 1u);
}

TEST_F(TsvFileTest, CallbackErrorPropagates) {
  ASSERT_TRUE(TsvWriteFile(path_, {{"x"}, {"y"}}).ok());
  Status s = TsvReadFile(path_, [](size_t, const std::vector<std::string>&) {
    return Status::Corruption("stop");
  });
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
}

TEST_F(TsvFileTest, MissingFileIsIoError) {
  Status s = TsvReadFile("/nonexistent/really/not/here.tsv",
                         [](size_t, const std::vector<std::string>&) {
                           return Status::OK();
                         });
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

TEST_F(TsvFileTest, HandlesCrLf) {
  {
    std::ofstream out(path_);
    out << "a\tb\r\nc\td\r\n";
  }
  std::vector<std::vector<std::string>> read;
  ASSERT_TRUE(TsvReadFile(path_, [&](size_t, const std::vector<std::string>& f) {
                read.push_back(f);
                return Status::OK();
              }).ok());
  ASSERT_EQ(read.size(), 2u);
  EXPECT_EQ(read[0][1], "b");  // no trailing \r
}

}  // namespace
}  // namespace midas
