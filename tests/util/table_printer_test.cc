#include "midas/util/table_printer.h"

#include <gtest/gtest.h>

namespace midas {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"method", "precision"});
  t.AddRow({"MIDAS", "0.9"});
  t.AddRow({"AggCluster", "0.5"});
  std::string out = t.ToString();
  EXPECT_NE(out.find("| method     |"), std::string::npos);
  EXPECT_NE(out.find("| MIDAS      |"), std::string::npos);
  EXPECT_NE(out.find("| AggCluster |"), std::string::npos);
}

TEST(TablePrinterTest, ShortRowsPadded) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"1"});
  std::string out = t.ToString();
  // Row renders with empty cells, no crash, 4 rules (top, header, bottom).
  EXPECT_NE(out.find("| 1 |"), std::string::npos);
}

TEST(TablePrinterTest, ExtraCellsDropped) {
  TablePrinter t({"a"});
  t.AddRow({"1", "overflow"});
  std::string out = t.ToString();
  EXPECT_EQ(out.find("overflow"), std::string::npos);
}

TEST(TablePrinterTest, SeparatorRendersRule) {
  TablePrinter t({"x"});
  t.AddRow({"1"});
  t.AddSeparator();
  t.AddRow({"2"});
  std::string out = t.ToString();
  // top + header-rule + separator + bottom = 4 rules
  size_t rules = 0, pos = 0;
  while ((pos = out.find("+--", pos)) != std::string::npos) {
    ++rules;
    pos += 3;
  }
  EXPECT_EQ(rules, 4u);
  EXPECT_EQ(t.num_rows(), 3u);
}

TEST(TablePrinterTest, WideCellExpandsColumn) {
  TablePrinter t({"h"});
  t.AddRow({"very-long-content"});
  std::string out = t.ToString();
  EXPECT_NE(out.find("| very-long-content |"), std::string::npos);
  EXPECT_NE(out.find("| h                 |"), std::string::npos);
}

}  // namespace
}  // namespace midas
