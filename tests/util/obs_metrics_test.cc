// Unit tests of the midas::obs metrics layer: counters, gauges,
// log2-bucketed histograms with quantiles, the global registry, and the
// JSON/table exporters. These drive the classes directly (not the
// MIDAS_OBS_* macros), so they hold in instrumented and noop builds alike.

#include "midas/obs/metrics.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>
#include <vector>

#include "midas/obs/export.h"
#include "midas/obs/trace.h"

namespace midas {
namespace obs {
namespace {

TEST(CounterTest, AddValueReset) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(CounterTest, ConcurrentAddsSumExactly) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c.Add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
}

TEST(GaugeTest, SetAddMax) {
  Gauge g;
  g.Set(5);
  EXPECT_EQ(g.Value(), 5);
  g.Add(-7);
  EXPECT_EQ(g.Value(), -2);
  g.SetMax(10);
  EXPECT_EQ(g.Value(), 10);
  g.SetMax(3);  // lower: no effect
  EXPECT_EQ(g.Value(), 10);
}

TEST(HistogramTest, BucketBoundaries) {
  EXPECT_EQ(Histogram::BucketOf(0), 0u);
  EXPECT_EQ(Histogram::BucketOf(1), 1u);
  EXPECT_EQ(Histogram::BucketOf(2), 2u);
  EXPECT_EQ(Histogram::BucketOf(3), 2u);
  EXPECT_EQ(Histogram::BucketOf(4), 3u);
  EXPECT_EQ(Histogram::BucketOf(~uint64_t{0}), 64u);
  EXPECT_EQ(Histogram::BucketLower(0), 0u);
  EXPECT_EQ(Histogram::BucketLower(1), 1u);
  EXPECT_EQ(Histogram::BucketLower(4), 8u);
}

TEST(HistogramTest, SnapshotAggregates) {
  Histogram h;
  for (uint64_t v : {0u, 1u, 2u, 3u, 100u, 1000u}) h.Record(v);
  auto snap = h.Snapshot();
  EXPECT_EQ(snap.count, 6u);
  EXPECT_EQ(snap.sum, 1106u);
  EXPECT_EQ(snap.min, 0u);
  // min/max are reconstructed at bucket resolution: 1000 lands in
  // [512, 1023], so the reported max is that bucket's upper bound.
  EXPECT_EQ(snap.max, 1023u);
  EXPECT_EQ(snap.buckets[0], 1u);  // {0}
  EXPECT_EQ(snap.buckets[1], 1u);  // {1}
  EXPECT_EQ(snap.buckets[2], 2u);  // {2,3}
  EXPECT_DOUBLE_EQ(snap.Mean(), 1106.0 / 6.0);
}

TEST(HistogramTest, QuantilesAreOrderedAndBounded) {
  Histogram h;
  for (uint64_t i = 0; i < 1000; ++i) h.Record(i);
  auto snap = h.Snapshot();
  double p50 = snap.Quantile(0.50);
  double p95 = snap.Quantile(0.95);
  double p99 = snap.Quantile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, static_cast<double>(snap.max));
  // Log2 interpolation is at worst 2x off within a bucket.
  EXPECT_GE(p50, 250.0);
  EXPECT_LE(p50, 1000.0);
}

TEST(HistogramTest, ConcurrentRecordsCountExactly) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<uint64_t>(t) * 100 + (i % 7));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.Count(), kThreads * kPerThread);
  EXPECT_EQ(h.Snapshot().count, kThreads * kPerThread);
}

TEST(RegistryTest, GetInternsAndFindLooksUp) {
  Registry& reg = Registry::Global();
  Counter* c = reg.GetCounter("test.registry.counter");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(reg.GetCounter("test.registry.counter"), c);  // same instance
  EXPECT_EQ(reg.FindCounter("test.registry.counter"), c);
  EXPECT_EQ(reg.FindCounter("test.registry.never_registered"), nullptr);

  c->Add(3);
  uint64_t seen = 0;
  reg.VisitCounters([&](const std::string& name, uint64_t value) {
    if (name == "test.registry.counter") seen = value;
  });
  EXPECT_EQ(seen, 3u);

  reg.ResetAllForTest();
  EXPECT_EQ(c->Value(), 0u);  // reset in place, pointer still valid
}

TEST(ExportTest, JsonDocumentShape) {
  Registry& reg = Registry::Global();
  reg.ResetAllForTest();
  Tracer::Global().Reset();
  reg.GetCounter("test.export.counter")->Add(7);
  reg.GetGauge("test.export.gauge")->Set(-4);
  Histogram* h = reg.GetHistogram("test.export.hist_us");
  for (uint64_t i = 1; i <= 100; ++i) h->Record(i);

  JsonValue doc = MetricsToJson();
  const std::string dump = doc.Dump(0);
  // google-benchmark-shaped rows for every histogram plus the raw sections.
  EXPECT_NE(dump.find("\"benchmarks\""), std::string::npos);
  EXPECT_NE(dump.find("\"test.export.hist_us\""), std::string::npos);
  EXPECT_NE(dump.find("\"p95\""), std::string::npos);
  EXPECT_NE(dump.find("\"test.export.counter\""), std::string::npos);
  EXPECT_NE(dump.find("\"test.export.gauge\""), std::string::npos);
  EXPECT_NE(dump.find("\"spans_dropped\""), std::string::npos);

  const std::string summary = MetricsSummary();
  EXPECT_NE(summary.find("test.export.counter"), std::string::npos);
  EXPECT_NE(summary.find("test.export.hist_us"), std::string::npos);
}

TEST(TracerTest, ScopedSpanClosesOnceIncludingOnThrow) {
  Tracer& tracer = Tracer::Global();
  tracer.Reset();
  const int64_t open_before = tracer.open_spans();
  {
    ScopedSpan outer("test.span.outer", "detail");
    ScopedSpan inner("test.span.inner");
    EXPECT_EQ(tracer.open_spans(), open_before + 2);
  }
  try {
    ScopedSpan span("test.span.throwing");
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(tracer.open_spans(), open_before);

  auto spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 3u);
  // Close order: inner before outer; nesting depth recorded.
  EXPECT_EQ(spans[0].name, "test.span.inner");
  EXPECT_EQ(spans[0].depth, 1u);
  EXPECT_EQ(spans[1].name, "test.span.outer");
  EXPECT_EQ(spans[1].detail, "detail");
  EXPECT_EQ(spans[1].depth, 0u);
  EXPECT_EQ(spans[2].name, "test.span.throwing");
}

TEST(TracerTest, CapacityBoundsBufferAndCountsDrops) {
  Tracer& tracer = Tracer::Global();
  tracer.Reset();
  tracer.SetCapacity(4);
  for (int i = 0; i < 10; ++i) {
    ScopedSpan span("test.span.capped");
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
  tracer.SetCapacity(Tracer::kDefaultCapacity);
  tracer.Reset();
}

}  // namespace
}  // namespace obs
}  // namespace midas
