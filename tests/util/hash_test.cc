#include "midas/util/hash.h"

#include <gtest/gtest.h>

#include <set>

namespace midas {
namespace {

TEST(HashTest, Fnv1a64KnownVectors) {
  // Standard FNV-1a test vectors.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(Fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(HashTest, Fnv1a64StableAcrossOverloads) {
  const char bytes[] = {'a', 'b', 'c'};
  EXPECT_EQ(Fnv1a64(bytes, 3), Fnv1a64(std::string_view("abc")));
}

TEST(HashTest, HashCombineOrderMatters) {
  uint64_t ab = HashCombine(HashMix(1), HashMix(2));
  uint64_t ba = HashCombine(HashMix(2), HashMix(1));
  EXPECT_NE(ab, ba);
}

TEST(HashTest, HashMixSpreadsSequentialIds) {
  std::set<uint64_t> buckets;
  for (uint64_t i = 0; i < 1000; ++i) {
    buckets.insert(HashMix(i) % 4096);
  }
  // Sequential ids should land in many distinct buckets.
  EXPECT_GT(buckets.size(), 850u);
}

TEST(HashTest, HashMixDeterministic) {
  EXPECT_EQ(HashMix(42), HashMix(42));
  EXPECT_NE(HashMix(42), HashMix(43));
}

}  // namespace
}  // namespace midas
