// Verifies the ThreadPool's observability wiring under contention: the
// submitted/completed counters and both latency histograms account for
// every task exactly once, and the thread/queue gauges return to their
// resting state once the pool drains and shuts down.

#include "midas/util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "midas/obs/metrics.h"

namespace midas {
namespace {

class ThreadPoolMetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
#ifdef MIDAS_OBS_NOOP
    GTEST_SKIP() << "instrumentation compiled out";
#endif
    obs::Registry::Global().ResetAllForTest();
  }
};

TEST_F(ThreadPoolMetricsTest, HistogramCountsSumToTaskCountUnderContention) {
  constexpr size_t kTasks = 300;
  std::atomic<size_t> ran{0};
  {
    ThreadPool pool(4);
    for (size_t i = 0; i < kTasks; ++i) {
      pool.Submit([&ran] {
        // A little spin so tasks overlap and queue depth builds up.
        volatile uint64_t x = 0;
        for (int k = 0; k < 500; ++k) x = x + static_cast<uint64_t>(k);
        ran.fetch_add(1, std::memory_order_relaxed);
      });
    }
    pool.Wait();
  }
  EXPECT_EQ(ran.load(), kTasks);

  obs::Registry& reg = obs::Registry::Global();
  const obs::Counter* submitted =
      reg.FindCounter("threadpool.tasks_submitted");
  const obs::Counter* completed =
      reg.FindCounter("threadpool.tasks_completed");
  const obs::Histogram* wait_us = reg.FindHistogram("threadpool.task_wait_us");
  const obs::Histogram* run_us = reg.FindHistogram("threadpool.task_run_us");
  ASSERT_NE(submitted, nullptr);
  ASSERT_NE(completed, nullptr);
  ASSERT_NE(wait_us, nullptr);
  ASSERT_NE(run_us, nullptr);

  EXPECT_EQ(submitted->Value(), kTasks);
  EXPECT_EQ(completed->Value(), kTasks);
  // Every task passes through both histograms exactly once.
  EXPECT_EQ(wait_us->Count(), kTasks);
  EXPECT_EQ(run_us->Count(), kTasks);
  // Bucket totals agree with the sample count (nothing lost to sharding).
  uint64_t bucket_total = 0;
  for (uint64_t b : run_us->Snapshot().buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, kTasks);
}

TEST_F(ThreadPoolMetricsTest, GaugesTrackLifecycle) {
  obs::Registry& reg = obs::Registry::Global();
  {
    ThreadPool pool(3);
    const obs::Gauge* threads = reg.FindGauge("threadpool.threads");
    ASSERT_NE(threads, nullptr);
    EXPECT_EQ(threads->Value(), 3);
    for (size_t i = 0; i < 50; ++i) {
      pool.Submit([] {});
    }
    pool.Wait();
  }
  EXPECT_EQ(reg.FindGauge("threadpool.threads")->Value(), 0);
  // 50 single-producer submissions: some depth was observed, and the
  // drained queue reads 0.
  EXPECT_GE(reg.FindGauge("threadpool.queue_depth_max")->Value(), 1);
  EXPECT_EQ(reg.FindGauge("threadpool.queue_depth")->Value(), 0);
}

TEST_F(ThreadPoolMetricsTest, BusyTimeAccumulates) {
  {
    ThreadPool pool(2);
    for (size_t i = 0; i < 20; ++i) {
      pool.Submit([] {
        volatile uint64_t x = 0;
        for (int k = 0; k < 20000; ++k) x = x + static_cast<uint64_t>(k);
      });
    }
    pool.Wait();
  }
  const obs::Counter* busy =
      obs::Registry::Global().FindCounter("threadpool.busy_ns");
  ASSERT_NE(busy, nullptr);
  EXPECT_GT(busy->Value(), 0u);
}

}  // namespace
}  // namespace midas
