#include "midas/util/string_util.h"

#include <gtest/gtest.h>

namespace midas {
namespace {

TEST(SplitTest, BasicAndEmptyFields) {
  auto parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");

  parts = Split("a,,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");

  parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");

  parts = Split(",", ',');
  EXPECT_EQ(parts.size(), 2u);
}

TEST(SplitTest, SkipEmpty) {
  auto parts = SplitSkipEmpty("/a//b/", '/');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_TRUE(SplitSkipEmpty("///", '/').empty());
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join(std::vector<std::string>{"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join(std::vector<std::string>{}, ","), "");
  EXPECT_EQ(Join(std::vector<std::string>{"only"}, ","), "only");
}

TEST(TrimTest, RemovesWhitespace) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("\t\na b\r\n"), "a b");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("no-trim"), "no-trim");
}

TEST(CaseTest, ToLower) {
  EXPECT_EQ(ToLower("HeLLo-123"), "hello-123");
  EXPECT_EQ(ToLower(""), "");
}

TEST(AffixTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("http://x", "http://"));
  EXPECT_FALSE(StartsWith("http", "http://"));
  EXPECT_TRUE(EndsWith("page.htm", ".htm"));
  EXPECT_FALSE(EndsWith("htm", ".htm"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(ParseTest, Uint64) {
  uint64_t v = 0;
  EXPECT_TRUE(ParseUint64("0", &v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(ParseUint64("18446744073709551615", &v));
  EXPECT_EQ(v, UINT64_MAX);
  EXPECT_FALSE(ParseUint64("18446744073709551616", &v));  // overflow
  EXPECT_FALSE(ParseUint64("", &v));
  EXPECT_FALSE(ParseUint64("12a", &v));
  EXPECT_FALSE(ParseUint64("-1", &v));
}

TEST(ParseTest, Double) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("3.5", &v));
  EXPECT_DOUBLE_EQ(v, 3.5);
  EXPECT_TRUE(ParseDouble("-1e3", &v));
  EXPECT_DOUBLE_EQ(v, -1000.0);
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("1.5x", &v));
}

TEST(FormatTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 3), "1.000");
}

TEST(FormatTest, FormatCount) {
  EXPECT_EQ(FormatCount(0), "0");
  EXPECT_EQ(FormatCount(999), "999");
  EXPECT_EQ(FormatCount(1000), "1,000");
  EXPECT_EQ(FormatCount(1234567), "1,234,567");
  EXPECT_EQ(FormatCount(810000000), "810,000,000");
}

TEST(FormatTest, StringPrintf) {
  EXPECT_EQ(StringPrintf("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StringPrintf("%s", ""), "");
  // Long output beyond any small-buffer optimization.
  std::string long_out = StringPrintf("%0512d", 7);
  EXPECT_EQ(long_out.size(), 512u);
}

}  // namespace
}  // namespace midas
