#include "midas/util/json.h"

#include <gtest/gtest.h>

namespace midas {
namespace {

TEST(JsonTest, Scalars) {
  EXPECT_EQ(JsonValue::Null().Dump(), "null");
  EXPECT_EQ(JsonValue::Bool(true).Dump(), "true");
  EXPECT_EQ(JsonValue::Bool(false).Dump(), "false");
  EXPECT_EQ(JsonValue::Int(-42).Dump(), "-42");
  EXPECT_EQ(JsonValue::Number(0.5).Dump(), "0.5");
  EXPECT_EQ(JsonValue::Str("hi").Dump(), "\"hi\"");
}

TEST(JsonTest, NumberEdgeCases) {
  EXPECT_EQ(JsonValue::Number(1e300).Dump(), "1e+300");
  // Inf/NaN have no JSON representation.
  EXPECT_EQ(JsonValue::Number(1.0 / 0.0).Dump(), "null");
  EXPECT_EQ(JsonValue::Number(0.0 / 0.0).Dump(), "null");
  EXPECT_EQ(JsonValue::Int(INT64_MIN).Dump(),
            std::to_string(INT64_MIN));
}

TEST(JsonTest, StringEscaping) {
  EXPECT_EQ(JsonValue::Str("a\"b\\c\nd\te").Dump(),
            "\"a\\\"b\\\\c\\nd\\te\"");
  EXPECT_EQ(JsonValue::Str(std::string_view("\x01", 1)).Dump(),
            "\"\\u0001\"");
}

TEST(JsonTest, CompactContainers) {
  JsonValue obj = JsonValue::Object();
  obj.Set("name", JsonValue::Str("MIDAS"));
  obj.Set("count", JsonValue::Int(3));
  JsonValue arr = JsonValue::Array();
  arr.Append(JsonValue::Int(1));
  arr.Append(JsonValue::Int(2));
  obj.Set("items", std::move(arr));
  EXPECT_EQ(obj.Dump(),
            "{\"name\":\"MIDAS\",\"count\":3,\"items\":[1,2]}");
  EXPECT_EQ(obj.size(), 3u);
}

TEST(JsonTest, EmptyContainers) {
  EXPECT_EQ(JsonValue::Array().Dump(), "[]");
  EXPECT_EQ(JsonValue::Object().Dump(2), "{}");
}

TEST(JsonTest, SetReplacesExistingKey) {
  JsonValue obj = JsonValue::Object();
  obj.Set("k", JsonValue::Int(1));
  obj.Set("k", JsonValue::Int(2));
  EXPECT_EQ(obj.Dump(), "{\"k\":2}");
  EXPECT_EQ(obj.size(), 1u);
}

TEST(JsonTest, IndentedOutput) {
  JsonValue obj = JsonValue::Object();
  JsonValue arr = JsonValue::Array();
  arr.Append(JsonValue::Int(1));
  obj.Set("a", std::move(arr));
  EXPECT_EQ(obj.Dump(2), "{\n  \"a\": [\n    1\n  ]\n}");
}

TEST(JsonTest, KeysKeepInsertionOrder) {
  JsonValue obj = JsonValue::Object();
  obj.Set("z", JsonValue::Int(1));
  obj.Set("a", JsonValue::Int(2));
  EXPECT_EQ(obj.Dump(), "{\"z\":1,\"a\":2}");
}

JsonValue ParseOk(std::string_view text) {
  JsonValue out;
  Status status = JsonValue::Parse(text, &out);
  EXPECT_TRUE(status.ok()) << text << ": " << status.ToString();
  return out;
}

Status ParseErr(std::string_view text) {
  JsonValue out;
  Status status = JsonValue::Parse(text, &out);
  EXPECT_FALSE(status.ok()) << "accepted: " << text;
  return status;
}

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(ParseOk("null").IsNull());
  EXPECT_TRUE(ParseOk("true").AsBool());
  EXPECT_FALSE(ParseOk("false").AsBool(true));
  EXPECT_EQ(ParseOk("-42").AsInt(), -42);
  EXPECT_DOUBLE_EQ(ParseOk("0.5").AsDouble(), 0.5);
  EXPECT_EQ(ParseOk("\"hi\"").AsString(), "hi");
  EXPECT_EQ(ParseOk("  17  ").AsInt(), 17);
}

TEST(JsonParseTest, IntVersusNumber) {
  // No '.', exponent, or overflow => Int; otherwise Number.
  JsonValue v = ParseOk("9223372036854775807");
  EXPECT_EQ(v.AsInt(), INT64_MAX);
  EXPECT_EQ(v.Dump(), "9223372036854775807");
  EXPECT_EQ(ParseOk("-9223372036854775808").AsInt(), INT64_MIN);
  // One past int64 range falls back to double.
  EXPECT_DOUBLE_EQ(ParseOk("9223372036854775808").AsDouble(),
                   9223372036854775808.0);
  EXPECT_DOUBLE_EQ(ParseOk("1e3").AsDouble(), 1000.0);
  EXPECT_DOUBLE_EQ(ParseOk("-2.5E-1").AsDouble(), -0.25);
}

TEST(JsonParseTest, Containers) {
  JsonValue v = ParseOk("{\"a\":[1,2,{\"b\":null}],\"c\":\"d\"}");
  ASSERT_TRUE(v.IsObject());
  const JsonValue* a = v.Get("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->size(), 3u);
  EXPECT_EQ(a->at(0).AsInt(), 1);
  EXPECT_TRUE(a->at(2).Get("b")->IsNull());
  EXPECT_EQ(v.Get("c")->AsString(), "d");
  EXPECT_EQ(v.Get("missing"), nullptr);
  EXPECT_TRUE(ParseOk("[]").IsArray());
  EXPECT_EQ(ParseOk("{}").size(), 0u);
}

TEST(JsonParseTest, StringEscapes) {
  EXPECT_EQ(ParseOk("\"a\\\"b\\\\c\\nd\\te\\u0041\"").AsString(),
            "a\"b\\c\nd\teA");
  // 2- and 3-byte UTF-8 from \u escapes.
  EXPECT_EQ(ParseOk("\"\\u00e9\"").AsString(), "\xc3\xa9");
  EXPECT_EQ(ParseOk("\"\\u20ac\"").AsString(), "\xe2\x82\xac");
  // Surrogate pair -> U+1F600 (4-byte UTF-8).
  EXPECT_EQ(ParseOk("\"\\ud83d\\ude00\"").AsString(),
            "\xf0\x9f\x98\x80");
}

TEST(JsonParseTest, RoundTripsItsOwnDump) {
  JsonValue obj = JsonValue::Object();
  obj.Set("name", JsonValue::Str("MIDAS \"quoted\" \n"));
  obj.Set("count", JsonValue::Int(-3));
  obj.Set("ratio", JsonValue::Number(0.25));
  JsonValue arr = JsonValue::Array();
  arr.Append(JsonValue::Bool(true));
  arr.Append(JsonValue::Null());
  obj.Set("items", std::move(arr));
  const std::string compact = obj.Dump();
  EXPECT_EQ(ParseOk(compact).Dump(), compact);
  EXPECT_EQ(ParseOk(obj.Dump(2)).Dump(), compact);
}

TEST(JsonParseTest, RejectsMalformedInput) {
  ParseErr("");
  ParseErr("{");
  ParseErr("[1,]");
  ParseErr("{\"a\":1,}");
  ParseErr("{\"a\" 1}");
  ParseErr("nul");
  ParseErr("'single'");
  ParseErr("\"unterminated");
  ParseErr("\"bad escape \\x\"");
  ParseErr("\"half surrogate \\ud83d\"");
  ParseErr("01");      // leading zero
  ParseErr("1.");      // no fraction digits
  ParseErr("+1");      // no leading plus
  ParseErr("1 2");     // trailing garbage
  ParseErr("{}extra");
}

TEST(JsonParseTest, ErrorsCarryByteOffset) {
  const Status status = ParseErr("{\"a\": nope}");
  EXPECT_NE(status.message().find("byte"), std::string::npos)
      << status.ToString();
}

TEST(JsonParseTest, NestingDepthIsCapped) {
  // 128 levels parse; 200 must be rejected, not blow the stack.
  std::string ok(127, '[');
  ok += "1";
  ok.append(127, ']');
  ParseOk(ok);
  std::string deep(200, '[');
  deep += "1";
  deep.append(200, ']');
  ParseErr(deep);
}

TEST(JsonParseTest, TypedAccessorFallbacks) {
  JsonValue v = ParseOk("{\"s\":\"x\",\"n\":2.5}");
  EXPECT_EQ(v.Get("s")->AsInt(7), 7);
  EXPECT_EQ(v.Get("n")->AsInt(7), 2);  // numeric coercion truncates
  EXPECT_EQ(v.Get("s")->AsString("fallback"), "x");
  EXPECT_EQ(v.Get("n")->AsString("fallback"), "fallback");
  EXPECT_FALSE(v.Get("s")->AsBool(false));
}

}  // namespace
}  // namespace midas
