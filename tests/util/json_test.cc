#include "midas/util/json.h"

#include <gtest/gtest.h>

namespace midas {
namespace {

TEST(JsonTest, Scalars) {
  EXPECT_EQ(JsonValue::Null().Dump(), "null");
  EXPECT_EQ(JsonValue::Bool(true).Dump(), "true");
  EXPECT_EQ(JsonValue::Bool(false).Dump(), "false");
  EXPECT_EQ(JsonValue::Int(-42).Dump(), "-42");
  EXPECT_EQ(JsonValue::Number(0.5).Dump(), "0.5");
  EXPECT_EQ(JsonValue::Str("hi").Dump(), "\"hi\"");
}

TEST(JsonTest, NumberEdgeCases) {
  EXPECT_EQ(JsonValue::Number(1e300).Dump(), "1e+300");
  // Inf/NaN have no JSON representation.
  EXPECT_EQ(JsonValue::Number(1.0 / 0.0).Dump(), "null");
  EXPECT_EQ(JsonValue::Number(0.0 / 0.0).Dump(), "null");
  EXPECT_EQ(JsonValue::Int(INT64_MIN).Dump(),
            std::to_string(INT64_MIN));
}

TEST(JsonTest, StringEscaping) {
  EXPECT_EQ(JsonValue::Str("a\"b\\c\nd\te").Dump(),
            "\"a\\\"b\\\\c\\nd\\te\"");
  EXPECT_EQ(JsonValue::Str(std::string_view("\x01", 1)).Dump(),
            "\"\\u0001\"");
}

TEST(JsonTest, CompactContainers) {
  JsonValue obj = JsonValue::Object();
  obj.Set("name", JsonValue::Str("MIDAS"));
  obj.Set("count", JsonValue::Int(3));
  JsonValue arr = JsonValue::Array();
  arr.Append(JsonValue::Int(1));
  arr.Append(JsonValue::Int(2));
  obj.Set("items", std::move(arr));
  EXPECT_EQ(obj.Dump(),
            "{\"name\":\"MIDAS\",\"count\":3,\"items\":[1,2]}");
  EXPECT_EQ(obj.size(), 3u);
}

TEST(JsonTest, EmptyContainers) {
  EXPECT_EQ(JsonValue::Array().Dump(), "[]");
  EXPECT_EQ(JsonValue::Object().Dump(2), "{}");
}

TEST(JsonTest, SetReplacesExistingKey) {
  JsonValue obj = JsonValue::Object();
  obj.Set("k", JsonValue::Int(1));
  obj.Set("k", JsonValue::Int(2));
  EXPECT_EQ(obj.Dump(), "{\"k\":2}");
  EXPECT_EQ(obj.size(), 1u);
}

TEST(JsonTest, IndentedOutput) {
  JsonValue obj = JsonValue::Object();
  JsonValue arr = JsonValue::Array();
  arr.Append(JsonValue::Int(1));
  obj.Set("a", std::move(arr));
  EXPECT_EQ(obj.Dump(2), "{\n  \"a\": [\n    1\n  ]\n}");
}

TEST(JsonTest, KeysKeepInsertionOrder) {
  JsonValue obj = JsonValue::Object();
  obj.Set("z", JsonValue::Int(1));
  obj.Set("a", JsonValue::Int(2));
  EXPECT_EQ(obj.Dump(), "{\"z\":1,\"a\":2}");
}

}  // namespace
}  // namespace midas
