#include "midas/util/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

namespace midas {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
  // bound 1 always yields 0.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.Uniform(1), 0u);
}

TEST(RngTest, UniformIsRoughlyUniform) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    counts[rng.Uniform(10)]++;
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / 10, 500);
  }
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    if (v == -2) saw_lo = true;
    if (v == 2) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, BernoulliEdgesAndRate) {
  Rng rng(9);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  EXPECT_FALSE(rng.Bernoulli(-1.0));
  EXPECT_TRUE(rng.Bernoulli(2.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits, 3000, 150);
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto original = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, original);  // astronomically unlikely to be equal
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, SampleWithoutReplacement) {
  Rng rng(19);
  auto sample = rng.SampleWithoutReplacement(100, 10);
  EXPECT_EQ(sample.size(), 10u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
  for (size_t s : sample) EXPECT_LT(s, 100u);
  EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));

  // k > n clamps to n.
  auto all = rng.SampleWithoutReplacement(5, 50);
  EXPECT_EQ(all.size(), 5u);
  // k == 0 is empty.
  EXPECT_TRUE(rng.SampleWithoutReplacement(5, 0).empty());
}

TEST(RngTest, ForkDecorrelates) {
  Rng rng(21);
  Rng fork = rng.Fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (rng.Next() == fork.Next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(ZipfTest, SkewsTowardLowRanks) {
  Rng rng(23);
  ZipfTable table(100, 1.1);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) {
    uint64_t r = table.Sample(&rng);
    ASSERT_LT(r, 100u);
    counts[r]++;
  }
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], 20000 / 20);
}

TEST(ZipfTest, ExponentZeroIsUniformish) {
  Rng rng(29);
  ZipfTable table(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) counts[table.Sample(&rng)]++;
  for (int c : counts) EXPECT_NEAR(c, 2000, 200);
}

}  // namespace
}  // namespace midas
