#include "midas/util/status.h"

#include <gtest/gtest.h>

namespace midas {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotSupported("x").code(), StatusCode::kNotSupported);

  Status s = Status::InvalidArgument("bad flag");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "bad flag");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad flag");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IoError("a"));
}

TEST(StatusTest, ReturnIfErrorMacro) {
  auto inner = [](bool fail) {
    return fail ? Status::Internal("boom") : Status::OK();
  };
  auto outer = [&](bool fail) -> Status {
    MIDAS_RETURN_IF_ERROR(inner(fail));
    return Status::AlreadyExists("reached end");
  };
  EXPECT_EQ(outer(true).code(), StatusCode::kInternal);
  EXPECT_EQ(outer(false).code(), StatusCode::kAlreadyExists);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(v.value_or(7), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("nope"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(v.value_or(7), 7);
}

TEST(StatusOrTest, MoveOnlyTypes) {
  StatusOr<std::unique_ptr<int>> v(std::make_unique<int>(5));
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> owned = std::move(v).value();
  EXPECT_EQ(*owned, 5);
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v(std::string("hello"));
  EXPECT_EQ(v->size(), 5u);
}

}  // namespace
}  // namespace midas
