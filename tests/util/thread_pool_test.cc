#include "midas/util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

namespace midas {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusableBarrier) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, WaitOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForZeroItems) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL(); });
  SUCCEED();
}

TEST(ThreadPoolTest, ParallelForFewerItemsThanThreads) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  pool.ParallelFor(3, [&](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPoolTest, ActuallyParallel) {
  ThreadPool pool(4);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  pool.ParallelFor(8, [&](size_t) {
    int now = concurrent.fetch_add(1) + 1;
    int expected = peak.load();
    while (now > expected && !peak.compare_exchange_weak(expected, now)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    concurrent.fetch_sub(1);
  });
  EXPECT_GE(peak.load(), 2);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // No Wait(): destructor must still run everything.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, ZeroThreadsClampsToHardware) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
}

}  // namespace
}  // namespace midas
