#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "midas/util/logging.h"
#include "midas/util/timer.h"

namespace midas {
namespace {

TEST(LoggingTest, LevelFiltering) {
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Below-threshold messages must be cheap no-ops (no crash, no output
  // assertion possible on stderr here — just exercise the path).
  MIDAS_LOG(Debug) << "invisible";
  MIDAS_LOG(Info) << "invisible";
  MIDAS_LOG(Warning) << "invisible";
  SetLogLevel(original);
}

TEST(LoggingTest, StreamingArbitraryTypes) {
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  MIDAS_LOG(Info) << "int " << 42 << " double " << 1.5 << " ptr "
                  << static_cast<const void*>(nullptr);
  SetLogLevel(original);
}

TEST(CheckMacroTest, PassingChecksAreSilent) {
  MIDAS_CHECK(1 + 1 == 2) << "never evaluated";
  MIDAS_CHECK_EQ(3, 3);
  MIDAS_CHECK_NE(3, 4);
  MIDAS_CHECK_LT(3, 4);
  MIDAS_CHECK_LE(3, 3);
  MIDAS_CHECK_GT(4, 3);
  MIDAS_CHECK_GE(4, 4);
}

TEST(CheckMacroDeathTest, FailingCheckAborts) {
  EXPECT_DEATH(MIDAS_CHECK(false) << "boom", "Check failed: false boom");
  EXPECT_DEATH(MIDAS_CHECK_EQ(1, 2), "Check failed");
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  double seconds = watch.ElapsedSeconds();
  EXPECT_GE(seconds, 0.015);
  EXPECT_LT(seconds, 5.0);
  EXPECT_NEAR(watch.ElapsedMillis(), watch.ElapsedSeconds() * 1e3,
              watch.ElapsedMillis() * 0.5);
}

TEST(StopwatchTest, ResetRestartsFromZero) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  watch.Reset();
  EXPECT_LT(watch.ElapsedSeconds(), 0.015);
}

TEST(StopwatchTest, Monotonic) {
  Stopwatch watch;
  double a = watch.ElapsedSeconds();
  double b = watch.ElapsedSeconds();
  EXPECT_GE(b, a);
  EXPECT_GE(watch.ElapsedMicros(), 0u);
}

}  // namespace
}  // namespace midas
