// By-reference shard dispatch end to end: a fleet whose workers hold the
// run's columnar dump receives WorkAssignRef frames (record ranges, no
// inline terms) and must produce results bit-identical to the in-process
// framework AND to an inline-assignment fleet on the same corpus. A mixed
// fleet (one worker with the dump, one without) must also match, with the
// coordinator falling back to inline per worker. Worker-side: a ref
// assignment naming a different dump is rejected, never executed.

#include <sys/mman.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dist/dist_test_util.h"
#include "midas/core/framework.h"
#include "midas/core/midas_alg.h"
#include "midas/dist/channel.h"
#include "midas/dist/coordinator.h"
#include "midas/dist/wire.h"
#include "midas/dist/worker.h"
#include "midas/extract/columnar_io.h"
#include "midas/extract/extraction.h"
#include "midas/fault/fault.h"
#include "midas/rdf/dictionary.h"
#include "midas/rdf/knowledge_base.h"
#include "midas/store/columnar.h"
#include "midas/util/status.h"
#include "midas/web/web_source.h"

namespace midas {
namespace dist {
namespace {

using tests::Digest;
using tests::RunDigest;

constexpr double kThreshold = 0.7;

/// The FillWideCorpus shape as an extraction dump, source-grouped (so the
/// columnar save carries the index) with confidences straddling the
/// threshold — ranges must filter, not just slice.
extract::ExtractionDump MakeWideDump() {
  extract::ExtractionDump dump;
  dump.dict = std::make_shared<rdf::Dictionary>();
  int i = 0;
  for (int h = 0; h < 2; ++h) {
    for (int s = 0; s < 3; ++s) {
      for (int p = 0; p < 2; ++p) {
        const std::string url = "http://host" + std::to_string(h) +
                                ".com/sec" + std::to_string(s) + "/p" +
                                std::to_string(p) + ".htm";
        for (int e = 0; e < 4; ++e) {
          const std::string subj = "e" + std::to_string(h) + "_" +
                                   std::to_string(s) + "_" +
                                   std::to_string(p) + "_" + std::to_string(e);
          extract::ExtractedFact fact;
          fact.url = url;
          fact.triple = rdf::Triple(
              dump.dict->Intern(subj), dump.dict->Intern("cat"),
              dump.dict->Intern("kind" + std::to_string(s)));
          fact.confidence = 0.5 + 0.05 * (i++ % 10);  // 0.5 .. 0.95
          dump.facts.push_back(fact);
          if (e % 2 == 0) {
            extract::ExtractedFact origin;
            origin.url = url;
            origin.triple = rdf::Triple(
                dump.dict->Intern(subj), dump.dict->Intern("origin"),
                dump.dict->Intern("host" + std::to_string(h)));
            origin.confidence = 0.5 + 0.05 * (i++ % 10);
            dump.facts.push_back(origin);
          }
        }
      }
    }
  }
  return dump;
}

/// Per-run state loaded from the columnar file — fresh for every run (the
/// detector's thread pool must not exist before workers fork), identical
/// across runs (fresh-dictionary loads are deterministic).
struct Bundle {
  std::unique_ptr<store::ColumnarReader> reader;
  web::Corpus corpus;
  std::vector<rdf::TermId> remap;
  extract::SourceRangeCatalog catalog;
  std::unique_ptr<rdf::KnowledgeBase> kb;
  std::unique_ptr<core::MidasAlg> alg;
};

Status LoadBundle(const std::string& path, Bundle* b) {
  b->reader = std::make_unique<store::ColumnarReader>();
  store::ColumnarReadOptions read_options;
  read_options.lazy_verify = true;
  MIDAS_RETURN_IF_ERROR(b->reader->Open(path, read_options));
  extract::ColumnarLoadOptions load_options;
  load_options.threshold = kThreshold;
  MIDAS_RETURN_IF_ERROR(extract::LoadColumnarCorpusFromReader(
      b->reader.get(), load_options, &b->corpus, &b->remap));
  MIDAS_RETURN_IF_ERROR(
      extract::BuildSourceRangeCatalog(b->reader.get(), b->corpus,
                                       &b->catalog));
  b->kb = std::make_unique<rdf::KnowledgeBase>(b->corpus.shared_dict());
  core::MidasOptions alg_options;
  alg_options.cost_model = core::CostModel::RunningExample();
  b->alg = std::make_unique<core::MidasAlg>(alg_options);
  return Status::OK();
}

core::FrameworkOptions BaseOptions() {
  core::FrameworkOptions fw;
  fw.use_hierarchy_rounds = true;
  fw.run_seed = 17;
  return fw;
}

struct DistRun {
  Status start_status = Status::OK();
  core::FrameworkResult result;
  DistCoordinator::Stats stats;
};

/// Mirrors DistHarness::RunDist over a loaded bundle. `worker_has_dump`
/// decides per forked worker (by fork order) whether it announces the dump.
DistRun RunDistOnBundle(Bundle* b, size_t num_workers, bool by_ref,
                        const std::function<bool(int)>& worker_has_dump) {
  core::FrameworkOptions fw = BaseOptions();
  const uint64_t fingerprint = core::ComputeRunFingerprint(b->corpus, fw);
  core::ShardDetectOptions detect;
  detect.source_deadline_ms = fw.source_deadline_ms;
  detect.max_retries = fw.max_retries;
  detect.retry_backoff_ms = fw.retry_backoff_ms;
  detect.run_seed = fw.run_seed;

  // Fork-order index in shared memory: worker_main runs in the child, so a
  // plain captured counter would never tick across processes.
  auto* next_worker = static_cast<int*>(
      ::mmap(nullptr, sizeof(int), PROT_READ | PROT_WRITE,
             MAP_SHARED | MAP_ANONYMOUS, -1, 0));
  *next_worker = 0;

  DistOptions dopts;
  dopts.num_workers = num_workers;
  dopts.fingerprint = fingerprint;
  if (by_ref) {
    dopts.corpus_hash = b->reader->content_fingerprint();
    dopts.ref_threshold = kThreshold;
    dopts.source_ranges = &b->catalog;
  }
  dopts.worker_main = [b, detect, fingerprint, worker_has_dump,
                       next_worker](int fd) {
    const int index = __sync_fetch_and_add(next_worker, 1);
    WorkerConfig config;
    config.detector = b->alg.get();
    config.kb = b->kb.get();
    config.dict = &b->corpus.dict();
    config.detect = detect;
    config.fingerprint = fingerprint;
    config.heartbeat_interval_ms = 0;
    if (worker_has_dump(index)) {
      config.corpus_reader = b->reader.get();
      config.corpus_remap = &b->remap;
    }
    (void)RunWorkerLoop(fd, config);
  };

  DistCoordinator coordinator(&b->corpus.dict(), std::move(dopts));
  DistRun run;
  run.start_status = coordinator.Start();
  if (run.start_status.ok()) {
    fw.executor = &coordinator;
    run.result = core::MidasFramework(b->alg.get(), fw).Run(b->corpus, *b->kb);
    coordinator.Shutdown();
  }
  run.stats = coordinator.stats();
  ::munmap(next_worker, sizeof(int));
  return run;
}

class ByRefDistTest : public ::testing::Test {
 protected:
  void SetUp() override {
    col_path_ = ::testing::TempDir() + "/midas_byref_" +
                ::testing::UnitTest::GetInstance()->current_test_info()->name() +
                ".midascol";
    std::remove(col_path_.c_str());
    ASSERT_TRUE(extract::SaveColumnarDump(col_path_, MakeWideDump()).ok());
  }
  void TearDown() override { std::remove(col_path_.c_str()); }

  std::string col_path_;
};

TEST_F(ByRefDistTest, ByRefFleetBitIdenticalToInProcessAndInline) {
  // In-process baseline on the loaded corpus.
  RunDigest baseline;
  {
    Bundle b;
    ASSERT_TRUE(LoadBundle(col_path_, &b).ok());
    ASSERT_TRUE(b.reader->has_source_index());
    core::FrameworkOptions fw = BaseOptions();
    baseline = Digest(core::MidasFramework(b.alg.get(), fw)
                          .Run(b.corpus, *b.kb));
  }

  // Inline fleet: workers hold the dump but the coordinator was not given
  // a catalog, so every assignment ships inline facts.
  {
    Bundle b;
    ASSERT_TRUE(LoadBundle(col_path_, &b).ok());
    const DistRun run = RunDistOnBundle(&b, 2, /*by_ref=*/false,
                                        [](int) { return true; });
    ASSERT_TRUE(run.start_status.ok()) << run.start_status.ToString();
    EXPECT_EQ(Digest(run.result), baseline);
    EXPECT_EQ(run.stats.ref_assigns, 0u);
    EXPECT_EQ(run.stats.worker_losses, 0u);
  }

  // By-ref fleet: every worker declared the dump, so every delivery goes
  // by reference — zero inline fact bytes on the wire.
  {
    Bundle b;
    ASSERT_TRUE(LoadBundle(col_path_, &b).ok());
    const DistRun run = RunDistOnBundle(&b, 2, /*by_ref=*/true,
                                        [](int) { return true; });
    ASSERT_TRUE(run.start_status.ok()) << run.start_status.ToString();
    EXPECT_EQ(Digest(run.result), baseline);
    EXPECT_GT(run.stats.ref_assigns, 0u);
    EXPECT_EQ(run.stats.ref_assigns,
              run.stats.assigns + run.stats.speculative_assigns);
    EXPECT_EQ(run.stats.worker_losses, 0u);
  }

  // Mixed fleet: worker 0 declared the dump, worker 1 did not. The
  // coordinator serves ref frames to one and inline to the other; results
  // stay bit-identical.
  {
    Bundle b;
    ASSERT_TRUE(LoadBundle(col_path_, &b).ok());
    const DistRun run = RunDistOnBundle(&b, 2, /*by_ref=*/true,
                                        [](int index) { return index == 0; });
    ASSERT_TRUE(run.start_status.ok()) << run.start_status.ToString();
    EXPECT_EQ(Digest(run.result), baseline);
    EXPECT_GT(run.stats.ref_assigns, 0u);
    EXPECT_LT(run.stats.ref_assigns,
              run.stats.assigns + run.stats.speculative_assigns);
    EXPECT_EQ(run.stats.worker_losses, 0u);
  }
}

TEST_F(ByRefDistTest, AblationModeByRefBitIdentical) {
  RunDigest baseline;
  {
    Bundle b;
    ASSERT_TRUE(LoadBundle(col_path_, &b).ok());
    core::FrameworkOptions fw = BaseOptions();
    fw.use_hierarchy_rounds = false;
    baseline = Digest(core::MidasFramework(b.alg.get(), fw)
                          .Run(b.corpus, *b.kb));
  }
  Bundle b;
  ASSERT_TRUE(LoadBundle(col_path_, &b).ok());
  core::FrameworkOptions fw = BaseOptions();
  fw.use_hierarchy_rounds = false;
  const uint64_t fingerprint = core::ComputeRunFingerprint(b.corpus, fw);
  core::ShardDetectOptions detect;
  detect.source_deadline_ms = fw.source_deadline_ms;
  detect.max_retries = fw.max_retries;
  detect.retry_backoff_ms = fw.retry_backoff_ms;
  detect.run_seed = fw.run_seed;
  DistOptions dopts;
  dopts.num_workers = 2;
  dopts.fingerprint = fingerprint;
  dopts.corpus_hash = b.reader->content_fingerprint();
  dopts.ref_threshold = kThreshold;
  dopts.source_ranges = &b.catalog;
  Bundle* bp = &b;
  dopts.worker_main = [bp, detect, fingerprint](int fd) {
    WorkerConfig config;
    config.detector = bp->alg.get();
    config.kb = bp->kb.get();
    config.dict = &bp->corpus.dict();
    config.detect = detect;
    config.fingerprint = fingerprint;
    config.heartbeat_interval_ms = 0;
    config.corpus_reader = bp->reader.get();
    config.corpus_remap = &bp->remap;
    (void)RunWorkerLoop(fd, config);
  };
  DistCoordinator coordinator(&b.corpus.dict(), std::move(dopts));
  ASSERT_TRUE(coordinator.Start().ok());
  fw.executor = &coordinator;
  const core::FrameworkResult result =
      core::MidasFramework(b.alg.get(), fw).Run(b.corpus, *b.kb);
  coordinator.Shutdown();
  EXPECT_EQ(Digest(result), baseline);
  EXPECT_GT(coordinator.stats().ref_assigns, 0u);
}

#ifdef MIDAS_FAULT_INJECTION
// Crash-matrix leg for by-reference dispatch: the seeded worker_crash site
// _exits workers mid-unit; re-assignment (possibly by-ref to one worker
// and inline to a respawned one) must heal the run bit-identically.
TEST_F(ByRefDistTest, SeededWorkerCrashHealsByRefBitIdentical) {
  RunDigest baseline;
  {
    Bundle b;
    ASSERT_TRUE(LoadBundle(col_path_, &b).ok());
    core::FrameworkOptions fw = BaseOptions();
    baseline = Digest(core::MidasFramework(b.alg.get(), fw)
                          .Run(b.corpus, *b.kb));
  }
  fault::ScopedFaultSpec armed("site=worker_crash,rate=0.25,seed=5");
  Bundle b;
  ASSERT_TRUE(LoadBundle(col_path_, &b).ok());
  const DistRun run = RunDistOnBundle(&b, 2, /*by_ref=*/true,
                                      [](int) { return true; });
  ASSERT_TRUE(run.start_status.ok()) << run.start_status.ToString();
  EXPECT_EQ(Digest(run.result), baseline);
  EXPECT_GE(run.stats.reassigns, 1u);
  EXPECT_EQ(run.stats.units_failed, 0u);
  EXPECT_GT(run.stats.ref_assigns, 0u);
  fault::FaultInjector::Global().Disarm();
}
#endif  // MIDAS_FAULT_INJECTION

// Worker side of the stale-assignment guard: a WorkAssignRef naming a hash
// other than the dump the worker announced must kill the loop with
// Corruption — executing it would merge results from different bytes.
TEST_F(ByRefDistTest, MismatchedCorpusHashRejectsRefAssignment) {
  Bundle b;
  ASSERT_TRUE(LoadBundle(col_path_, &b).ok());
  core::ShardDetectOptions detect;
  detect.run_seed = 17;

  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  Status worker_status = Status::OK();
  std::thread worker([&] {
    WorkerConfig config;
    config.detector = b.alg.get();
    config.kb = b.kb.get();
    config.dict = &b.corpus.dict();
    config.detect = detect;
    config.fingerprint = 99;
    config.heartbeat_interval_ms = 0;
    config.corpus_reader = b.reader.get();
    config.corpus_remap = &b.remap;
    worker_status = RunWorkerLoop(sv[1], config);
  });

  FrameChannel channel(sv[0], "worker");
  ASSERT_TRUE(channel.SendMagic().ok());
  std::string payload, error;
  ASSERT_EQ(channel.WaitForFrame(5000, &payload, &error),
            FrameChannel::Read::kFrame);
  HelloMsg hello;
  ASSERT_TRUE(DecodeHello(payload, &hello).ok());
  EXPECT_EQ(hello.corpus_hash, b.reader->content_fingerprint());

  WorkAssignRefMsg ref;
  ref.unit = 0;
  ref.url = "http://host0.com";
  ref.corpus_hash = b.reader->content_fingerprint() + 1;  // not our dump
  ref.threshold = kThreshold;
  ref.ranges = {{0, 1}};
  ASSERT_TRUE(
      channel.WriteFrame(EncodeWorkAssignRef(ref, b.corpus.dict())).ok());

  // The worker refuses and exits; we observe EOF, never a WorkResult.
  const FrameChannel::Read read = channel.WaitForFrame(5000, &payload, &error);
  EXPECT_EQ(read, FrameChannel::Read::kEof);
  worker.join();
  EXPECT_FALSE(worker_status.ok());
}

}  // namespace
}  // namespace dist
}  // namespace midas
