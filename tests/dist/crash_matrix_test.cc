// Kill-a-worker crash matrix (ISSUE 8 satellite): SIGKILL worker k after m
// completed units, over a (k, m) grid — every cell must complete with
// slices and per-source reports bit-identical to an uninterrupted
// single-process baseline, with the losses visible in the reassignment
// counters. Also covers killing every worker, the seeded worker_crash
// fault site, exhausted re-assignments surfacing as kFailed, and a
// killed-then-restarted coordinator resuming from the checkpoint ledger
// without re-detecting.

#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dist/dist_test_util.h"
#include "midas/core/framework.h"
#include "midas/dist/coordinator.h"
#include "midas/fault/cancel.h"
#include "midas/fault/fault.h"
#include "midas/store/checkpoint.h"

namespace midas {
namespace dist {
namespace {

using tests::Digest;
using tests::DistHarness;
using tests::RunDigest;

core::FrameworkOptions BaseOptions() {
  core::FrameworkOptions fw;
  fw.use_hierarchy_rounds = true;
  fw.run_seed = 23;
  return fw;
}

class CrashMatrixTest : public ::testing::Test {
 protected:
  void SetUp() override { baseline_ = Digest(DistHarness().RunBaseline(BaseOptions())); }
  void TearDown() override { fault::FaultInjector::Global().Disarm(); }

  RunDigest baseline_;
};

TEST_F(CrashMatrixTest, KillWorkerKAfterMUnitsCompletesBitIdentical) {
  for (size_t k = 0; k < 2; ++k) {
    for (size_t m = 1; m <= 4; ++m) {
      DistHarness harness;
      DistOptions dopts;
      dopts.num_workers = 2;
      dopts.poll_interval_ms = 20;
      bool killed = false;
      const DistHarness::DistRun run = harness.RunDist(
          BaseOptions(), dopts,
          [&killed, k, m](DistCoordinator& coordinator, size_t units_done) {
            if (killed || units_done != m) return;
            const std::vector<pid_t> pids = coordinator.worker_pids();
            if (pids.empty()) return;
            ::kill(pids[k % pids.size()], SIGKILL);
            killed = true;
          });
      ASSERT_TRUE(run.start_status.ok()) << run.start_status.ToString();
      EXPECT_TRUE(killed) << "k=" << k << " m=" << m;
      EXPECT_EQ(Digest(run.result), baseline_) << "k=" << k << " m=" << m;
      EXPECT_GE(run.stats.worker_losses, 1u) << "k=" << k << " m=" << m;
      EXPECT_GE(run.stats.respawns, 1u) << "k=" << k << " m=" << m;
      // Every loss of a busy worker re-queued its unit; the extra assigns
      // are exactly the re-assignments.
      EXPECT_EQ(run.stats.assigns,
                run.stats.results + run.stats.reassigns)
          << "k=" << k << " m=" << m;
      EXPECT_EQ(run.stats.units_failed, 0u);
    }
  }
}

TEST_F(CrashMatrixTest, KillingEveryWorkerStillCompletes) {
  DistHarness harness;
  DistOptions dopts;
  dopts.num_workers = 2;
  dopts.poll_interval_ms = 20;
  size_t kills = 0;
  const DistHarness::DistRun run = harness.RunDist(
      BaseOptions(), dopts,
      [&kills](DistCoordinator& coordinator, size_t units_done) {
        // Kill a (possibly respawned) worker after each of the first three
        // completions — both original workers die at least once.
        if (kills >= 3 || units_done > 3) return;
        const std::vector<pid_t> pids = coordinator.worker_pids();
        if (pids.empty()) return;
        ::kill(pids[kills % pids.size()], SIGKILL);
        ++kills;
      });
  ASSERT_TRUE(run.start_status.ok()) << run.start_status.ToString();
  EXPECT_EQ(kills, 3u);
  EXPECT_EQ(Digest(run.result), baseline_);
  EXPECT_GE(run.stats.worker_losses, 3u);
  EXPECT_GE(run.stats.respawns, 3u);
  EXPECT_EQ(run.stats.units_failed, 0u);
}

#ifdef MIDAS_FAULT_INJECTION
// The worker_crash site _exits a worker mid-unit, keyed (url, assignment):
// the crash is deterministic per unit and does NOT re-fire on the bumped
// re-assignment, so the run heals and stays bit-identical.
TEST_F(CrashMatrixTest, SeededWorkerCrashSiteHealsBitIdentical) {
  // Seed chosen so several first assignments crash but no unit crashes on
  // all three of its assignments (which would legitimately fail it).
  fault::ScopedFaultSpec armed("site=worker_crash,rate=0.25,seed=5");
  DistHarness harness;
  DistOptions dopts;
  dopts.num_workers = 2;
  dopts.poll_interval_ms = 20;
  const DistHarness::DistRun run = harness.RunDist(BaseOptions(), dopts);
  ASSERT_TRUE(run.start_status.ok()) << run.start_status.ToString();
  EXPECT_EQ(Digest(run.result), baseline_);
  // Every crash kills a worker mid-unit: a loss with a reassign. (Losses
  // can exceed reassigns when an assign races a not-yet-noticed death.)
  EXPECT_GE(run.stats.reassigns, 1u);
  EXPECT_GE(run.stats.worker_losses, run.stats.reassigns);
  EXPECT_EQ(run.stats.units_failed, 0u);
}

// With the crash firing on EVERY assignment of every unit, re-assignment
// budgets exhaust: units surface as kFailed (children's slices survive,
// like an in-process shard whose every attempt threw) — the run still
// terminates instead of thrashing respawns forever.
TEST_F(CrashMatrixTest, PersistentCrashesExhaustAssignmentsAsFailures) {
  fault::ScopedFaultSpec armed("site=worker_crash,rate=1,seed=1");
  DistHarness harness([](web::Corpus* corpus) {
    for (int i = 0; i < 5; ++i) {
      corpus->AddFactRaw("http://solo.com/p.htm", "e" + std::to_string(i),
                         "cat", "rocket");
    }
  });
  core::FrameworkOptions fw;
  fw.use_hierarchy_rounds = false;
  DistOptions dopts;
  dopts.num_workers = 1;
  dopts.poll_interval_ms = 20;
  dopts.max_unit_assignments = 2;
  dopts.worker_respawn_limit = 4;
  const DistHarness::DistRun run = harness.RunDist(fw, dopts);
  ASSERT_TRUE(run.start_status.ok()) << run.start_status.ToString();
  EXPECT_GE(run.stats.units_failed, 1u);
  ASSERT_EQ(run.result.sources.size(), 1u);
  EXPECT_EQ(run.result.sources[0].status, core::SourceStatus::kFailed);
}
#endif  // MIDAS_FAULT_INJECTION

// A coordinator that dies mid-run and is restarted with --resume picks the
// completed shards out of the checkpoint ledger instead of re-detecting
// them. Modeled by cancelling the run after two applied results (the
// cancelled coordinator abandons the rest, exactly like a kill at that
// point, but with the ledger flushed) and running a fresh coordinator over
// the same checkpoint dir.
TEST_F(CrashMatrixTest, RestartedCoordinatorResumesFromLedger) {
  const std::string dir =
      ::testing::TempDir() + "/midas_dist_resume_" +
      std::to_string(::getpid());
  ::mkdir(dir.c_str(), 0755);
  const std::string ckpt = dir + "/" + store::kCheckpointFileName;
  std::remove(ckpt.c_str());

  size_t first_done = 0;
  {
    DistHarness harness;
    fault::CancelToken cancel;
    core::FrameworkOptions fw = BaseOptions();
    fw.checkpoint_dir = dir;
    fw.cancel = &cancel;
    DistOptions dopts;
    dopts.num_workers = 2;
    dopts.poll_interval_ms = 20;
    const DistHarness::DistRun run = harness.RunDist(
        fw, dopts,
        [&cancel, &first_done](DistCoordinator&, size_t units_done) {
          first_done = units_done;
          if (units_done >= 2) cancel.Cancel();
        });
    ASSERT_TRUE(run.start_status.ok()) << run.start_status.ToString();
    EXPECT_TRUE(run.result.partial);
  }
  ASSERT_GE(first_done, 2u);

  {
    DistHarness harness;
    core::FrameworkOptions fw = BaseOptions();
    fw.checkpoint_dir = dir;
    fw.resume = true;
    DistOptions dopts;
    dopts.num_workers = 2;
    dopts.poll_interval_ms = 20;
    const DistHarness::DistRun run = harness.RunDist(fw, dopts);
    ASSERT_TRUE(run.start_status.ok()) << run.start_status.ToString();
    EXPECT_EQ(Digest(run.result), baseline_);
    // The ledgered shards were restored, not re-assigned to workers.
    EXPECT_GE(run.result.stats.sources_resumed, first_done);
    EXPECT_EQ(run.stats.assigns + run.result.stats.sources_resumed,
              run.result.stats.shards_processed);
  }
  std::remove(ckpt.c_str());
  ::rmdir(dir.c_str());
}

}  // namespace
}  // namespace dist
}  // namespace midas
