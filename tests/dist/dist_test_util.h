// Shared harness for the midas::dist test suites: a deterministic corpus +
// detector bundle, a self-forking coordinator runner, and the bit-identity
// digest. Every run gets a FRESH harness (own dictionary, own detector):
// the detector's internal thread pool is created lazily on first Detect,
// and forking workers after a previous in-process run would hand the
// children a pool whose threads do not exist in their address space.
// Identical fill sequences intern identical term ids, so digests compare
// across harnesses.

#ifndef MIDAS_TESTS_DIST_DIST_TEST_UTIL_H_
#define MIDAS_TESTS_DIST_DIST_TEST_UTIL_H_

#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "midas/core/framework.h"
#include "midas/core/midas_alg.h"
#include "midas/dist/coordinator.h"
#include "midas/dist/worker.h"
#include "midas/rdf/dictionary.h"
#include "midas/rdf/knowledge_base.h"
#include "midas/util/status.h"
#include "midas/web/web_source.h"

namespace midas {
namespace dist {
namespace tests {

/// Deterministic multi-host corpus with enough shards for a crash matrix:
/// `hosts` x `sections` x `pages`, each page carrying a few facts whose
/// property values vary by section (so consolidation keeps real choices to
/// make at every level).
inline void FillWideCorpus(web::Corpus* corpus, int hosts = 2,
                           int sections = 3, int pages = 2,
                           int entities = 4) {
  for (int h = 0; h < hosts; ++h) {
    for (int s = 0; s < sections; ++s) {
      for (int p = 0; p < pages; ++p) {
        const std::string url = "http://host" + std::to_string(h) +
                                ".com/sec" + std::to_string(s) + "/p" +
                                std::to_string(p) + ".htm";
        for (int e = 0; e < entities; ++e) {
          const std::string subj = "e" + std::to_string(h) + "_" +
                                   std::to_string(s) + "_" +
                                   std::to_string(p) + "_" + std::to_string(e);
          corpus->AddFactRaw(url, subj, "cat", "kind" + std::to_string(s));
          if (e % 2 == 0) {
            corpus->AddFactRaw(url, subj, "origin",
                               "host" + std::to_string(h));
          }
        }
      }
    }
  }
}

/// The bit-identity digest: every user-visible field of a run, with slice
/// profits compared as exact bit patterns rather than decimal renderings.
struct RunDigest {
  std::vector<std::string> slice_keys;
  std::vector<std::string> source_keys;
  bool partial = false;

  bool operator==(const RunDigest& other) const = default;
};

inline RunDigest Digest(const core::FrameworkResult& result) {
  RunDigest digest;
  for (const auto& s : result.slices) {
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(s.profit));
    std::memcpy(&bits, &s.profit, sizeof(bits));
    std::string key = s.source_url + "|" + std::to_string(s.num_facts) + "|" +
                      std::to_string(s.num_new_facts) + "|" +
                      std::to_string(bits);
    for (const auto& p : s.properties) {
      key += "|c" + std::to_string(p.predicate) + ":" +
             std::to_string(p.value);
    }
    for (const auto e : s.entities) key += "|e" + std::to_string(e);
    for (const auto& f : s.facts) {
      key += "|t" + std::to_string(f.subject) + "," +
             std::to_string(f.predicate) + "," + std::to_string(f.object);
    }
    digest.slice_keys.push_back(std::move(key));
  }
  for (const auto& sr : result.sources) {
    digest.source_keys.push_back(sr.url + "|" + SourceStatusName(sr.status) +
                                 "|" + std::to_string(sr.attempts) + "|" +
                                 sr.error);
  }
  digest.partial = result.partial;
  return digest;
}

/// One run's worth of state. Build, call RunBaseline OR RunDist once, drop.
class DistHarness {
 public:
  explicit DistHarness(const std::function<void(web::Corpus*)>& fill = {})
      : dict_(std::make_shared<rdf::Dictionary>()),
        corpus_(dict_),
        kb_(dict_) {
    if (fill) {
      fill(&corpus_);
    } else {
      FillWideCorpus(&corpus_);
    }
    core::MidasOptions alg_options;
    alg_options.cost_model = core::CostModel::RunningExample();
    alg_ = std::make_unique<core::MidasAlg>(alg_options);
  }

  web::Corpus& corpus() { return corpus_; }
  const rdf::Dictionary* dict() const { return dict_.get(); }
  core::MidasAlg* alg() { return alg_.get(); }
  rdf::KnowledgeBase& kb() { return kb_; }

  core::FrameworkResult RunBaseline(core::FrameworkOptions fw) {
    return core::MidasFramework(alg_.get(), fw).Run(corpus_, kb_);
  }

  struct DistRun {
    Status start_status = Status::OK();
    core::FrameworkResult result;
    DistCoordinator::Stats stats;
  };

  /// Runs the framework with a self-forking DistCoordinator as executor.
  /// `on_unit(coordinator, units_done)` is the crash-matrix hook — note
  /// units_done is ROUND-local (it resets every round).
  DistRun RunDist(
      core::FrameworkOptions fw, DistOptions dopts,
      const std::function<void(DistCoordinator&, size_t)>& on_unit = nullptr,
      int heartbeat_ms = 0) {
    const uint64_t fingerprint = core::ComputeRunFingerprint(corpus_, fw);
    core::ShardDetectOptions detect;
    detect.source_deadline_ms = fw.source_deadline_ms;
    detect.max_retries = fw.max_retries;
    detect.retry_backoff_ms = fw.retry_backoff_ms;
    detect.run_seed = fw.run_seed;
    dopts.fingerprint = fingerprint;
    if (!dopts.worker_main) {
      dopts.worker_main = [this, detect, fingerprint, heartbeat_ms](int fd) {
        WorkerConfig config;
        config.detector = alg_.get();
        config.kb = &kb_;
        config.dict = dict_.get();
        config.detect = detect;
        config.fingerprint = fingerprint;
        config.heartbeat_interval_ms = heartbeat_ms;
        (void)RunWorkerLoop(fd, config);
      };
    }
    DistCoordinator* raw = nullptr;
    if (on_unit) {
      dopts.on_unit_done = [&raw, on_unit](size_t n) { on_unit(*raw, n); };
    }
    DistCoordinator coordinator(dict_.get(), std::move(dopts));
    raw = &coordinator;
    DistRun run;
    run.start_status = coordinator.Start();
    if (!run.start_status.ok()) {
      run.stats = coordinator.stats();
      return run;
    }
    fw.executor = &coordinator;
    run.result = core::MidasFramework(alg_.get(), fw).Run(corpus_, kb_);
    coordinator.Shutdown();
    run.stats = coordinator.stats();
    return run;
  }

 private:
  std::shared_ptr<rdf::Dictionary> dict_;
  web::Corpus corpus_;
  rdf::KnowledgeBase kb_;
  std::unique_ptr<core::MidasAlg> alg_;
};

}  // namespace tests
}  // namespace dist
}  // namespace midas

#endif  // MIDAS_TESTS_DIST_DIST_TEST_UTIL_H_
