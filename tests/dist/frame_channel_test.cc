// Socket-level tests of dist::FrameChannel (ISSUE 8 satellite): framed
// messages over a real socketpair, torn reads at EVERY byte split point
// decoding identically, clean-EOF vs torn-frame-at-EOF classification, bad
// stream magic, blocking-read timeouts, and the socket_torn fault site.

#include "midas/dist/channel.h"

#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "midas/fault/fault.h"
#include "midas/store/record_log.h"

namespace midas {
namespace dist {
namespace {

struct SocketPair {
  int fds[2] = {-1, -1};
  SocketPair() { EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0); }
  ~SocketPair() {
    if (fds[0] >= 0) ::close(fds[0]);
    if (fds[1] >= 0) ::close(fds[1]);
  }
  // Channels take fd ownership; the dtor must not double-close.
  int Take(int i) {
    const int fd = fds[i];
    fds[i] = -1;
    return fd;
  }
};

void WriteRaw(int fd, const std::string& bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    ASSERT_GT(n, 0);
    off += static_cast<size_t>(n);
  }
}

/// Drains everything currently available plus the stream's end state.
/// Returns the popped payloads; sets *end to the terminal Read outcome
/// (kEof or kCorrupt) once the peer has closed.
std::vector<std::string> DrainToEnd(FrameChannel* rx,
                                    FrameChannel::Read* end) {
  std::vector<std::string> payloads;
  std::string error;
  for (;;) {
    const FrameChannel::Read read = rx->ReadAvailable(&error);
    if (read == FrameChannel::Read::kError) {
      *end = read;
      return payloads;
    }
    for (;;) {
      std::string payload;
      const FrameChannel::Read popped = rx->PopFrame(&payload, &error);
      if (popped == FrameChannel::Read::kFrame) {
        payloads.push_back(std::move(payload));
        continue;
      }
      if (popped == FrameChannel::Read::kNeedMore) break;
      *end = popped;  // kEof or kCorrupt
      return payloads;
    }
  }
}

TEST(FrameChannelTest, RoundtripsFramesBothDirections) {
  SocketPair sp;
  FrameChannel a(sp.Take(0), "a");
  FrameChannel b(sp.Take(1), "b");
  ASSERT_TRUE(a.SendMagic().ok());
  ASSERT_TRUE(b.SendMagic().ok());
  ASSERT_TRUE(a.WriteFrame("ping").ok());
  ASSERT_TRUE(b.WriteFrame("pong").ok());
  ASSERT_TRUE(a.WriteFrame(std::string(100000, 'x')).ok());

  std::string payload, error;
  ASSERT_EQ(b.WaitForFrame(1000, &payload, &error), FrameChannel::Read::kFrame);
  EXPECT_EQ(payload, "ping");
  ASSERT_EQ(b.WaitForFrame(1000, &payload, &error), FrameChannel::Read::kFrame);
  EXPECT_EQ(payload, std::string(100000, 'x'));
  ASSERT_EQ(a.WaitForFrame(1000, &payload, &error), FrameChannel::Read::kFrame);
  EXPECT_EQ(payload, "pong");
}

TEST(FrameChannelTest, WaitForFrameTimesOutWithoutData) {
  SocketPair sp;
  FrameChannel a(sp.Take(0), "a");
  FrameChannel b(sp.Take(1), "b");
  ASSERT_TRUE(a.SendMagic().ok());
  std::string payload, error;
  EXPECT_EQ(b.WaitForFrame(20, &payload, &error),
            FrameChannel::Read::kTimeout);
}

// The coordinator reads whatever byte prefix the kernel delivers: every
// possible split of the stream into two raw writes must decode to exactly
// the same frames.
TEST(FrameChannelTest, EveryByteSplitPointDecodesIdentically) {
  const std::string p1 = "first frame payload";
  const std::string p2 = std::string(300, 'z') + "tail";
  std::string bytes(store::kRecordLogMagic, store::kRecordLogMagicLen);
  bytes += store::EncodeRecordFrame(p1);
  bytes += store::EncodeRecordFrame(p2);

  for (size_t split = 0; split <= bytes.size(); ++split) {
    SocketPair sp;
    const int tx = sp.Take(1);
    FrameChannel rx(sp.Take(0), "rx");
    ASSERT_TRUE(rx.SetNonBlocking().ok());
    WriteRaw(tx, bytes.substr(0, split));

    // First half: whatever is complete so far, never an error.
    std::string error;
    std::vector<std::string> got;
    const FrameChannel::Read first = rx.ReadAvailable(&error);
    ASSERT_NE(first, FrameChannel::Read::kError) << "split " << split;
    for (;;) {
      std::string payload;
      const FrameChannel::Read popped = rx.PopFrame(&payload, &error);
      if (popped != FrameChannel::Read::kFrame) {
        ASSERT_EQ(popped, FrameChannel::Read::kNeedMore)
            << "split " << split << ": " << error;
        break;
      }
      got.push_back(std::move(payload));
    }

    WriteRaw(tx, bytes.substr(split));
    ::close(tx);
    FrameChannel::Read end = FrameChannel::Read::kNeedMore;
    for (std::string& payload : DrainToEnd(&rx, &end)) {
      got.push_back(std::move(payload));
    }
    EXPECT_EQ(end, FrameChannel::Read::kEof) << "split " << split;
    ASSERT_EQ(got.size(), 2u) << "split " << split;
    EXPECT_EQ(got[0], p1);
    EXPECT_EQ(got[1], p2);
  }
}

TEST(FrameChannelTest, CleanCloseAtFrameBoundaryIsEof) {
  SocketPair sp;
  const int tx = sp.Take(1);
  FrameChannel rx(sp.Take(0), "rx");
  ASSERT_TRUE(rx.SetNonBlocking().ok());
  std::string bytes(store::kRecordLogMagic, store::kRecordLogMagicLen);
  bytes += store::EncodeRecordFrame("only");
  WriteRaw(tx, bytes);
  ::close(tx);

  FrameChannel::Read end = FrameChannel::Read::kNeedMore;
  const std::vector<std::string> got = DrainToEnd(&rx, &end);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "only");
  EXPECT_EQ(end, FrameChannel::Read::kEof);
}

// A peer that dies mid-frame leaves a torn tail: that is corruption, not a
// clean EOF — the coordinator must treat the worker as lost, not released.
TEST(FrameChannelTest, TornFrameAtEofIsCorrupt) {
  std::string bytes(store::kRecordLogMagic, store::kRecordLogMagicLen);
  bytes += store::EncodeRecordFrame("complete");
  bytes += store::EncodeRecordFrame("torn away");
  // Re-check at every torn tail length of the second frame.
  const size_t boundary = store::kRecordLogMagicLen +
                          store::kRecordHeaderLen + std::string("complete").size();
  for (size_t cut = boundary + 1; cut < bytes.size(); ++cut) {
    SocketPair sp;
    const int tx = sp.Take(1);
    FrameChannel rx(sp.Take(0), "rx");
    ASSERT_TRUE(rx.SetNonBlocking().ok());
    WriteRaw(tx, bytes.substr(0, cut));
    ::close(tx);
    FrameChannel::Read end = FrameChannel::Read::kNeedMore;
    const std::vector<std::string> got = DrainToEnd(&rx, &end);
    ASSERT_EQ(got.size(), 1u) << "cut " << cut;
    EXPECT_EQ(got[0], "complete");
    EXPECT_EQ(end, FrameChannel::Read::kCorrupt) << "cut " << cut;
  }
}

TEST(FrameChannelTest, BadMagicIsCorrupt) {
  SocketPair sp;
  const int tx = sp.Take(1);
  FrameChannel rx(sp.Take(0), "rx");
  ASSERT_TRUE(rx.SetNonBlocking().ok());
  std::string bytes(store::kRecordLogMagic, store::kRecordLogMagicLen);
  bytes[0] = 'X';
  bytes += store::EncodeRecordFrame("whatever");
  WriteRaw(tx, bytes);
  ::close(tx);
  FrameChannel::Read end = FrameChannel::Read::kNeedMore;
  const std::vector<std::string> got = DrainToEnd(&rx, &end);
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(end, FrameChannel::Read::kCorrupt);
}

TEST(FrameChannelTest, CorruptedCrcSurfacesAsCorrupt) {
  std::string bytes(store::kRecordLogMagic, store::kRecordLogMagicLen);
  std::string frame = store::EncodeRecordFrame("payload bytes here");
  frame[frame.size() - 1] = static_cast<char>(frame[frame.size() - 1] ^ 0x01);
  bytes += frame;
  SocketPair sp;
  const int tx = sp.Take(1);
  FrameChannel rx(sp.Take(0), "rx");
  ASSERT_TRUE(rx.SetNonBlocking().ok());
  WriteRaw(tx, bytes);
  ::close(tx);
  FrameChannel::Read end = FrameChannel::Read::kNeedMore;
  const std::vector<std::string> got = DrainToEnd(&rx, &end);
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(end, FrameChannel::Read::kCorrupt);
}

#ifdef MIDAS_FAULT_INJECTION
// The socket_torn site models this process dying mid-send: the writer gets
// an IoError and the connection is severed, so the peer observes either a
// torn frame (kCorrupt) or a clean EOF when the tear landed on a boundary.
TEST(FrameChannelTest, SocketTornFaultSeversTheConnection) {
  SocketPair sp;
  FrameChannel tx(sp.Take(1), "victim");
  FrameChannel rx(sp.Take(0), "rx");
  ASSERT_TRUE(rx.SetNonBlocking().ok());
  ASSERT_TRUE(tx.SendMagic().ok());
  ASSERT_TRUE(tx.WriteFrame("delivered intact").ok());

  fault::ScopedFaultSpec armed("site=socket_torn,rate=1,seed=3");
  const Status torn = tx.WriteFrame("torn mid-write");
  ASSERT_FALSE(torn.ok());
  EXPECT_NE(torn.message().find("socket_torn"), std::string::npos)
      << torn.ToString();

  FrameChannel::Read end = FrameChannel::Read::kNeedMore;
  const std::vector<std::string> got = DrainToEnd(&rx, &end);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "delivered intact");
  EXPECT_TRUE(end == FrameChannel::Read::kCorrupt ||
              end == FrameChannel::Read::kEof);
}
#endif  // MIDAS_FAULT_INJECTION

}  // namespace
}  // namespace dist
}  // namespace midas
