// Socket-level tests of the TCP dist transport (ISSUE 9): the host:port
// address grammar, ephemeral-port listen/connect, framed messages over a
// real localhost TCP pair with torn reads at every byte split, EAGAIN
// short-write handling under a tiny send buffer, the bounded write
// timeout against a peer that never drains, and the seeded net_delay /
// net_drop / net_partition fault sites (which must stay inert on unix
// transports).

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "midas/dist/channel.h"
#include "midas/dist/net.h"
#include "midas/fault/fault.h"
#include "midas/store/record_log.h"

namespace midas {
namespace dist {
namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Listens on an ephemeral localhost port, connects, and accepts: a real
/// TCP pair. `a` is the accepted (server) end, `b` the connected (client)
/// end; both blocking until a test opts into non-blocking itself.
void MakeTcpPair(int* a, int* b) {
  const StatusOr<int> listen_fd = ListenTcp("127.0.0.1:0", 8);
  ASSERT_TRUE(listen_fd.ok()) << listen_fd.status().ToString();
  const StatusOr<uint16_t> port = BoundTcpPort(*listen_fd);
  ASSERT_TRUE(port.ok()) << port.status().ToString();
  const StatusOr<int> client =
      ConnectTcp("127.0.0.1:" + std::to_string(*port), 2000);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  // ListenTcp fds are non-blocking; poll for the pending connection.
  struct pollfd pfd = {};
  pfd.fd = *listen_fd;
  pfd.events = POLLIN;
  ASSERT_GT(::poll(&pfd, 1, 2000), 0);
  const int accepted = ::accept(*listen_fd, nullptr, nullptr);
  ASSERT_GE(accepted, 0);
  ::close(*listen_fd);
  *a = accepted;
  *b = *client;
}

void WriteRaw(int fd, const std::string& bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    ASSERT_GT(n, 0);
    off += static_cast<size_t>(n);
  }
}

/// Drains everything currently available plus the stream's end state. Unlike
/// the socketpair variant in frame_channel_test.cc, loopback TCP delivers
/// bytes (and the FIN) asynchronously, so an empty-but-open socket returns
/// with *end = kNeedMore and the caller polls before retrying.
std::vector<std::string> DrainToEnd(FrameChannel* rx,
                                    FrameChannel::Read* end) {
  std::vector<std::string> payloads;
  std::string error;
  const FrameChannel::Read read = rx->ReadAvailable(&error);
  if (read == FrameChannel::Read::kError) {
    *end = read;
    return payloads;
  }
  for (;;) {
    std::string payload;
    const FrameChannel::Read popped = rx->PopFrame(&payload, &error);
    if (popped == FrameChannel::Read::kFrame) {
      payloads.push_back(std::move(payload));
      continue;
    }
    *end = popped;  // kNeedMore, kEof, or kCorrupt
    return payloads;
  }
}

TEST(TcpChannelTest, AddressGrammarAutoDetectsTransport) {
  EXPECT_TRUE(IsTcpAddress("127.0.0.1:7070"));
  EXPECT_TRUE(IsTcpAddress("localhost:0"));
  EXPECT_TRUE(IsTcpAddress("[::1]:7070"));
  EXPECT_TRUE(IsTcpAddress("example.com:65535"));
  EXPECT_FALSE(IsTcpAddress("/tmp/midas.sock"));
  EXPECT_FALSE(IsTcpAddress("./funky:name.sock"));   // ':' but has '/'
  EXPECT_FALSE(IsTcpAddress("relative.sock"));       // no ':'
  EXPECT_FALSE(IsTcpAddress("host:"));               // empty port
  EXPECT_FALSE(IsTcpAddress(":7070"));               // empty host
  EXPECT_FALSE(IsTcpAddress("host:70x"));            // non-digit port
  EXPECT_FALSE(IsTcpAddress(""));

  std::string host, port;
  ASSERT_TRUE(SplitHostPort("[::1]:7070", &host, &port).ok());
  EXPECT_EQ(host, "[::1]");
  EXPECT_EQ(port, "7070");
  ASSERT_TRUE(SplitHostPort("127.0.0.1:0", &host, &port).ok());
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, "0");
  EXPECT_FALSE(SplitHostPort("nocolon", &host, &port).ok());
}

TEST(TcpChannelTest, EphemeralListenConnectRoundtrip) {
  int a = -1, b = -1;
  MakeTcpPair(&a, &b);
  FrameChannel server(a, "server", Transport::kTcp);
  FrameChannel client(b, "client", Transport::kTcp);
  EXPECT_EQ(server.transport(), Transport::kTcp);

  // The FrameChannel ctor sets TCP_NODELAY on TCP transports.
  int nodelay = 0;
  socklen_t len = sizeof(nodelay);
  ASSERT_EQ(::getsockopt(server.fd(), IPPROTO_TCP, TCP_NODELAY, &nodelay,
                         &len),
            0);
  EXPECT_NE(nodelay, 0);

  ASSERT_TRUE(server.SendMagic().ok());
  ASSERT_TRUE(client.SendMagic().ok());
  ASSERT_TRUE(server.WriteFrame("assign").ok());
  ASSERT_TRUE(client.WriteFrame(std::string(100000, 'r')).ok());

  std::string payload, error;
  ASSERT_EQ(client.WaitForFrame(2000, &payload, &error),
            FrameChannel::Read::kFrame);
  EXPECT_EQ(payload, "assign");
  ASSERT_EQ(server.WaitForFrame(2000, &payload, &error),
            FrameChannel::Read::kFrame);
  EXPECT_EQ(payload, std::string(100000, 'r'));
}

TEST(TcpChannelTest, ConnectRefusedFailsAfterRetryDeadline) {
  // Grab a port and close the listener so the connect is refused.
  const StatusOr<int> listen_fd = ListenTcp("127.0.0.1:0", 1);
  ASSERT_TRUE(listen_fd.ok());
  const StatusOr<uint16_t> port = BoundTcpPort(*listen_fd);
  ASSERT_TRUE(port.ok());
  ::close(*listen_fd);
  const StatusOr<int> fd =
      ConnectTcp("127.0.0.1:" + std::to_string(*port), 150);
  EXPECT_FALSE(fd.ok());
}

// TCP is a byte stream with arbitrary segmentation: every split of the
// stream into two raw sends must decode to exactly the same frames.
TEST(TcpChannelTest, EveryByteSplitPointDecodesIdentically) {
  const std::string p1 = "first frame payload";
  const std::string p2 = std::string(300, 'z') + "tail";
  std::string bytes(store::kRecordLogMagic, store::kRecordLogMagicLen);
  bytes += store::EncodeRecordFrame(p1);
  bytes += store::EncodeRecordFrame(p2);

  for (size_t split = 0; split <= bytes.size(); ++split) {
    int a = -1, b = -1;
    MakeTcpPair(&a, &b);
    const int tx = b;
    FrameChannel rx(a, "rx", Transport::kTcp);
    ASSERT_TRUE(rx.SetNonBlocking().ok());
    WriteRaw(tx, bytes.substr(0, split));

    // First half: whatever is complete so far, never an error. Loopback
    // delivery is asynchronous, so poll until the prefix is readable.
    std::string error;
    std::vector<std::string> got;
    struct pollfd pfd = {};
    pfd.fd = rx.fd();
    pfd.events = POLLIN;
    if (split > 0) ASSERT_GT(::poll(&pfd, 1, 2000), 0) << "split " << split;
    const FrameChannel::Read first = rx.ReadAvailable(&error);
    ASSERT_NE(first, FrameChannel::Read::kError) << "split " << split;
    for (;;) {
      std::string payload;
      const FrameChannel::Read popped = rx.PopFrame(&payload, &error);
      if (popped != FrameChannel::Read::kFrame) {
        ASSERT_EQ(popped, FrameChannel::Read::kNeedMore)
            << "split " << split << ": " << error;
        break;
      }
      got.push_back(std::move(payload));
    }

    WriteRaw(tx, bytes.substr(split));
    ::close(tx);
    FrameChannel::Read end = FrameChannel::Read::kNeedMore;
    // DrainToEnd assumes data is available; wait for the rest + EOF.
    for (;;) {
      std::vector<std::string> more = DrainToEnd(&rx, &end);
      for (std::string& payload : more) got.push_back(std::move(payload));
      if (end != FrameChannel::Read::kNeedMore) break;
      ASSERT_GT(::poll(&pfd, 1, 2000), 0) << "split " << split;
    }
    EXPECT_EQ(end, FrameChannel::Read::kEof) << "split " << split;
    ASSERT_EQ(got.size(), 2u) << "split " << split;
    EXPECT_EQ(got[0], p1);
    EXPECT_EQ(got[1], p2);
  }
}

// A peer that dies mid-frame over TCP leaves a torn tail: corruption, not a
// clean EOF.
TEST(TcpChannelTest, TornFrameAtEofIsCorruptOverTcp) {
  std::string bytes(store::kRecordLogMagic, store::kRecordLogMagicLen);
  bytes += store::EncodeRecordFrame("complete");
  const size_t boundary = bytes.size();
  bytes += store::EncodeRecordFrame("torn away");

  for (size_t cut = boundary + 1; cut < bytes.size(); ++cut) {
    int a = -1, b = -1;
    MakeTcpPair(&a, &b);
    const int tx = b;
    FrameChannel rx(a, "rx", Transport::kTcp);
    ASSERT_TRUE(rx.SetNonBlocking().ok());
    WriteRaw(tx, bytes.substr(0, cut));
    ::close(tx);
    struct pollfd pfd = {};
    pfd.fd = rx.fd();
    pfd.events = POLLIN;
    FrameChannel::Read end = FrameChannel::Read::kNeedMore;
    std::vector<std::string> got;
    for (;;) {
      std::vector<std::string> more = DrainToEnd(&rx, &end);
      for (std::string& payload : more) got.push_back(std::move(payload));
      if (end != FrameChannel::Read::kNeedMore) break;
      ASSERT_GT(::poll(&pfd, 1, 2000), 0) << "cut " << cut;
    }
    ASSERT_EQ(got.size(), 1u) << "cut " << cut;
    EXPECT_EQ(got[0], "complete");
    EXPECT_EQ(end, FrameChannel::Read::kCorrupt) << "cut " << cut;
  }
}

// A non-blocking sender with a tiny send buffer hits EAGAIN mid-frame; the
// channel must poll for writability and finish the short write, delivering
// the frame intact once the (slow) reader drains.
TEST(TcpChannelTest, ShortWritesUnderTinySendBufferDeliverIntact) {
  int a = -1, b = -1;
  MakeTcpPair(&a, &b);
  // A tiny send buffer forces send(2) to take the frame in short slices
  // and hit EAGAIN whenever in-flight data outruns the sleeping reader.
  // (The receive side keeps its default size: shrinking SO_RCVBUF after
  // the window was already advertised wedges loopback delivery outright.)
  const int sndbuf = 4096;
  ASSERT_EQ(::setsockopt(b, SOL_SOCKET, SO_SNDBUF, &sndbuf, sizeof(sndbuf)),
            0);
  FrameChannel tx(b, "tx", Transport::kTcp);
  FrameChannel rx(a, "rx", Transport::kTcp);
  ASSERT_TRUE(tx.SetNonBlocking().ok());
  const std::string big(4 * 1024 * 1024, 'q');

  std::thread reader([&] {
    std::string payload, error;
    // The reader starts late on purpose: the writer must block in its
    // EAGAIN/POLLOUT loop until bytes drain.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ASSERT_EQ(rx.WaitForFrame(30000, &payload, &error),
              FrameChannel::Read::kFrame)
        << error;
    EXPECT_EQ(payload, big);
  });
  ASSERT_TRUE(tx.SendMagic().ok());
  const Status write_status = tx.WriteFrame(big);
  EXPECT_TRUE(write_status.ok()) << write_status.ToString();
  reader.join();
}

// A peer that never drains must bound the writer: the write times out with
// an IoError instead of wedging the coordinator forever.
TEST(TcpChannelTest, WriteTimesOutWhenPeerNeverDrains) {
  int a = -1, b = -1;
  MakeTcpPair(&a, &b);
  const int sndbuf = 4096;
  ASSERT_EQ(::setsockopt(b, SOL_SOCKET, SO_SNDBUF, &sndbuf, sizeof(sndbuf)),
            0);
  FrameChannel tx(b, "tx", Transport::kTcp);
  ASSERT_TRUE(tx.SetNonBlocking().ok());
  tx.set_write_timeout_ms(200);
  ASSERT_TRUE(tx.SendMagic().ok());

  const int64_t before = NowMs();
  const Status status = tx.WriteFrame(std::string(16 * 1024 * 1024, 'w'));
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("timed out"), std::string::npos)
      << status.ToString();
  EXPECT_GE(NowMs() - before, 200);
  ::close(a);
}

#ifdef MIDAS_FAULT_INJECTION

TEST(TcpChannelTest, NetDropEatsFrameWhileWriterSeesOk) {
  int a = -1, b = -1;
  MakeTcpPair(&a, &b);
  FrameChannel tx(b, "tx", Transport::kTcp);
  FrameChannel rx(a, "rx", Transport::kTcp);
  ASSERT_TRUE(tx.SendMagic().ok());
  {
    fault::ScopedFaultSpec armed("site=net_drop,rate=1,seed=7,max_fires=1");
    // The network ate it: the sender cannot tell and must see OK.
    ASSERT_TRUE(tx.WriteFrame("vanishes").ok());
    EXPECT_EQ(fault::FaultInjector::Global().fires(fault::kSiteNetDrop), 1u);
  }
  ASSERT_TRUE(tx.WriteFrame("arrives").ok());

  std::string payload, error;
  ASSERT_EQ(rx.WaitForFrame(2000, &payload, &error),
            FrameChannel::Read::kFrame);
  EXPECT_EQ(payload, "arrives");  // the dropped frame never shows up
}

TEST(TcpChannelTest, NetDelayDelaysButDelivers) {
  int a = -1, b = -1;
  MakeTcpPair(&a, &b);
  FrameChannel tx(b, "tx", Transport::kTcp);
  FrameChannel rx(a, "rx", Transport::kTcp);
  ASSERT_TRUE(tx.SendMagic().ok());
  fault::ScopedFaultSpec armed("site=net_delay,rate=1,seed=7,delay_ms=120");
  const int64_t before = NowMs();
  ASSERT_TRUE(tx.WriteFrame("slow but sure").ok());
  EXPECT_GE(NowMs() - before, 120);
  std::string payload, error;
  ASSERT_EQ(rx.WaitForFrame(2000, &payload, &error),
            FrameChannel::Read::kFrame);
  EXPECT_EQ(payload, "slow but sure");
}

// net_partition is a timed both-way outage on the afflicted channel:
// outbound frames are swallowed while it lasts, inbound frames that
// surface during it are discarded, and traffic resumes once it expires.
TEST(TcpChannelTest, NetPartitionIsTimedAndBothWays) {
  int a = -1, b = -1;
  MakeTcpPair(&a, &b);
  FrameChannel part(b, "partitioned", Transport::kTcp);
  FrameChannel peer(a, "peer", Transport::kTcp);
  ASSERT_TRUE(part.SendMagic().ok());
  ASSERT_TRUE(peer.SendMagic().ok());

  {
    fault::ScopedFaultSpec armed(
        "site=net_partition,rate=1,seed=5,delay_ms=400,max_fires=1");
    ASSERT_TRUE(part.WriteFrame("eaten by outage").ok());  // starts it
  }
  ASSERT_TRUE(part.WriteFrame("also eaten").ok());  // still inside it

  // Inbound during the outage: the peer's frame reaches the socket but the
  // partitioned channel discards it.
  ASSERT_TRUE(peer.WriteFrame("lost inbound").ok());
  std::string payload, error;
  EXPECT_EQ(part.WaitForFrame(150, &payload, &error),
            FrameChannel::Read::kTimeout);

  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  ASSERT_TRUE(part.WriteFrame("after the outage").ok());
  ASSERT_TRUE(peer.WriteFrame("inbound after").ok());
  ASSERT_EQ(peer.WaitForFrame(2000, &payload, &error),
            FrameChannel::Read::kFrame);
  EXPECT_EQ(payload, "after the outage");
  ASSERT_EQ(part.WaitForFrame(2000, &payload, &error),
            FrameChannel::Read::kFrame);
  EXPECT_EQ(payload, "inbound after");
}

// The net_* sites model the network; a unix socketpair has none, so an
// armed spec must not perturb unix channels (the in-process fork mode's
// transport) at all.
TEST(TcpChannelTest, NetSitesAreInertOnUnixTransport) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  FrameChannel tx(fds[1], "tx");  // default Transport::kUnix
  FrameChannel rx(fds[0], "rx");
  EXPECT_EQ(tx.transport(), Transport::kUnix);
  ASSERT_TRUE(tx.SendMagic().ok());
  fault::ScopedFaultSpec armed(
      "site=net_drop,rate=1,seed=1;site=net_partition,rate=1,seed=1");
  ASSERT_TRUE(tx.WriteFrame("unmolested").ok());
  EXPECT_EQ(fault::FaultInjector::Global().fires(fault::kSiteNetDrop), 0u);
  EXPECT_EQ(fault::FaultInjector::Global().fires(fault::kSiteNetPartition),
            0u);
  std::string payload, error;
  ASSERT_EQ(rx.WaitForFrame(2000, &payload, &error),
            FrameChannel::Read::kFrame);
  EXPECT_EQ(payload, "unmolested");
}

// Seeded determinism: the same spec over the same frame sequence drops the
// same frames, run after run — what makes net-fault runs replayable.
TEST(TcpChannelTest, NetDropDecisionsAreSeededAndReplayable) {
  std::vector<std::vector<size_t>> dropped_per_run;
  for (int run = 0; run < 2; ++run) {
    int a = -1, b = -1;
    MakeTcpPair(&a, &b);
    FrameChannel tx(b, "tx", Transport::kTcp);
    FrameChannel rx(a, "rx", Transport::kTcp);
    ASSERT_TRUE(tx.SendMagic().ok());
    fault::ScopedFaultSpec armed("site=net_drop,rate=0.4,seed=23");
    for (size_t i = 0; i < 32; ++i) {
      ASSERT_TRUE(tx.WriteFrame("frame-" + std::to_string(i)).ok());
    }
    // Collect what survived; the complement was dropped.
    std::vector<size_t> dropped;
    std::vector<bool> seen(32, false);
    std::string payload, error;
    while (rx.WaitForFrame(200, &payload, &error) ==
           FrameChannel::Read::kFrame) {
      seen[static_cast<size_t>(std::stoi(payload.substr(6)))] = true;
    }
    for (size_t i = 0; i < 32; ++i) {
      if (!seen[i]) dropped.push_back(i);
    }
    EXPECT_FALSE(dropped.empty());
    EXPECT_LT(dropped.size(), 32u);
    dropped_per_run.push_back(std::move(dropped));
  }
  EXPECT_EQ(dropped_per_run[0], dropped_per_run[1]);
}

#endif  // MIDAS_FAULT_INJECTION

}  // namespace
}  // namespace dist
}  // namespace midas
