// End-to-end robustness tests for midas::dist over localhost TCP (ISSUE 9):
// the crash matrix re-run through a real network transport, half-open
// connections hitting the liveness deadline, in-execution heartbeats keeping
// long units alive, speculative re-assignment of stragglers with zombie
// results discarded, mid-round worker rejoin, and a partitioned worker being
// declared lost while exiting nonzero on the severed connection. Every
// completing run must be bit-identical to the in-process baseline.
//
// Unlike the fork-mode suites, workers here are TEST-forked children that
// ConnectTcp to the coordinator (the coordinator sees pid -1, exactly like a
// worker on another machine), so the test owns launching, signalling, and
// reaping them.

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "midas/core/framework.h"
#include "midas/dist/channel.h"
#include "midas/dist/coordinator.h"
#include "midas/dist/net.h"
#include "midas/dist/worker.h"
#include "midas/fault/fault.h"
#include "dist/dist_test_util.h"

namespace midas {
namespace dist {
namespace {

/// Waits for `pid` and folds the status: exit code, or 128 + signal.
int Reap(pid_t pid) {
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid) return -1;
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return -1;
}

/// A coordinator-side view of a localhost-TCP worker fleet. Launch() forks a
/// child that connects to `port` and runs the worker loop until Shutdown
/// (exit 0), coordinator loss (exit 1), or a failed connect (exit 3) — the
/// nonzero exits are themselves under test. `spec` arms a fault spec in the
/// CHILD only ("" inherits whatever the parent had armed at fork time).
struct TcpCluster {
  tests::DistHarness* harness = nullptr;
  uint16_t port = 0;
  uint64_t fingerprint = 0;
  core::ShardDetectOptions detect;
  int heartbeat_ms = 0;
  std::vector<pid_t> pids;

  pid_t Launch(const std::string& spec = "") {
    const pid_t pid = ::fork();
    if (pid != 0) {
      if (pid > 0) pids.push_back(pid);
      return pid;
    }
    if (!spec.empty() &&
        !fault::FaultInjector::Global().Configure(spec).ok()) {
      ::_exit(4);
    }
    const StatusOr<int> fd =
        ConnectTcp("127.0.0.1:" + std::to_string(port), 5000);
    if (!fd.ok()) ::_exit(3);
    WorkerConfig config;
    config.detector = harness->alg();
    config.kb = &harness->kb();
    config.dict = harness->dict();
    config.detect = detect;
    config.fingerprint = fingerprint;
    config.heartbeat_interval_ms = heartbeat_ms;
    config.transport = Transport::kTcp;
    ::_exit(RunWorkerLoop(*fd, config).ok() ? 0 : 1);
  }
};

struct TcpRun {
  Status start_status = Status::OK();
  core::FrameworkResult result;
  DistCoordinator::Stats stats;
};

/// External-mode dist run over 127.0.0.1: binds an ephemeral port, forks
/// `num_workers` children (fork happens BEFORE the framework spins up any
/// threads), waits for `min_workers` Hellos, then runs the framework.
/// `specs[i]` is worker i's child-side fault spec. `on_unit` is the
/// crash-matrix hook. The caller reaps cluster->pids (including workers
/// launched from inside on_unit).
TcpRun RunTcpDist(TcpCluster* cluster, core::FrameworkOptions fw,
                  DistOptions dopts, size_t num_workers, size_t min_workers,
                  const std::vector<std::string>& specs, int heartbeat_ms,
                  const std::function<void(DistCoordinator&, size_t)>&
                      on_unit = nullptr) {
  tests::DistHarness& h = *cluster->harness;
  cluster->fingerprint = core::ComputeRunFingerprint(h.corpus(), fw);
  cluster->detect.source_deadline_ms = fw.source_deadline_ms;
  cluster->detect.max_retries = fw.max_retries;
  cluster->detect.retry_backoff_ms = fw.retry_backoff_ms;
  cluster->detect.run_seed = fw.run_seed;
  cluster->heartbeat_ms = heartbeat_ms;
  dopts.fingerprint = cluster->fingerprint;
  dopts.listen_path = "127.0.0.1:0";
  dopts.min_workers = min_workers;
  DistCoordinator* raw = nullptr;
  if (on_unit) {
    dopts.on_unit_done = [&raw, on_unit](size_t n) { on_unit(*raw, n); };
  }
  DistCoordinator coordinator(h.dict(), std::move(dopts));
  raw = &coordinator;
  TcpRun run;
  run.start_status = coordinator.Listen();
  if (!run.start_status.ok()) return run;
  cluster->port = coordinator.listen_port();
  EXPECT_GT(cluster->port, 0);
  for (size_t i = 0; i < num_workers; ++i) {
    cluster->Launch(i < specs.size() ? specs[i] : "");
  }
  run.start_status = coordinator.Start();
  if (!run.start_status.ok()) {
    run.stats = coordinator.stats();
    return run;
  }
  fw.executor = &coordinator;
  run.result = core::MidasFramework(h.alg(), fw).Run(h.corpus(), h.kb());
  coordinator.Shutdown();
  run.stats = coordinator.stats();
  return run;
}

TEST(TcpLivenessTest, CleanTcpRunIsBitIdenticalToInProcess) {
  core::FrameworkOptions fw;
  tests::RunDigest baseline;
  {
    tests::DistHarness h;
    baseline = tests::Digest(h.RunBaseline(fw));
  }
  tests::DistHarness h;
  TcpCluster cluster;
  cluster.harness = &h;
  DistOptions dopts;
  dopts.worker_liveness_ms = 2000;
  const TcpRun run = RunTcpDist(&cluster, fw, dopts, 2, 2, {}, 50);
  ASSERT_TRUE(run.start_status.ok()) << run.start_status.ToString();
  EXPECT_EQ(tests::Digest(run.result), baseline);
  EXPECT_EQ(run.stats.worker_losses, 0u);
  EXPECT_EQ(run.stats.workers_lost, 0u);
  EXPECT_EQ(run.stats.rejoins, 0u);
  EXPECT_EQ(run.stats.zombie_results_dropped, 0u);
  EXPECT_EQ(run.stats.assigns, run.stats.results);
  for (const pid_t pid : cluster.pids) EXPECT_EQ(Reap(pid), 0);
}

// The fork-mode crash matrix, re-run over a real TCP transport: a worker
// SIGKILLed mid-run (at different points) registers as a loss, its unit is
// re-assigned, and the completed run stays bit-identical.
TEST(TcpLivenessTest, SigkilledWorkerOverTcpCrashMatrix) {
  core::FrameworkOptions fw;
  tests::RunDigest baseline;
  {
    tests::DistHarness h;
    baseline = tests::Digest(h.RunBaseline(fw));
  }
  for (const size_t kill_after : {size_t{1}, size_t{3}}) {
    SCOPED_TRACE("kill_after=" + std::to_string(kill_after));
    tests::DistHarness h;
    TcpCluster cluster;
    cluster.harness = &h;
    DistOptions dopts;
    dopts.worker_liveness_ms = 2000;
    bool killed = false;
    const TcpRun run = RunTcpDist(
        &cluster, fw, dopts, 2, 2, {}, 50,
        [&cluster, &killed, kill_after](DistCoordinator&, size_t n) {
          if (!killed && n >= kill_after) {
            killed = true;
            ::kill(cluster.pids[0], SIGKILL);
          }
        });
    ASSERT_TRUE(run.start_status.ok()) << run.start_status.ToString();
    EXPECT_TRUE(killed);
    EXPECT_EQ(tests::Digest(run.result), baseline);
    EXPECT_GE(run.stats.worker_losses, 1u);
    EXPECT_EQ(run.stats.assigns, run.stats.results + run.stats.reassigns);
    EXPECT_EQ(Reap(cluster.pids[0]), 128 + SIGKILL);
    EXPECT_EQ(Reap(cluster.pids[1]), 0);
  }
}

// A SIGSTOPped worker is the half-open case EOF can never detect: the
// socket stays open but no frames (not even heartbeats) arrive. Only the
// liveness deadline can reclaim its unit — dist.workers_lost is that
// deadline's own counter, distinct from EOF losses.
TEST(TcpLivenessTest, HalfOpenWorkerHitsLivenessDeadline) {
  core::FrameworkOptions fw;
  tests::RunDigest baseline;
  {
    tests::DistHarness h;
    baseline = tests::Digest(h.RunBaseline(fw));
  }
  tests::DistHarness h;
  TcpCluster cluster;
  cluster.harness = &h;
  DistOptions dopts;
  dopts.worker_liveness_ms = 700;
  bool stopped = false;
  const TcpRun run =
      RunTcpDist(&cluster, fw, dopts, 2, 2, {}, 50,
                 [&cluster, &stopped](DistCoordinator&, size_t n) {
                   if (!stopped && n >= 1) {
                     stopped = true;
                     ::kill(cluster.pids[0], SIGSTOP);
                   }
                 });
  ASSERT_TRUE(run.start_status.ok()) << run.start_status.ToString();
  EXPECT_TRUE(stopped);
  EXPECT_EQ(tests::Digest(run.result), baseline);
  EXPECT_GE(run.stats.workers_lost, 1u);
  EXPECT_GE(run.stats.worker_losses, run.stats.workers_lost);
  EXPECT_EQ(run.stats.assigns, run.stats.results + run.stats.reassigns);
  // The frozen child never sees the severed socket; unfreeze and kill it.
  ::kill(cluster.pids[0], SIGCONT);
  ::kill(cluster.pids[0], SIGKILL);
  (void)Reap(cluster.pids[0]);
  EXPECT_EQ(Reap(cluster.pids[1]), 0);
}

// A worker that dies mid-run can be REPLACED: a fresh process connecting to
// the same port is admitted mid-round (fingerprint re-checked, counted in
// dist.rejoins against the respawn budget) and the round completes on it.
TEST(TcpLivenessTest, RejoiningWorkerIsAdmittedMidRound) {
  core::FrameworkOptions fw;
  tests::RunDigest baseline;
  {
    tests::DistHarness h;
    baseline = tests::Digest(h.RunBaseline(fw));
  }
  tests::DistHarness h;
  TcpCluster cluster;
  cluster.harness = &h;
  DistOptions dopts;
  dopts.worker_liveness_ms = 2000;
  bool replaced = false;
  const TcpRun run = RunTcpDist(
      &cluster, fw, dopts, 1, 1, {}, 50,
      [&cluster, &replaced](DistCoordinator&, size_t n) {
        if (!replaced && n >= 1) {
          replaced = true;
          // Kill the fleet's only worker, then stand up its replacement —
          // the coordinator must hold the round open and admit it.
          ::kill(cluster.pids[0], SIGKILL);
          cluster.Launch();
        }
      });
  ASSERT_TRUE(run.start_status.ok()) << run.start_status.ToString();
  EXPECT_TRUE(replaced);
  EXPECT_EQ(tests::Digest(run.result), baseline);
  EXPECT_GE(run.stats.worker_losses, 1u);
  EXPECT_GE(run.stats.rejoins, 1u);
  EXPECT_EQ(run.stats.assigns, run.stats.results + run.stats.reassigns);
  EXPECT_EQ(Reap(cluster.pids[0]), 128 + SIGKILL);
  EXPECT_EQ(Reap(cluster.pids[1]), 0);
}

#ifdef MIDAS_FAULT_INJECTION

// Units can legitimately run longer than the liveness deadline. Workers
// heartbeat DURING execution (a background beater thread), so a slow unit
// must not read as a dead worker: zero losses, bit-identical result. This
// is also the deterministic heartbeat check — each 800 ms unit pumps ~16
// beats at a 50 ms cadence.
TEST(TcpLivenessTest, InExecutionHeartbeatsKeepSlowUnitsAlive) {
  core::FrameworkOptions fw;
  tests::RunDigest baseline;
  {
    tests::DistHarness h;
    baseline = tests::Digest(h.RunBaseline(fw));
  }
  tests::DistHarness h;
  TcpCluster cluster;
  cluster.harness = &h;
  DistOptions dopts;
  dopts.worker_liveness_ms = 400;
  // Armed BEFORE the children fork, so they inherit it: every unit sleeps
  // twice the liveness deadline inside the worker.
  fault::ScopedFaultSpec armed("site=slow_shard,rate=1,seed=1,delay_ms=800");
  const TcpRun run = RunTcpDist(&cluster, fw, dopts, 2, 2, {}, 50);
  ASSERT_TRUE(run.start_status.ok()) << run.start_status.ToString();
  EXPECT_EQ(tests::Digest(run.result), baseline);
  EXPECT_EQ(run.stats.workers_lost, 0u);
  EXPECT_EQ(run.stats.worker_losses, 0u);
  EXPECT_GT(run.stats.heartbeats, 0u);
  for (const pid_t pid : cluster.pids) EXPECT_EQ(Reap(pid), 0);
}

// Straggler mitigation: worker 0 is slow (2.5 s per unit), worker 1 brisk
// (300 ms). Once the queue drains, the brisk worker speculatively
// duplicates whatever unit the slow one is still chewing; the first result
// wins, and the loser's copy — landing late in the same round or after the
// round has already moved on — is discarded as a zombie. Either way the
// run stays bit-identical.
TEST(TcpLivenessTest, SpeculationDuplicatesStragglersAndDropsZombies) {
  core::FrameworkOptions fw;
  tests::RunDigest baseline;
  {
    tests::DistHarness h;
    baseline = tests::Digest(h.RunBaseline(fw));
  }
  tests::DistHarness h;
  TcpCluster cluster;
  cluster.harness = &h;
  DistOptions dopts;
  dopts.speculative_ms = 200;
  const TcpRun run = RunTcpDist(
      &cluster, fw, dopts, 2, 2,
      {"site=slow_shard,rate=1,seed=1,delay_ms=2500",
       "site=slow_shard,rate=1,seed=1,delay_ms=300"},
      50);
  ASSERT_TRUE(run.start_status.ok()) << run.start_status.ToString();
  EXPECT_EQ(tests::Digest(run.result), baseline);
  EXPECT_GE(run.stats.speculative_assigns, 1u);
  EXPECT_GE(run.stats.zombie_results_dropped, 1u);
  // Speculative deliveries live outside the assign books; applied results
  // for speculated units settle against the original assignment.
  EXPECT_EQ(run.stats.assigns, run.stats.results + run.stats.reassigns);
  EXPECT_EQ(run.stats.worker_losses, 0u);
  // The slow worker may be mid-sleep at Shutdown and exit 1 on the severed
  // channel; reap without asserting its code.
  (void)Reap(cluster.pids[0]);
  (void)Reap(cluster.pids[1]);
}

// A worker behind a partition from its very first frame: its Hello is
// swallowed, so it joins the accept pool but never goes live. The liveness
// deadline reclaims it (dist.workers_lost), the run completes on the
// healthy worker, and the partitioned worker exits NONZERO when it finds
// its connection severed without a Shutdown frame.
TEST(TcpLivenessTest, PartitionedWorkerIsLostAndExitsNonzero) {
  core::FrameworkOptions fw;
  tests::RunDigest baseline;
  {
    tests::DistHarness h;
    baseline = tests::Digest(h.RunBaseline(fw));
  }
  tests::DistHarness h;
  TcpCluster cluster;
  cluster.harness = &h;
  DistOptions dopts;
  dopts.worker_liveness_ms = 500;
  // The healthy worker inherits this (spec "") and plods at 300 ms per
  // unit, keeping the round open well past the liveness deadline; the
  // partitioned worker's Configure REPLACES it with the outage site.
  fault::ScopedFaultSpec armed("site=slow_shard,rate=1,seed=1,delay_ms=300");
  // min_workers = 1: only the healthy worker can ever say Hello.
  const TcpRun run = RunTcpDist(
      &cluster, fw, dopts, 2, 1,
      {"site=net_partition,rate=1,seed=3,delay_ms=30000,max_fires=1", ""},
      50);
  ASSERT_TRUE(run.start_status.ok()) << run.start_status.ToString();
  EXPECT_EQ(tests::Digest(run.result), baseline);
  EXPECT_GE(run.stats.workers_lost, 1u);
  // Coordinator loss without Shutdown is an IoError exit, not success.
  EXPECT_EQ(Reap(cluster.pids[0]), 1);
  EXPECT_EQ(Reap(cluster.pids[1]), 0);
}

#endif  // MIDAS_FAULT_INJECTION

}  // namespace
}  // namespace dist
}  // namespace midas
