// Bit-identity acceptance for multi-process execution (ISSUE 8 tentpole):
// a DistCoordinator with N forked workers (N in {1, 4}) must produce
// slices, profits (exact bit patterns), and per-source reports identical
// to the in-process framework on the same seed — in hierarchy mode, in the
// per-source ablation, and under an injected flaky detector. Also pins the
// InProcessShardExecutor seam against the inlined path, worker fingerprint
// rejection, idle heartbeats, and Start()'s argument validation.

#include "midas/dist/coordinator.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>

#include "dist/dist_test_util.h"
#include "midas/core/framework.h"
#include "midas/dist/channel.h"
#include "midas/dist/wire.h"
#include "midas/fault/fault.h"

namespace midas {
namespace dist {
namespace {

using tests::Digest;
using tests::DistHarness;
using tests::RunDigest;

core::FrameworkOptions BaseOptions(bool hierarchy = true) {
  core::FrameworkOptions fw;
  fw.use_hierarchy_rounds = hierarchy;
  fw.run_seed = 17;
  return fw;
}

class DistExecutorTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::FaultInjector::Global().Disarm(); }
};

TEST_F(DistExecutorTest, InProcessExecutorMatchesInlinedPath) {
  const RunDigest inlined = Digest(DistHarness().RunBaseline(BaseOptions()));
  core::InProcessShardExecutor executor;
  core::FrameworkOptions fw = BaseOptions();
  fw.executor = &executor;
  EXPECT_EQ(Digest(DistHarness().RunBaseline(fw)), inlined);

  const RunDigest ablation =
      Digest(DistHarness().RunBaseline(BaseOptions(false)));
  core::FrameworkOptions fw_flat = BaseOptions(false);
  fw_flat.executor = &executor;
  EXPECT_EQ(Digest(DistHarness().RunBaseline(fw_flat)), ablation);
}

TEST_F(DistExecutorTest, OneWorkerBitIdenticalToInProcess) {
  const core::FrameworkResult baseline =
      DistHarness().RunBaseline(BaseOptions());
  DistHarness harness;
  DistOptions dopts;
  dopts.num_workers = 1;
  const DistHarness::DistRun run = harness.RunDist(BaseOptions(), dopts);
  ASSERT_TRUE(run.start_status.ok()) << run.start_status.ToString();
  EXPECT_EQ(Digest(run.result), Digest(baseline));
  EXPECT_EQ(run.result.stats.shards_processed,
            baseline.stats.shards_processed);
  EXPECT_EQ(run.stats.results, baseline.stats.shards_processed);
  EXPECT_EQ(run.stats.assigns, run.stats.results);
  EXPECT_EQ(run.stats.worker_losses, 0u);
  EXPECT_EQ(run.stats.units_failed, 0u);
}

TEST_F(DistExecutorTest, FourWorkersBitIdenticalToInProcess) {
  const RunDigest baseline = Digest(DistHarness().RunBaseline(BaseOptions()));
  DistHarness harness;
  DistOptions dopts;
  dopts.num_workers = 4;
  const DistHarness::DistRun run = harness.RunDist(BaseOptions(), dopts);
  ASSERT_TRUE(run.start_status.ok()) << run.start_status.ToString();
  EXPECT_EQ(Digest(run.result), baseline);
  EXPECT_EQ(run.stats.worker_losses, 0u);
}

TEST_F(DistExecutorTest, AblationModeBitIdenticalToInProcess) {
  const RunDigest baseline =
      Digest(DistHarness().RunBaseline(BaseOptions(false)));
  DistHarness harness;
  DistOptions dopts;
  dopts.num_workers = 4;
  const DistHarness::DistRun run = harness.RunDist(BaseOptions(false), dopts);
  ASSERT_TRUE(run.start_status.ok()) << run.start_status.ToString();
  EXPECT_EQ(Digest(run.result), baseline);
}

#ifdef MIDAS_FAULT_INJECTION
// The retry/failure path must distribute bit-identically too: detector
// throws are keyed `url#attempt` and jitter derives from run_seed, so a
// worker process makes exactly the decisions the in-process pool would.
// Reports (status, attempts, error text) are part of the digest.
TEST_F(DistExecutorTest, FlakyDetectorParity) {
  const char kSpec[] = "site=detector,rate=0.3,seed=42";
  RunDigest baseline;
  {
    fault::ScopedFaultSpec armed(kSpec);
    core::FrameworkOptions fw = BaseOptions();
    fw.retry_backoff_ms = 0;
    baseline = Digest(DistHarness().RunBaseline(fw));
  }
  {
    // Armed BEFORE Start(): forked workers inherit the armed spec.
    fault::ScopedFaultSpec armed(kSpec);
    DistHarness harness;
    DistOptions dopts;
    dopts.num_workers = 4;
    core::FrameworkOptions fw = BaseOptions();
    fw.retry_backoff_ms = 0;
    const DistHarness::DistRun run = harness.RunDist(fw, dopts);
    ASSERT_TRUE(run.start_status.ok()) << run.start_status.ToString();
    EXPECT_EQ(Digest(run.result), baseline);
  }
}
#endif  // MIDAS_FAULT_INJECTION

// An idle worker announces liveness between assignments; the coordinator
// counts the beats. One unit and two workers guarantees an idle worker
// while the other detects (slowed so beats have time to land).
#ifdef MIDAS_FAULT_INJECTION
TEST_F(DistExecutorTest, IdleWorkersHeartbeat) {
  fault::ScopedFaultSpec slow("site=slow_shard,rate=1,delay_ms=150");
  DistHarness harness([](web::Corpus* corpus) {
    for (int i = 0; i < 4; ++i) {
      corpus->AddFactRaw("http://one.com/p.htm", "e" + std::to_string(i),
                         "cat", "rocket");
    }
  });
  core::FrameworkOptions fw = BaseOptions(false);
  DistOptions dopts;
  dopts.num_workers = 2;
  dopts.poll_interval_ms = 5;
  const DistHarness::DistRun run =
      harness.RunDist(fw, dopts, nullptr, /*heartbeat_ms=*/5);
  ASSERT_TRUE(run.start_status.ok()) << run.start_status.ToString();
  EXPECT_GE(run.stats.heartbeats, 1u);
  EXPECT_EQ(run.stats.units_failed, 0u);
}
#endif  // MIDAS_FAULT_INJECTION

TEST_F(DistExecutorTest, StartValidatesOptions) {
  rdf::Dictionary dict;
  {
    DistCoordinator coordinator(&dict, DistOptions{});
    const Status status = coordinator.Start();
    EXPECT_FALSE(status.ok());  // neither self-fork nor external configured
  }
  {
    DistOptions dopts;
    dopts.num_workers = 2;  // but no worker_main
    DistCoordinator coordinator(&dict, dopts);
    EXPECT_FALSE(coordinator.Start().ok());
  }
  {
    DistOptions dopts;
    dopts.listen_path = "/tmp/nonexistent-dir-midas-test/x.sock";
    dopts.accept_timeout_ms = 50;
    DistCoordinator coordinator(&dict, dopts);
    EXPECT_FALSE(coordinator.Start().ok());  // bind fails
  }
}

TEST_F(DistExecutorTest, ExternalStartTimesOutWithoutWorkers) {
  rdf::Dictionary dict;
  DistOptions dopts;
  dopts.listen_path = ::testing::TempDir() + "/midas_dist_timeout.sock";
  dopts.min_workers = 1;
  dopts.accept_timeout_ms = 100;
  DistCoordinator coordinator(&dict, dopts);
  const Status status = coordinator.Start();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("timed out"), std::string::npos);
}

// External mode: a worker whose Hello announces the wrong fingerprint (it
// loaded a different corpus/seed) is sent Shutdown and never joins; a
// correct worker connecting afterwards satisfies min_workers.
TEST_F(DistExecutorTest, FingerprintMismatchRejectsWorker) {
  const std::string sock_path =
      ::testing::TempDir() + "/midas_dist_reject.sock";
  rdf::Dictionary dict;
  DistOptions dopts;
  dopts.listen_path = sock_path;
  dopts.min_workers = 1;
  dopts.accept_timeout_ms = 10'000;
  dopts.fingerprint = 0xfeedface;
  DistCoordinator coordinator(&dict, dopts);

  const auto connect_client = [&sock_path]() {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    struct sockaddr_un addr = {};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, sock_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    // The coordinator may not have bound yet; retry briefly.
    for (int i = 0; i < 100; ++i) {
      if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                    sizeof(addr)) == 0) {
        return fd;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ADD_FAILURE() << "could not connect to " << sock_path;
    return fd;
  };

  std::thread clients([&] {
    // Impostor first.
    {
      FrameChannel channel(connect_client(), "impostor");
      ASSERT_TRUE(channel.SendMagic().ok());
      HelloMsg hello;
      hello.fingerprint = 0xbad;
      ASSERT_TRUE(channel.WriteFrame(EncodeHello(hello)).ok());
      std::string payload, error;
      const FrameChannel::Read read =
          channel.WaitForFrame(5000, &payload, &error);
      // Shutdown frame, or EOF if the close raced the frame.
      if (read == FrameChannel::Read::kFrame) {
        EXPECT_EQ(*PeekKind(payload), MessageKind::kShutdown);
      } else {
        EXPECT_EQ(read, FrameChannel::Read::kEof);
      }
    }
    // Then the genuine worker; hold the connection until released.
    FrameChannel channel(connect_client(), "genuine");
    ASSERT_TRUE(channel.SendMagic().ok());
    HelloMsg hello;
    hello.fingerprint = 0xfeedface;
    ASSERT_TRUE(channel.WriteFrame(EncodeHello(hello)).ok());
    std::string payload, error;
    (void)channel.WaitForFrame(10'000, &payload, &error);  // Shutdown/EOF
  });

  const Status status = coordinator.Start();
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(coordinator.stats().rejected_workers, 1u);
  EXPECT_EQ(coordinator.live_workers(), 1u);
  coordinator.Shutdown();
  clients.join();
}

}  // namespace
}  // namespace dist
}  // namespace midas
