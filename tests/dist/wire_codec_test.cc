// Protocol fuzz suite for the dist wire codec (ISSUE 8 satellite): exact
// roundtrips for every message kind (profit as bit patterns included),
// truncation at EVERY byte offset, single-bit flips over every encoded
// byte, implausible length fields (must fail fast, not allocate), unknown
// dictionary terms, and trailing-byte rejection.

#include "midas/dist/wire.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "midas/core/types.h"
#include "midas/rdf/dictionary.h"
#include "midas/rdf/triple.h"

namespace midas {
namespace dist {
namespace {

void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendStr(std::string* out, const std::string& s) {
  AppendU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

class WireCodecTest : public ::testing::Test {
 protected:
  WireCodecTest() {
    s0_ = dict_.Intern("ent/s0");
    s1_ = dict_.Intern("ent/s1");
    p0_ = dict_.Intern("pred/cat");
    p1_ = dict_.Intern("pred/origin");
    o0_ = dict_.Intern("val/rocket");
    o1_ = dict_.Intern("val/nasa");
  }

  core::DiscoveredSlice MakeSlice(double profit) const {
    core::DiscoveredSlice slice;
    slice.source_url = "http://a.com/sec0";
    slice.properties = {{p0_, o0_}, {p1_, o1_}};
    slice.entities = {s0_, s1_};
    slice.facts = {rdf::Triple(s0_, p0_, o0_), rdf::Triple(s1_, p1_, o1_)};
    slice.num_facts = 2;
    slice.num_new_facts = 1;
    slice.profit = profit;
    return slice;
  }

  WorkAssignMsg MakeAssign() const {
    WorkAssignMsg msg;
    msg.unit = 7;
    msg.assignment = 2;
    msg.consolidate = true;
    msg.url = "http://a.com/sec0";
    msg.facts = {rdf::Triple(s0_, p0_, o0_), rdf::Triple(s1_, p0_, o1_)};
    msg.child_slices = {MakeSlice(1.25), MakeSlice(-3.5e-12)};
    return msg;
  }

  WorkResultMsg MakeResult() const {
    WorkResultMsg msg;
    msg.unit = 7;
    msg.assignment = 2;
    msg.status = core::SourceStatus::kPartial;
    msg.attempts = 3;
    msg.error = "deadline after level 2";
    // A profit whose decimal rendering would lose bits: the codec must
    // carry the exact pattern.
    msg.slices = {MakeSlice(0.1 + 0.2), MakeSlice(-0.0)};
    return msg;
  }

  static std::string DescribeSlices(
      const std::vector<core::DiscoveredSlice>& slices) {
    std::string out;
    for (const auto& s : slices) {
      uint64_t bits = 0;
      std::memcpy(&bits, &s.profit, sizeof(bits));
      out += s.source_url + "|" + std::to_string(bits) + "|" +
             std::to_string(s.num_facts) + "|" +
             std::to_string(s.num_new_facts);
      for (const auto& p : s.properties) {
        out += "|c" + std::to_string(p.predicate) + ":" +
               std::to_string(p.value);
      }
      for (const auto e : s.entities) out += "|e" + std::to_string(e);
      for (const auto& f : s.facts) {
        out += "|t" + std::to_string(f.subject) + "," +
               std::to_string(f.predicate) + "," + std::to_string(f.object);
      }
      out += ";";
    }
    return out;
  }

  static std::string DescribeAssign(const WorkAssignMsg& m) {
    std::string out = std::to_string(m.unit) + "|" +
                      std::to_string(m.assignment) + "|" +
                      std::to_string(m.consolidate) + "|" + m.url;
    for (const auto& f : m.facts) {
      out += "|t" + std::to_string(f.subject) + "," +
             std::to_string(f.predicate) + "," + std::to_string(f.object);
    }
    return out + "#" + DescribeSlices(m.child_slices);
  }

  WorkAssignRefMsg MakeRef() const {
    WorkAssignRefMsg msg;
    msg.unit = 11;
    msg.assignment = 3;
    msg.consolidate = true;
    msg.normalized = true;
    msg.url = "http://a.com";
    msg.corpus_hash = 0x1122334455667788ULL;
    // A threshold whose decimal rendering would lose bits: the codec must
    // carry the exact IEEE-754 pattern.
    msg.threshold = 0.1 + 0.2;
    msg.ranges = {{0, 17}, {17, 17}, {40, 1000000007}};
    msg.child_slices = {MakeSlice(2.5), MakeSlice(-1.0e-300)};
    return msg;
  }

  static std::string DescribeRef(const WorkAssignRefMsg& m) {
    uint64_t threshold_bits = 0;
    std::memcpy(&threshold_bits, &m.threshold, sizeof(threshold_bits));
    std::string out = std::to_string(m.unit) + "|" +
                      std::to_string(m.assignment) + "|" +
                      std::to_string(m.consolidate) + "|" +
                      std::to_string(m.normalized) + "|" + m.url + "|" +
                      std::to_string(m.corpus_hash) + "|" +
                      std::to_string(threshold_bits);
    for (const auto& r : m.ranges) {
      out += "|r" + std::to_string(r.first) + "," + std::to_string(r.last);
    }
    return out + "#" + DescribeSlices(m.child_slices);
  }

  static std::string DescribeResult(const WorkResultMsg& m) {
    return std::to_string(m.unit) + "|" + std::to_string(m.assignment) + "|" +
           std::to_string(static_cast<int>(m.status)) + "|" +
           std::to_string(m.attempts) + "|" + m.error + "#" +
           DescribeSlices(m.slices);
  }

  rdf::Dictionary dict_;
  rdf::TermId s0_, s1_, p0_, p1_, o0_, o1_;
};

TEST_F(WireCodecTest, HelloRoundtrip) {
  HelloMsg in;
  in.fingerprint = 0xdeadbeefcafef00dULL;
  const std::string payload = EncodeHello(in);
  ASSERT_TRUE(PeekKind(payload).ok());
  EXPECT_EQ(*PeekKind(payload), MessageKind::kHello);
  HelloMsg out;
  ASSERT_TRUE(DecodeHello(payload, &out).ok());
  EXPECT_EQ(out.protocol, kDistProtocolVersion);
  EXPECT_EQ(out.fingerprint, in.fingerprint);
}

TEST_F(WireCodecTest, WorkAssignRoundtrip) {
  const WorkAssignMsg in = MakeAssign();
  const std::string payload = EncodeWorkAssign(in, dict_);
  EXPECT_EQ(*PeekKind(payload), MessageKind::kWorkAssign);
  WorkAssignMsg out;
  ASSERT_TRUE(DecodeWorkAssign(payload, dict_, &out).ok());
  EXPECT_EQ(DescribeAssign(out), DescribeAssign(in));
}

TEST_F(WireCodecTest, WorkResultRoundtrip) {
  const WorkResultMsg in = MakeResult();
  const std::string payload = EncodeWorkResult(in, dict_);
  EXPECT_EQ(*PeekKind(payload), MessageKind::kWorkResult);
  WorkResultMsg out;
  ASSERT_TRUE(DecodeWorkResult(payload, dict_, &out).ok());
  EXPECT_EQ(DescribeResult(out), DescribeResult(in));
}

TEST_F(WireCodecTest, HeartbeatAndShutdownRoundtrip) {
  HeartbeatMsg beat;
  beat.units_completed = 42;
  const std::string hb = EncodeHeartbeat(beat);
  EXPECT_EQ(*PeekKind(hb), MessageKind::kHeartbeat);
  HeartbeatMsg out;
  ASSERT_TRUE(DecodeHeartbeat(hb, &out).ok());
  EXPECT_EQ(out.units_completed, 42u);

  const std::string quit = EncodeShutdown();
  EXPECT_EQ(*PeekKind(quit), MessageKind::kShutdown);
  EXPECT_TRUE(DecodeShutdown(quit).ok());
}

TEST_F(WireCodecTest, HelloCarriesCorpusHashSinceV3) {
  HelloMsg in;
  in.fingerprint = 0xfeedfacef00dULL;
  in.corpus_hash = 0xabcdef0123456789ULL;
  const std::string v3 = EncodeHello(in);
  HelloMsg out;
  ASSERT_TRUE(DecodeHello(v3, &out).ok());
  EXPECT_EQ(out.corpus_hash, in.corpus_hash);

  // A v2 sender's Hello has no corpus_hash field; it must decode (the
  // handshake rejects the version, not the bytes) with corpus_hash 0.
  HelloMsg v2_in = in;
  v2_in.protocol = 2;
  const std::string v2 = EncodeHello(v2_in);
  EXPECT_EQ(v2.size() + 8, v3.size());
  HelloMsg v2_out;
  ASSERT_TRUE(DecodeHello(v2, &v2_out).ok());
  EXPECT_EQ(v2_out.protocol, 2u);
  EXPECT_EQ(v2_out.fingerprint, in.fingerprint);
  EXPECT_EQ(v2_out.corpus_hash, 0u);
}

TEST_F(WireCodecTest, WorkAssignRefRoundtrip) {
  const WorkAssignRefMsg in = MakeRef();
  const std::string payload = EncodeWorkAssignRef(in, dict_);
  EXPECT_EQ(*PeekKind(payload), MessageKind::kWorkAssignRef);
  WorkAssignRefMsg out;
  ASSERT_TRUE(DecodeWorkAssignRef(payload, dict_, &out).ok());
  EXPECT_EQ(DescribeRef(out), DescribeRef(in));

  // Empty ranges and all-false flags are valid on the wire (the coordinator
  // never sends them, but the codec is total over its struct).
  WorkAssignRefMsg bare;
  bare.url = "http://b.com";
  const std::string bare_payload = EncodeWorkAssignRef(bare, dict_);
  WorkAssignRefMsg bare_out;
  ASSERT_TRUE(DecodeWorkAssignRef(bare_payload, dict_, &bare_out).ok());
  EXPECT_EQ(DescribeRef(bare_out), DescribeRef(bare));
}

TEST_F(WireCodecTest, WorkAssignRefTruncationAtEveryByteOffsetFails) {
  const std::string payload = EncodeWorkAssignRef(MakeRef(), dict_);
  for (size_t len = 0; len < payload.size(); ++len) {
    WorkAssignRefMsg out;
    EXPECT_FALSE(DecodeWorkAssignRef(payload.substr(0, len), dict_, &out).ok())
        << "WorkAssignRef truncated to " << len << " of " << payload.size();
  }
  WorkAssignRefMsg out;
  EXPECT_FALSE(DecodeWorkAssignRef(payload + "x", dict_, &out).ok());
}

TEST_F(WireCodecTest, WorkAssignRefSingleBitFlipsNeverDecodeEqual) {
  const WorkAssignRefMsg in = MakeRef();
  const std::string payload = EncodeWorkAssignRef(in, dict_);
  const std::string digest = DescribeRef(in);
  for (size_t i = 0; i < payload.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = payload;
      flipped[i] = static_cast<char>(flipped[i] ^ (1 << bit));
      WorkAssignRefMsg out;
      if (DecodeWorkAssignRef(flipped, dict_, &out).ok()) {
        EXPECT_NE(DescribeRef(out), digest)
            << "flip byte " << i << " bit " << bit;
      }
    }
  }
}

TEST_F(WireCodecTest, WorkAssignRefImplausibleRangeCountFailsFast) {
  // kind 'A', unit, assignment, flags, url, corpus hash, threshold, then a
  // range count claiming gigabytes with no range bytes behind it.
  std::string payload(1, 'A');
  AppendU64(&payload, 1);
  AppendU32(&payload, 1);
  payload.push_back(1);
  payload.push_back(1);
  AppendStr(&payload, "http://a.com");
  AppendU64(&payload, 0x1111);
  AppendU64(&payload, 0);
  AppendU32(&payload, 0x20000000u);
  WorkAssignRefMsg out;
  EXPECT_FALSE(DecodeWorkAssignRef(payload, dict_, &out).ok());
  EXPECT_TRUE(out.ranges.empty());
}

TEST_F(WireCodecTest, WorkAssignRefRejectsInvertedRangeAndBadFlags) {
  WorkAssignRefMsg in = MakeRef();
  in.ranges = {{100, 7}};  // inverted: first > last
  const std::string inverted = EncodeWorkAssignRef(in, dict_);
  WorkAssignRefMsg out;
  EXPECT_FALSE(DecodeWorkAssignRef(inverted, dict_, &out).ok());

  // Byte layout: kind(1) + unit(8) + assignment(4), then consolidate and
  // normalized flag bytes — any value but 0/1 is corruption.
  std::string payload = EncodeWorkAssignRef(MakeRef(), dict_);
  std::string bad = payload;
  bad[13] = 2;
  EXPECT_FALSE(DecodeWorkAssignRef(bad, dict_, &out).ok());
  bad = payload;
  bad[14] = static_cast<char>(0xff);
  EXPECT_FALSE(DecodeWorkAssignRef(bad, dict_, &out).ok());
}

TEST_F(WireCodecTest, PeekKindRejectsEmptyAndUnknown) {
  EXPECT_FALSE(PeekKind("").ok());
  EXPECT_FALSE(PeekKind("z").ok());
  EXPECT_FALSE(PeekKind(std::string(1, '\0')).ok());
}

TEST_F(WireCodecTest, DecodersRejectWrongKind) {
  const std::string hello = EncodeHello(HelloMsg{});
  WorkAssignMsg assign;
  EXPECT_FALSE(DecodeWorkAssign(hello, dict_, &assign).ok());
  WorkResultMsg result;
  EXPECT_FALSE(DecodeWorkResult(hello, dict_, &result).ok());
  HeartbeatMsg beat;
  EXPECT_FALSE(DecodeHeartbeat(hello, &beat).ok());
  EXPECT_FALSE(DecodeShutdown(hello).ok());
}

// Every strict prefix of a valid payload must fail decoding — the decoders
// consume the full structure and check nothing is left over, so there is
// no offset at which a truncation silently parses.
TEST_F(WireCodecTest, TruncationAtEveryByteOffsetFails) {
  const std::string assign = EncodeWorkAssign(MakeAssign(), dict_);
  for (size_t len = 0; len < assign.size(); ++len) {
    WorkAssignMsg out;
    EXPECT_FALSE(DecodeWorkAssign(assign.substr(0, len), dict_, &out).ok())
        << "WorkAssign truncated to " << len << " of " << assign.size();
  }
  const std::string result = EncodeWorkResult(MakeResult(), dict_);
  for (size_t len = 0; len < result.size(); ++len) {
    WorkResultMsg out;
    EXPECT_FALSE(DecodeWorkResult(result.substr(0, len), dict_, &out).ok())
        << "WorkResult truncated to " << len << " of " << result.size();
  }
  const std::string hello = EncodeHello(HelloMsg{});
  for (size_t len = 0; len < hello.size(); ++len) {
    HelloMsg out;
    EXPECT_FALSE(DecodeHello(hello.substr(0, len), &out).ok());
  }
  const std::string beat = EncodeHeartbeat(HeartbeatMsg{});
  for (size_t len = 0; len < beat.size(); ++len) {
    HeartbeatMsg out;
    EXPECT_FALSE(DecodeHeartbeat(beat.substr(0, len), &out).ok());
  }
}

// Trailing garbage after a well-formed message is corruption, not slack.
TEST_F(WireCodecTest, TrailingBytesRejected) {
  WorkAssignMsg assign_out;
  EXPECT_FALSE(DecodeWorkAssign(EncodeWorkAssign(MakeAssign(), dict_) + "x",
                                dict_, &assign_out)
                   .ok());
  WorkResultMsg result_out;
  EXPECT_FALSE(DecodeWorkResult(EncodeWorkResult(MakeResult(), dict_) + "x",
                                dict_, &result_out)
                   .ok());
  HelloMsg hello_out;
  EXPECT_FALSE(DecodeHello(EncodeHello(HelloMsg{}) + "x", &hello_out).ok());
  EXPECT_FALSE(DecodeShutdown(EncodeShutdown() + "x").ok());
}

// Flip every bit of every byte: the decode must either fail or yield a
// message observably different from the original. No flip may decode to an
// equal message — every encoded byte is semantic.
TEST_F(WireCodecTest, SingleBitFlipsNeverDecodeEqual) {
  const WorkAssignMsg assign_in = MakeAssign();
  const std::string assign = EncodeWorkAssign(assign_in, dict_);
  const std::string assign_digest = DescribeAssign(assign_in);
  for (size_t i = 0; i < assign.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = assign;
      flipped[i] = static_cast<char>(flipped[i] ^ (1 << bit));
      WorkAssignMsg out;
      if (DecodeWorkAssign(flipped, dict_, &out).ok()) {
        EXPECT_NE(DescribeAssign(out), assign_digest)
            << "flip byte " << i << " bit " << bit;
      }
    }
  }
  const WorkResultMsg result_in = MakeResult();
  const std::string result = EncodeWorkResult(result_in, dict_);
  const std::string result_digest = DescribeResult(result_in);
  for (size_t i = 0; i < result.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = result;
      flipped[i] = static_cast<char>(flipped[i] ^ (1 << bit));
      WorkResultMsg out;
      if (DecodeWorkResult(flipped, dict_, &out).ok()) {
        EXPECT_NE(DescribeResult(out), result_digest)
            << "flip byte " << i << " bit " << bit;
      }
    }
  }
}

// A length field claiming more elements than the payload could possibly
// hold must be rejected up front — before any resize tries to honor it.
TEST_F(WireCodecTest, ImplausibleCountsFailFastWithoutAllocating) {
  // kind 'a', unit, assignment, consolidate, url, then an absurd fact count
  // with no fact bytes behind it.
  std::string payload(1, 'a');
  AppendU64(&payload, 1);
  AppendU32(&payload, 1);
  payload.push_back(1);
  AppendStr(&payload, "http://a.com");
  AppendU32(&payload, 0x40000000u);
  WorkAssignMsg out;
  EXPECT_FALSE(DecodeWorkAssign(payload, dict_, &out).ok());
  EXPECT_TRUE(out.facts.empty());

  // A string length near u32 max inside Hello-sized data.
  std::string result(1, 'r');
  AppendU64(&result, 1);
  AppendU32(&result, 0);  // status kOk
  AppendU32(&result, 1);  // attempts
  AppendU32(&result, std::numeric_limits<uint32_t>::max());  // error length
  WorkResultMsg rout;
  EXPECT_FALSE(DecodeWorkResult(result, dict_, &rout).ok());
}

TEST_F(WireCodecTest, WorkResultRejectsOutOfRangeStatus) {
  std::string payload(1, 'r');
  AppendU64(&payload, 1);
  AppendU32(&payload, 250);  // far past kCancelled
  AppendU32(&payload, 1);
  AppendStr(&payload, "");
  AppendStr(&payload, "");  // empty slice blob is itself invalid too
  WorkResultMsg out;
  EXPECT_FALSE(DecodeWorkResult(payload, dict_, &out).ok());
}

TEST_F(WireCodecTest, WorkAssignRejectsNonBooleanConsolidate) {
  std::string payload = EncodeWorkAssign(MakeAssign(), dict_);
  // Byte layout: kind(1) + unit(8) + assignment(4), then consolidate.
  payload[13] = 2;
  WorkAssignMsg out;
  EXPECT_FALSE(DecodeWorkAssign(payload, dict_, &out).ok());
}

// Terms travel as strings; a payload naming a term the receiving dictionary
// never interned means the two sides loaded different corpora.
TEST_F(WireCodecTest, UnknownDictionaryTermIsCorruption) {
  const std::string assign = EncodeWorkAssign(MakeAssign(), dict_);
  const std::string result = EncodeWorkResult(MakeResult(), dict_);
  rdf::Dictionary other;  // empty: knows none of the terms
  WorkAssignMsg aout;
  EXPECT_FALSE(DecodeWorkAssign(assign, other, &aout).ok());
  WorkResultMsg rout;
  EXPECT_FALSE(DecodeWorkResult(result, other, &rout).ok());
}

}  // namespace
}  // namespace dist
}  // namespace midas
