// End-to-end exercises of the epoll HTTP server over real loopback
// sockets: keep-alive, pipelining, torn client writes, backpressure
// (max_inflight -> 503), graceful drain with an in-flight request, and the
// serve_read / serve_accept fault sites.

#include "midas/serve/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "midas/fault/fault.h"

namespace midas {
namespace serve {
namespace {

/// Minimal blocking test client: connect, write raw bytes, read one
/// response (Content-Length framed).
class RawClient {
 public:
  explicit RawClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
        << "connect failed: " << errno;
  }
  ~RawClient() { Close(); }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  void Send(std::string_view data) {
    size_t off = 0;
    while (off < data.size()) {
      ssize_t n = ::write(fd_, data.data() + off, data.size() - off);
      ASSERT_GT(n, 0) << "write failed: " << errno;
      off += static_cast<size_t>(n);
    }
  }

  /// Sends one byte at a time with a tiny pause — the client-side torn
  /// write that forces the server parser through every split point.
  void SendSlowly(std::string_view data) {
    for (char c : data) {
      Send(std::string_view(&c, 1));
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }

  /// Reads one full response; "" on EOF/error before the head completes.
  /// Buffers across calls — pipelined responses arriving in one read are
  /// handed out one at a time.
  std::string ReadResponse() {
    char chunk[4096];
    while (true) {
      size_t head_end = buf_.find("\r\n\r\n");
      if (head_end != std::string::npos) {
        head_end += 4;
        const size_t content_length =
            ParseContentLength(buf_.substr(0, head_end));
        if (buf_.size() >= head_end + content_length) {
          std::string response = buf_.substr(0, head_end + content_length);
          buf_.erase(0, head_end + content_length);
          return response;
        }
      }
      ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      if (n <= 0) return "";
      buf_.append(chunk, static_cast<size_t>(n));
    }
  }

  /// Reads until EOF (for Connection: close responses / server shutdown).
  std::string ReadAll() {
    char chunk[4096];
    ssize_t n;
    while ((n = ::read(fd_, chunk, sizeof(chunk))) > 0) {
      buf_.append(chunk, static_cast<size_t>(n));
    }
    std::string all = std::move(buf_);
    buf_.clear();
    return all;
  }

 private:
  static size_t ParseContentLength(const std::string& head) {
    std::string lower;
    lower.reserve(head.size());
    for (char c : head) {
      lower += static_cast<char>(
          c >= 'A' && c <= 'Z' ? c - 'A' + 'a' : c);
    }
    const size_t pos = lower.find("content-length:");
    if (pos == std::string::npos) return 0;
    return static_cast<size_t>(
        std::strtoull(lower.c_str() + pos + 15, nullptr, 10));
  }

  int fd_ = -1;
  std::string buf_;
};

int StatusOf(const std::string& response) {
  // "HTTP/1.1 200 OK\r\n..."
  if (response.size() < 12) return -1;
  return std::atoi(response.c_str() + 9);
}

std::string BodyOf(const std::string& response) {
  const size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

HttpServerOptions TestOptions() {
  HttpServerOptions options;
  options.port = 0;  // ephemeral
  options.num_threads = 4;
  return options;
}

HttpResponse EchoHandler(const HttpRequest& request,
                         const fault::CancelToken&) {
  HttpResponse response;
  response.status = 200;
  response.body = request.method + " " + request.target + "|" + request.body;
  return response;
}

TEST(HttpServerTest, ServesSimpleGet) {
  HttpServer server(TestOptions(), EchoHandler);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.port(), 0);

  RawClient client(server.port());
  client.Send("GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
  const std::string response = client.ReadResponse();
  EXPECT_EQ(StatusOf(response), 200);
  EXPECT_EQ(BodyOf(response), "GET /healthz|");
  server.Shutdown();
  EXPECT_EQ(server.requests_served(), 1u);
}

TEST(HttpServerTest, KeepAliveServesSequentialRequests) {
  HttpServer server(TestOptions(), EchoHandler);
  ASSERT_TRUE(server.Start().ok());

  RawClient client(server.port());
  for (int i = 0; i < 3; ++i) {
    client.Send("POST /r HTTP/1.1\r\nContent-Length: 1\r\n\r\n" +
                std::to_string(i));
    const std::string response = client.ReadResponse();
    ASSERT_EQ(StatusOf(response), 200) << "request " << i;
    EXPECT_EQ(BodyOf(response), "POST /r|" + std::to_string(i));
  }
  server.Shutdown();
  EXPECT_EQ(server.requests_served(), 3u);
}

TEST(HttpServerTest, TornClientWritesStillParse) {
  HttpServer server(TestOptions(), EchoHandler);
  ASSERT_TRUE(server.Start().ok());

  RawClient client(server.port());
  client.SendSlowly("POST /torn HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello");
  const std::string response = client.ReadResponse();
  EXPECT_EQ(StatusOf(response), 200);
  EXPECT_EQ(BodyOf(response), "POST /torn|hello");
  server.Shutdown();
}

TEST(HttpServerTest, PipelinedRequestsAnsweredInOrder) {
  HttpServer server(TestOptions(), EchoHandler);
  ASSERT_TRUE(server.Start().ok());

  RawClient client(server.port());
  client.Send(
      "GET /one HTTP/1.1\r\n\r\n"
      "GET /two HTTP/1.1\r\n\r\n"
      "GET /three HTTP/1.1\r\n\r\n");
  EXPECT_EQ(BodyOf(client.ReadResponse()), "GET /one|");
  EXPECT_EQ(BodyOf(client.ReadResponse()), "GET /two|");
  EXPECT_EQ(BodyOf(client.ReadResponse()), "GET /three|");
  server.Shutdown();
  EXPECT_EQ(server.requests_served(), 3u);
}

TEST(HttpServerTest, MalformedRequestGets400AndClose) {
  HttpServer server(TestOptions(), EchoHandler);
  ASSERT_TRUE(server.Start().ok());

  RawClient client(server.port());
  client.Send("NOT A REQUEST LINE AT ALL\r\n\r\n");
  const std::string response = client.ReadAll();  // server must close
  EXPECT_EQ(StatusOf(response), 400);
  server.Shutdown();
}

TEST(HttpServerTest, OversizedHeadersGet431) {
  HttpServerOptions options = TestOptions();
  options.limits.max_header_bytes = 256;
  HttpServer server(options, EchoHandler);
  ASSERT_TRUE(server.Start().ok());

  RawClient client(server.port());
  client.Send("GET / HTTP/1.1\r\nX-Big: " + std::string(1024, 'a') +
              "\r\n\r\n");
  EXPECT_EQ(StatusOf(client.ReadAll()), 431);
  server.Shutdown();
}

TEST(HttpServerTest, ThrowingHandlerBecomes500) {
  HttpServer server(TestOptions(),
                    [](const HttpRequest&,
                       const fault::CancelToken&) -> HttpResponse {
                      throw std::runtime_error("boom");
                    });
  ASSERT_TRUE(server.Start().ok());

  RawClient client(server.port());
  client.Send("GET / HTTP/1.1\r\n\r\n");
  const std::string response = client.ReadResponse();
  EXPECT_EQ(StatusOf(response), 500);
  // Connection survives a handler exception; a second request still works.
  client.Send("GET / HTTP/1.1\r\n\r\n");
  EXPECT_EQ(StatusOf(client.ReadResponse()), 500);
  server.Shutdown();
}

TEST(HttpServerTest, MaxInflightRejectsWith503) {
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> entered{0};

  HttpServerOptions options = TestOptions();
  options.max_inflight = 1;
  HttpServer server(options, [&](const HttpRequest&,
                                 const fault::CancelToken&) {
    entered.fetch_add(1);
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
    HttpResponse response;
    response.body = "slow";
    return response;
  });
  ASSERT_TRUE(server.Start().ok());

  RawClient blocker(server.port());
  blocker.Send("GET /slow HTTP/1.1\r\n\r\n");
  // Wait until the handler actually holds the single in-flight slot.
  while (entered.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  RawClient rejected(server.port());
  rejected.Send("GET /fast HTTP/1.1\r\n\r\n");
  const std::string overload = rejected.ReadResponse();
  EXPECT_EQ(StatusOf(overload), 503);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  EXPECT_EQ(BodyOf(blocker.ReadResponse()), "slow");
  server.Shutdown();
}

TEST(HttpServerTest, GracefulShutdownCompletesInflightRequest) {
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> entered{0};

  HttpServer server(TestOptions(), [&](const HttpRequest&,
                                       const fault::CancelToken&) {
    entered.fetch_add(1);
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
    HttpResponse response;
    response.body = "drained";
    return response;
  });
  ASSERT_TRUE(server.Start().ok());
  const uint16_t port = server.port();

  RawClient client(port);
  client.Send("GET /slow HTTP/1.1\r\n\r\n");
  while (entered.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Trigger the drain while the request is in flight, then release the
  // handler. The response must still arrive, then the connection closes.
  // Readiness, not a timed sleep: drain start closes the listener, so poll
  // until a fresh connect is refused before releasing the handler.
  server.ShutdownAsync();
  for (int i = 0; i < 5000; ++i) {
    int probe = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in probe_addr{};
    probe_addr.sin_family = AF_INET;
    probe_addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &probe_addr.sin_addr);
    const int rc = ::connect(
        probe, reinterpret_cast<sockaddr*>(&probe_addr), sizeof(probe_addr));
    ::close(probe);
    if (rc != 0) break;  // listener gone: the drain has begun
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();

  const std::string response = client.ReadAll();
  EXPECT_EQ(StatusOf(response), 200);
  EXPECT_EQ(BodyOf(response), "drained");
  server.Wait();
  server.Shutdown();
  EXPECT_EQ(server.requests_served(), 1u);

  // The listener is gone: new connections fail.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_NE(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  ::close(fd);
}

TEST(HttpServerTest, ShutdownIsIdempotentAndStartFailsOnBusyPort) {
  HttpServer server(TestOptions(), EchoHandler);
  ASSERT_TRUE(server.Start().ok());

  HttpServerOptions clash = TestOptions();
  clash.port = server.port();
  HttpServer dup(clash, EchoHandler);
  EXPECT_FALSE(dup.Start().ok());

  server.Shutdown();
  server.Shutdown();  // second call is a no-op
}

TEST(HttpServerTest, RequestDeadlineExpiresCancelToken) {
  HttpServerOptions options = TestOptions();
  options.request_deadline_ms = 10;
  HttpServer server(options, [](const HttpRequest&,
                                const fault::CancelToken& cancel) {
    // Cooperative handler: poll the token like the framework does.
    const auto give_up =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (!cancel.Expired() &&
           std::chrono::steady_clock::now() < give_up) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    HttpResponse response;
    response.body = cancel.Expired() ? "expired" : "never";
    return response;
  });
  ASSERT_TRUE(server.Start().ok());

  RawClient client(server.port());
  client.Send("GET /deadline HTTP/1.1\r\n\r\n");
  EXPECT_EQ(BodyOf(client.ReadResponse()), "expired");
  server.Shutdown();
}

#ifdef MIDAS_FAULT_INJECTION

TEST(HttpServerTest, ServeReadFaultTearsReadsButRequestsStillParse) {
  // serve_read truncates every socket read to one byte: the parser sees
  // the worst-case torn stream. Requests must still come out whole.
  fault::ScopedFaultSpec spec("site=serve_read");
  HttpServer server(TestOptions(), EchoHandler);
  ASSERT_TRUE(server.Start().ok());

  RawClient client(server.port());
  client.Send("POST /fault HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd");
  const std::string response = client.ReadResponse();
  EXPECT_EQ(StatusOf(response), 200);
  EXPECT_EQ(BodyOf(response), "POST /fault|abcd");
  EXPECT_GT(fault::FaultInjector::Global().fires(fault::kSiteServeRead), 0u);
  server.Shutdown();
}

TEST(HttpServerTest, ServeAcceptFaultDropsConnections) {
  fault::ScopedFaultSpec spec("site=serve_accept");
  HttpServer server(TestOptions(), EchoHandler);
  ASSERT_TRUE(server.Start().ok());

  RawClient client(server.port());
  client.Send("GET / HTTP/1.1\r\n\r\n");
  // The server accepted then immediately closed the connection: no bytes.
  EXPECT_EQ(client.ReadAll(), "");
  EXPECT_GT(fault::FaultInjector::Global().fires(fault::kSiteServeAccept),
            0u);
  server.Shutdown();
  EXPECT_EQ(server.requests_served(), 0u);
}

#endif  // MIDAS_FAULT_INJECTION

}  // namespace
}  // namespace serve
}  // namespace midas
