#include "midas/serve/result_cache.h"

#include <gtest/gtest.h>

#include <string>

namespace midas {
namespace serve {
namespace {

TEST(ResultCacheTest, MissThenHit) {
  ResultCache cache(4);
  std::string body;
  EXPECT_FALSE(cache.Lookup("k", &body));
  cache.Insert("k", "payload");
  ASSERT_TRUE(cache.Lookup("k", &body));
  EXPECT_EQ(body, "payload");
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsed) {
  ResultCache cache(2);
  cache.Insert("a", "1");
  cache.Insert("b", "2");
  std::string body;
  // Touch "a" so "b" becomes the LRU victim.
  ASSERT_TRUE(cache.Lookup("a", &body));
  cache.Insert("c", "3");
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.Lookup("a", &body));
  EXPECT_FALSE(cache.Lookup("b", &body));
  EXPECT_TRUE(cache.Lookup("c", &body));
}

TEST(ResultCacheTest, InsertEvictionOrderWithoutLookups) {
  ResultCache cache(2);
  cache.Insert("a", "1");
  cache.Insert("b", "2");
  cache.Insert("c", "3");  // evicts "a", the oldest insert
  std::string body;
  EXPECT_FALSE(cache.Lookup("a", &body));
  EXPECT_TRUE(cache.Lookup("b", &body));
  EXPECT_TRUE(cache.Lookup("c", &body));
}

TEST(ResultCacheTest, ReinsertRefreshesBodyAndRecency) {
  ResultCache cache(2);
  cache.Insert("a", "old");
  cache.Insert("b", "2");
  cache.Insert("a", "new");  // refresh, no growth
  EXPECT_EQ(cache.size(), 2u);
  cache.Insert("c", "3");  // "b" is now LRU
  std::string body;
  ASSERT_TRUE(cache.Lookup("a", &body));
  EXPECT_EQ(body, "new");
  EXPECT_FALSE(cache.Lookup("b", &body));
}

TEST(ResultCacheTest, ZeroCapacityDisablesCaching) {
  ResultCache cache(0);
  cache.Insert("k", "payload");
  std::string body;
  EXPECT_FALSE(cache.Lookup("k", &body));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ResultCacheTest, CapacityOne) {
  ResultCache cache(1);
  cache.Insert("a", "1");
  cache.Insert("b", "2");
  std::string body;
  EXPECT_FALSE(cache.Lookup("a", &body));
  ASSERT_TRUE(cache.Lookup("b", &body));
  EXPECT_EQ(body, "2");
}

}  // namespace
}  // namespace serve
}  // namespace midas
