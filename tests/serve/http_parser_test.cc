// Fuzz-style hardening suite for the incremental HTTP/1.1 request parser:
// every request must parse identically no matter where torn reads split the
// byte stream, pipelined requests must surface in order, and hostile
// framing must map to the right 4xx/5xx status.

#include "midas/serve/http_server.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace midas {
namespace serve {
namespace {

constexpr char kSimpleGet[] = "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";
constexpr char kPost[] =
    "POST /discover HTTP/1.1\r\n"
    "Host: x\r\n"
    "Content-Type: application/json\r\n"
    "Content-Length: 11\r\n"
    "\r\n"
    "{\"a\":true}\n";

TEST(HttpParserTest, ParsesSimpleRequest) {
  HttpParser parser;
  parser.Feed(kSimpleGet);
  HttpRequest request;
  ASSERT_EQ(parser.Next(&request), HttpParser::Result::kRequest);
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.target, "/healthz");
  EXPECT_EQ(request.version, "HTTP/1.1");
  ASSERT_NE(request.FindHeader("host"), nullptr);
  EXPECT_EQ(*request.FindHeader("host"), "x");
  EXPECT_TRUE(request.body.empty());
  EXPECT_TRUE(request.keep_alive());
  EXPECT_EQ(parser.buffered_bytes(), 0u);
  EXPECT_EQ(parser.Next(&request), HttpParser::Result::kNeedMore);
}

TEST(HttpParserTest, HeaderNamesAreCaseInsensitive) {
  HttpParser parser;
  parser.Feed(
      "POST / HTTP/1.1\r\ncOnTeNt-LeNgTh: 2\r\nX-Custom: A B\r\n\r\nok");
  HttpRequest request;
  ASSERT_EQ(parser.Next(&request), HttpParser::Result::kRequest);
  EXPECT_EQ(request.body, "ok");
  ASSERT_NE(request.FindHeader("x-custom"), nullptr);
  EXPECT_EQ(*request.FindHeader("x-custom"), "A B");
}

TEST(HttpParserTest, SplitAtEveryByteBoundary) {
  // The incremental contract: feeding [0,i) then [i,n) must yield exactly
  // the same request for every split point, including splits inside the
  // request line, a header name, the CRLFCRLF terminator, and the body.
  const std::string raw = kPost;
  for (size_t split = 0; split <= raw.size(); ++split) {
    HttpParser parser;
    HttpRequest request;
    parser.Feed(raw.substr(0, split));
    const auto first = parser.Next(&request);
    if (split < raw.size()) {
      ASSERT_EQ(first, HttpParser::Result::kNeedMore) << "split=" << split;
      parser.Feed(raw.substr(split));
      ASSERT_EQ(parser.Next(&request), HttpParser::Result::kRequest)
          << "split=" << split;
    } else {
      ASSERT_EQ(first, HttpParser::Result::kRequest);
    }
    EXPECT_EQ(request.method, "POST");
    EXPECT_EQ(request.target, "/discover");
    EXPECT_EQ(request.body, "{\"a\":true}\n");
    EXPECT_EQ(parser.buffered_bytes(), 0u) << "split=" << split;
  }
}

TEST(HttpParserTest, OneByteAtATime) {
  const std::string raw = std::string(kPost) + kSimpleGet;
  HttpParser parser;
  std::vector<HttpRequest> requests;
  for (char c : raw) {
    parser.Feed(std::string_view(&c, 1));
    HttpRequest request;
    while (parser.Next(&request) == HttpParser::Result::kRequest) {
      requests.push_back(request);
    }
  }
  ASSERT_EQ(requests.size(), 2u);
  EXPECT_EQ(requests[0].method, "POST");
  EXPECT_EQ(requests[1].method, "GET");
}

TEST(HttpParserTest, PipelinedRequestsSurfaceInOrder) {
  HttpParser parser;
  parser.Feed(std::string(kSimpleGet) + kPost + kSimpleGet);
  HttpRequest request;
  ASSERT_EQ(parser.Next(&request), HttpParser::Result::kRequest);
  EXPECT_EQ(request.method, "GET");
  ASSERT_EQ(parser.Next(&request), HttpParser::Result::kRequest);
  EXPECT_EQ(request.method, "POST");
  EXPECT_EQ(request.body, "{\"a\":true}\n");
  ASSERT_EQ(parser.Next(&request), HttpParser::Result::kRequest);
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(parser.Next(&request), HttpParser::Result::kNeedMore);
}

TEST(HttpParserTest, OversizedHeadersAre431) {
  HttpParser::Limits limits;
  limits.max_header_bytes = 128;
  HttpParser parser(limits);
  // Terminated header section over the limit.
  parser.Feed("GET / HTTP/1.1\r\nX-Big: " + std::string(200, 'a') +
              "\r\n\r\n");
  HttpRequest request;
  ASSERT_EQ(parser.Next(&request), HttpParser::Result::kError);
  EXPECT_EQ(parser.error_status(), 431);

  // Unterminated growth must also trip the limit, not buffer forever.
  HttpParser slow(limits);
  slow.Feed("GET / HTTP/1.1\r\nX-Big: " + std::string(200, 'a'));
  ASSERT_EQ(slow.Next(&request), HttpParser::Result::kError);
  EXPECT_EQ(slow.error_status(), 431);
}

TEST(HttpParserTest, OversizedBodyIs413) {
  HttpParser::Limits limits;
  limits.max_body_bytes = 16;
  HttpParser parser(limits);
  parser.Feed("POST / HTTP/1.1\r\nContent-Length: 17\r\n\r\n");
  HttpRequest request;
  ASSERT_EQ(parser.Next(&request), HttpParser::Result::kError);
  EXPECT_EQ(parser.error_status(), 413);
}

TEST(HttpParserTest, ChunkedTransferIs501) {
  HttpParser parser;
  parser.Feed("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
  HttpRequest request;
  ASSERT_EQ(parser.Next(&request), HttpParser::Result::kError);
  EXPECT_EQ(parser.error_status(), 501);
}

TEST(HttpParserTest, MalformedFramingIs400) {
  const char* bad[] = {
      "GARBAGE\r\n\r\n",                          // no spaces
      "GET /x HTTP/1.1 extra\r\n\r\n",            // 4 request-line parts
      "GET /x HTTP/2\r\n\r\n",                    // unsupported version
      "G@T /x HTTP/1.1\r\n\r\n",                  // bad method token
      "GET x HTTP/1.1\r\n\r\n",                   // target not origin-form
      "GET /x HTTP/1.1\r\nNoColonHere\r\n\r\n",   // header without ':'
      "GET /x HTTP/1.1\r\n: empty\r\n\r\n",       // empty header name
      "GET /x HTTP/1.1\r\nA: 1\r\n  folded\r\n\r\n",  // obs-fold
      "POST /x HTTP/1.1\r\nContent-Length: nan\r\n\r\n",
      "POST /x HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\n",
  };
  for (const char* raw : bad) {
    HttpParser parser;
    parser.Feed(raw);
    HttpRequest request;
    ASSERT_EQ(parser.Next(&request), HttpParser::Result::kError) << raw;
    EXPECT_EQ(parser.error_status(), 400) << raw;
    // Terminal: stays failed even with more (valid) bytes.
    parser.Feed(kSimpleGet);
    EXPECT_EQ(parser.Next(&request), HttpParser::Result::kError) << raw;
  }
}

TEST(HttpParserTest, KeepAliveSemantics) {
  const auto parse = [](const std::string& raw) {
    HttpParser parser;
    parser.Feed(raw);
    HttpRequest request;
    EXPECT_EQ(parser.Next(&request), HttpParser::Result::kRequest);
    return request;
  };
  EXPECT_TRUE(parse("GET / HTTP/1.1\r\n\r\n").keep_alive());
  EXPECT_FALSE(
      parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").keep_alive());
  EXPECT_FALSE(
      parse("GET / HTTP/1.1\r\nConnection: Close\r\n\r\n").keep_alive());
  EXPECT_FALSE(parse("GET / HTTP/1.0\r\n\r\n").keep_alive());
  EXPECT_TRUE(
      parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").keep_alive());
}

TEST(HttpParserTest, IgnoresLeadingEmptyLines) {
  HttpParser parser;
  parser.Feed(std::string("\r\n\r\n") + kSimpleGet);
  HttpRequest request;
  ASSERT_EQ(parser.Next(&request), HttpParser::Result::kRequest);
  EXPECT_EQ(request.target, "/healthz");
}

TEST(HttpParserTest, ZeroLengthBodyPost) {
  HttpParser parser;
  parser.Feed("POST /ingest HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
  HttpRequest request;
  ASSERT_EQ(parser.Next(&request), HttpParser::Result::kRequest);
  EXPECT_TRUE(request.body.empty());
}

}  // namespace
}  // namespace serve
}  // namespace midas
