// DiscoveryService: routing, cache semantics, ingest/staleness contract,
// and the end-to-end acceptance test for `midas serve` — after an ingest,
// a warm /discover must return slices bit-identical to a cold run over the
// merged corpus while re-detecting only the delta-touched sources.

#include "midas/serve/discovery_service.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/corpus_fixture.h"
#include "midas/extract/extraction.h"
#include "midas/fault/cancel.h"
#include "midas/fault/fault.h"
#include "midas/rdf/knowledge_base.h"
#include "midas/util/json.h"
#include "midas/web/web_source.h"

namespace midas {
namespace serve {
namespace {

HttpRequest MakeRequest(std::string method, std::string target,
                        std::string body = "") {
  HttpRequest request;
  request.method = std::move(method);
  request.target = std::move(target);
  request.version = "HTTP/1.1";
  request.body = std::move(body);
  return request;
}

const std::string* HeaderOf(const HttpResponse& response,
                            std::string_view name) {
  for (const auto& [key, value] : response.headers) {
    if (key == name) return &value;
  }
  return nullptr;
}

JsonValue ParseBody(const HttpResponse& response) {
  JsonValue value;
  Status status = JsonValue::Parse(response.body, &value);
  EXPECT_TRUE(status.ok()) << response.body;
  return value;
}

std::unique_ptr<DiscoveryService> MakeService(
    DiscoveryServiceOptions options = {}) {
  auto dict = std::make_shared<rdf::Dictionary>();
  web::Corpus corpus(dict);
  tests::FillSectionedCorpus(&corpus);
  rdf::KnowledgeBase kb(dict);
  return std::make_unique<DiscoveryService>(std::move(corpus), std::move(kb),
                                            options);
}

class DiscoveryServiceTest : public ::testing::Test {
 protected:
  HttpResponse Call(DiscoveryService* service, const HttpRequest& request) {
    return service->Handle(request, token_);
  }

  fault::CancelToken token_;
};

TEST_F(DiscoveryServiceTest, HealthzReportsCorpusShape) {
  auto service = MakeService();
  const HttpResponse response =
      Call(service.get(), MakeRequest("GET", "/healthz"));
  ASSERT_EQ(response.status, 200);
  const JsonValue body = ParseBody(response);
  EXPECT_EQ(body.Get("status")->AsString(), "ok");
  EXPECT_EQ(body.Get("corpus_version")->AsInt(), 1);
  // FillSectionedCorpus: 4 sections x 6 entities, one fact each.
  EXPECT_EQ(body.Get("facts")->AsInt(), 24);
  EXPECT_GT(body.Get("sources")->AsInt(), 0);
  EXPECT_EQ(body.Get("memo_entries")->AsInt(), 0);
}

TEST_F(DiscoveryServiceTest, MetriczReturnsParsableJson) {
  auto service = MakeService();
  const HttpResponse response =
      Call(service.get(), MakeRequest("GET", "/metricz"));
  ASSERT_EQ(response.status, 200);
  EXPECT_TRUE(ParseBody(response).IsObject());
}

TEST_F(DiscoveryServiceTest, RoutingErrors) {
  auto service = MakeService();
  EXPECT_EQ(Call(service.get(), MakeRequest("GET", "/nope")).status, 404);
  EXPECT_EQ(Call(service.get(), MakeRequest("GET", "/discover")).status, 405);
  EXPECT_EQ(Call(service.get(), MakeRequest("PUT", "/ingest")).status, 405);
  EXPECT_EQ(Call(service.get(), MakeRequest("POST", "/healthz")).status, 405);
  EXPECT_EQ(Call(service.get(), MakeRequest("POST", "/metricz")).status, 405);
}

TEST_F(DiscoveryServiceTest, QueryStringIsStrippedFromRoute) {
  auto service = MakeService();
  EXPECT_EQ(Call(service.get(), MakeRequest("GET", "/healthz?verbose=1"))
                .status,
            200);
}

TEST_F(DiscoveryServiceTest, DiscoverRejectsBadOptions) {
  auto service = MakeService();
  EXPECT_EQ(
      Call(service.get(), MakeRequest("POST", "/discover", "not json")).status,
      400);
  EXPECT_EQ(Call(service.get(),
                 MakeRequest("POST", "/discover", "{\"method\":\"bogus\"}"))
                .status,
            400);
  EXPECT_EQ(Call(service.get(),
                 MakeRequest("POST", "/discover", "{\"top_k\":-1}"))
                .status,
            400);
  EXPECT_EQ(Call(service.get(),
                 MakeRequest("POST", "/discover", "{\"deadline_ms\":-5}"))
                .status,
            400);
  EXPECT_EQ(Call(service.get(), MakeRequest("POST", "/discover", "[1,2]"))
                .status,
            400);
}

TEST_F(DiscoveryServiceTest, IngestRejectsMalformedDeltas) {
  auto service = MakeService();
  EXPECT_EQ(Call(service.get(), MakeRequest("POST", "/ingest", "nope")).status,
            400);
  EXPECT_EQ(Call(service.get(), MakeRequest("POST", "/ingest", "{}")).status,
            400);
  EXPECT_EQ(Call(service.get(),
                 MakeRequest("POST", "/ingest", "{\"facts\":1}"))
                .status,
            400);
  const HttpResponse response = Call(
      service.get(),
      MakeRequest("POST", "/ingest",
                  "{\"facts\":[{\"url\":\"http://b.com/x\",\"subject\":1}]}"));
  EXPECT_EQ(response.status, 400);
  EXPECT_NE(response.body.find("facts[0]"), std::string::npos);
  // Nothing applied, version unchanged.
  EXPECT_EQ(service->corpus_version(), 1u);
}

TEST_F(DiscoveryServiceTest, DiscoverCachesCompleteResults) {
  auto service = MakeService();
  const HttpRequest request = MakeRequest("POST", "/discover", "{}");

  const HttpResponse cold = Call(service.get(), request);
  ASSERT_EQ(cold.status, 200);
  ASSERT_NE(HeaderOf(cold, "X-Midas-Cache"), nullptr);
  EXPECT_EQ(*HeaderOf(cold, "X-Midas-Cache"), "miss");
  const JsonValue cold_body = ParseBody(cold);
  EXPECT_FALSE(cold_body.Get("partial")->AsBool(true));
  EXPECT_GT(cold_body.Get("stats")->Get("memo_misses")->AsInt(), 0);
  EXPECT_EQ(cold_body.Get("stats")->Get("memo_hits")->AsInt(), 0);

  const HttpResponse warm = Call(service.get(), request);
  ASSERT_EQ(warm.status, 200);
  EXPECT_EQ(*HeaderOf(warm, "X-Midas-Cache"), "hit");
  EXPECT_EQ(warm.body, cold.body) << "cache hit must be byte-identical";

  // cache=false bypasses the cache but hits the memo: zero re-detections.
  const HttpResponse uncached = Call(
      service.get(), MakeRequest("POST", "/discover", "{\"cache\":false}"));
  ASSERT_EQ(uncached.status, 200);
  EXPECT_EQ(*HeaderOf(uncached, "X-Midas-Cache"), "miss");
  const JsonValue uncached_body = ParseBody(uncached);
  EXPECT_EQ(uncached_body.Get("stats")->Get("memo_misses")->AsInt(), 0);
  EXPECT_EQ(uncached_body.Get("stats")->Get("memo_hits")->AsInt(),
            cold_body.Get("stats")->Get("shards_processed")->AsInt());
  EXPECT_EQ(uncached_body.Get("slices")->Dump(),
            cold_body.Get("slices")->Dump());
}

TEST_F(DiscoveryServiceTest, DifferentOptionsGetDifferentCacheEntries) {
  auto service = MakeService();
  ASSERT_EQ(Call(service.get(), MakeRequest("POST", "/discover", "{}")).status,
            200);
  // Same corpus version, different cost model: must not hit.
  const HttpResponse other = Call(
      service.get(), MakeRequest("POST", "/discover", "{\"f_p\":99.0}"));
  ASSERT_EQ(other.status, 200);
  EXPECT_EQ(*HeaderOf(other, "X-Midas-Cache"), "miss");
  // Deadline is excluded from the key: a budgeted re-ask of a cached
  // complete result is a hit.
  const HttpResponse budgeted = Call(
      service.get(),
      MakeRequest("POST", "/discover", "{\"deadline_ms\":60000}"));
  ASSERT_EQ(budgeted.status, 200);
  EXPECT_EQ(*HeaderOf(budgeted, "X-Midas-Cache"), "hit");
}

TEST_F(DiscoveryServiceTest, TopKTruncatesSlicesNotStats) {
  auto service = MakeService();
  // naive has no hierarchy consolidation, so each page keeps its own slice
  // and there is something to truncate.
  const HttpResponse all = Call(
      service.get(),
      MakeRequest("POST", "/discover",
                  "{\"method\":\"naive\",\"top_k\":0}"));
  ASSERT_EQ(all.status, 200);
  const JsonValue all_body = ParseBody(all);
  const int64_t total = all_body.Get("num_slices")->AsInt();
  ASSERT_GT(total, 1) << "fixture must produce multiple slices";

  const HttpResponse one = Call(
      service.get(),
      MakeRequest("POST", "/discover",
                  "{\"method\":\"naive\",\"top_k\":1}"));
  const JsonValue one_body = ParseBody(one);
  EXPECT_EQ(one_body.Get("num_slices")->AsInt(), total);
  EXPECT_EQ(one_body.Get("slices")->size(), 1u);
  EXPECT_EQ(one_body.Get("slices")->at(0).Dump(),
            all_body.Get("slices")->at(0).Dump());
}

TEST_F(DiscoveryServiceTest, BaselineMethodsAreServed) {
  auto service = MakeService();
  for (const char* method : {"greedy", "aggcluster", "naive"}) {
    const HttpResponse response = Call(
        service.get(),
        MakeRequest("POST", "/discover",
                    std::string("{\"method\":\"") + method + "\"}"));
    ASSERT_EQ(response.status, 200) << method;
    EXPECT_EQ(ParseBody(response).Get("method")->AsString(), method);
  }
}

TEST_F(DiscoveryServiceTest, IngestAppliesDeltaAndBumpsVersion) {
  auto service = MakeService();
  const HttpResponse response = Call(
      service.get(),
      MakeRequest(
          "POST", "/ingest",
          "{\"facts\":["
          // Two fresh facts on a brand-new page.
          "{\"url\":\"http://b.com/x/page.htm\",\"subject\":\"n0\","
          "\"predicate\":\"cat\",\"object\":\"rocket\"},"
          "{\"url\":\"http://b.com/x/page.htm\",\"subject\":\"n1\","
          "\"predicate\":\"cat\",\"object\":\"rocket\"},"
          // Exact duplicate of a fixture fact.
          "{\"url\":\"http://a.com/sec0/page.htm\",\"subject\":\"e0_0\","
          "\"predicate\":\"cat\",\"object\":\"rocket\"},"
          // Below the confidence threshold.
          "{\"url\":\"http://c.com/y\",\"subject\":\"low\","
          "\"predicate\":\"cat\",\"object\":\"rocket\","
          "\"confidence\":0.1}"
          "]}"));
  ASSERT_EQ(response.status, 200);
  const JsonValue body = ParseBody(response);
  EXPECT_EQ(body.Get("added")->AsInt(), 2);
  EXPECT_EQ(body.Get("duplicates")->AsInt(), 1);
  EXPECT_EQ(body.Get("below_threshold")->AsInt(), 1);
  EXPECT_EQ(body.Get("corpus_version")->AsInt(), 2);
  const JsonValue* touched = body.Get("touched_sources");
  ASSERT_EQ(touched->size(), 1u);
  EXPECT_NE(touched->at(0).AsString().find("b.com"), std::string::npos);
  EXPECT_EQ(service->corpus_version(), 2u);

  // A delta that adds nothing must not bump the version (the result cache
  // stays valid).
  const HttpResponse noop = Call(
      service.get(),
      MakeRequest("POST", "/ingest",
                  "{\"facts\":[{\"url\":\"http://a.com/sec0/page.htm\","
                  "\"subject\":\"e0_0\",\"predicate\":\"cat\","
                  "\"object\":\"rocket\"}]}"));
  ASSERT_EQ(noop.status, 200);
  EXPECT_EQ(ParseBody(noop).Get("added")->AsInt(), 0);
  EXPECT_EQ(service->corpus_version(), 2u);
}

TEST_F(DiscoveryServiceTest, IngestInvalidatesResultCache) {
  auto service = MakeService();
  const HttpRequest request = MakeRequest("POST", "/discover", "{}");
  ASSERT_EQ(Call(service.get(), request).status, 200);
  ASSERT_EQ(*HeaderOf(Call(service.get(), request), "X-Midas-Cache"), "hit");

  ASSERT_EQ(Call(service.get(),
                 MakeRequest("POST", "/ingest",
                             "{\"facts\":[{\"url\":\"http://b.com/z\","
                             "\"subject\":\"s\",\"predicate\":\"cat\","
                             "\"object\":\"rocket\"}]}"))
                .status,
            200);
  // New corpus version => new cache key => full lookup miss.
  const HttpResponse after = Call(service.get(), request);
  ASSERT_EQ(after.status, 200);
  EXPECT_EQ(*HeaderOf(after, "X-Midas-Cache"), "miss");
  EXPECT_EQ(ParseBody(after).Get("corpus_version")->AsInt(), 2);
}

// The acceptance test for the whole serve stack: ingest-then-discover must
// be *incrementally* computed (only the delta-touched ancestry re-detects)
// yet *bit-identical* to throwing the warm state away and re-running cold
// over the merged corpus.
TEST_F(DiscoveryServiceTest, IngestThenDiscoverMatchesColdRunOverMergedCorpus) {
  auto service = MakeService();
  // Cold run to populate the memo (cache bypassed so stats are live).
  const HttpRequest uncached =
      MakeRequest("POST", "/discover", "{\"cache\":false}");
  const JsonValue cold = ParseBody(Call(service.get(), uncached));
  const int64_t shards = cold.Get("stats")->Get("shards_processed")->AsInt();
  ASSERT_GT(shards, 0);
  EXPECT_EQ(cold.Get("stats")->Get("memo_misses")->AsInt(), shards);

  // The delta: two new entities on an existing page.
  const std::string delta_json =
      "{\"facts\":["
      "{\"url\":\"http://a.com/sec0/page.htm\",\"subject\":\"fresh0\","
      "\"predicate\":\"cat\",\"object\":\"rocket\"},"
      "{\"url\":\"http://a.com/sec0/page.htm\",\"subject\":\"fresh1\","
      "\"predicate\":\"cat\",\"object\":\"rocket\"}"
      "]}";
  const HttpResponse ingest =
      Call(service.get(), MakeRequest("POST", "/ingest", delta_json));
  ASSERT_EQ(ingest.status, 200);
  ASSERT_EQ(ParseBody(ingest).Get("added")->AsInt(), 2);

  // Warm discover: only the touched page and its section/host ancestors
  // lose memo validity — 3 re-detections, everything else hits.
  const JsonValue warm = ParseBody(Call(service.get(), uncached));
  EXPECT_EQ(warm.Get("corpus_version")->AsInt(), 2);
  EXPECT_EQ(warm.Get("stats")->Get("memo_misses")->AsInt(), 3)
      << "page + section + host re-detect";
  EXPECT_EQ(warm.Get("stats")->Get("memo_hits")->AsInt(), shards - 3);

  // Reference: a cold service over the equivalent merged corpus.
  auto dict = std::make_shared<rdf::Dictionary>();
  web::Corpus merged(dict);
  tests::FillSectionedCorpus(&merged);
  std::vector<extract::RawExtractedFact> delta;
  for (const char* subject : {"fresh0", "fresh1"}) {
    extract::RawExtractedFact fact;
    fact.url = "http://a.com/sec0/page.htm";
    fact.subject = subject;
    fact.predicate = "cat";
    fact.object = "rocket";
    delta.push_back(fact);
  }
  ASSERT_EQ(extract::ApplyFactDelta(delta, 0.7, &merged).added, 2u);
  rdf::KnowledgeBase kb(dict);
  DiscoveryService reference(std::move(merged), std::move(kb));
  const JsonValue ref = ParseBody(Call(&reference, uncached));

  EXPECT_EQ(warm.Get("slices")->Dump(), ref.Get("slices")->Dump())
      << "incremental result must be bit-identical to a cold full re-run";
  EXPECT_EQ(warm.Get("num_slices")->AsInt(), ref.Get("num_slices")->AsInt());
}

#ifdef MIDAS_FAULT_INJECTION

TEST_F(DiscoveryServiceTest, PartialResultsAreNeverCached) {
  auto service = MakeService();
  const HttpRequest request =
      MakeRequest("POST", "/discover", "{\"deadline_ms\":1}");
  {
    // Slow every shard so the 1 ms budget is guaranteed to expire.
    fault::ScopedFaultSpec spec("site=slow_shard,delay_ms=50");
    const HttpResponse partial = Call(service.get(), request);
    ASSERT_EQ(partial.status, 200);
    EXPECT_TRUE(ParseBody(partial).Get("partial")->AsBool(false));
    EXPECT_EQ(*HeaderOf(partial, "X-Midas-Cache"), "skip");
  }
  // The identical query re-runs (and completes): no stale partial serve.
  const HttpResponse full = Call(service.get(), request);
  ASSERT_EQ(full.status, 200);
  EXPECT_EQ(*HeaderOf(full, "X-Midas-Cache"), "miss");
  EXPECT_FALSE(ParseBody(full).Get("partial")->AsBool(true));
}

#endif  // MIDAS_FAULT_INJECTION

}  // namespace
}  // namespace serve
}  // namespace midas
