// Unit tests of the midas::fault subsystem: spec-grammar parsing, the
// determinism contract (decisions are a pure function of seed/site/key),
// fire counting and caps, RAII arming, and CancelToken semantics.

#include "midas/fault/fault.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "midas/fault/cancel.h"
#include "midas/obs/metrics.h"

namespace midas {
namespace fault {
namespace {

class FaultInjectorTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Global().Disarm(); }
};

TEST_F(FaultInjectorTest, ParsesFullGrammar) {
  std::vector<SiteSpec> specs;
  ASSERT_TRUE(FaultInjector::ParseSpec(
                  "site=detector,rate=0.05,seed=42;"
                  "site=slow_shard,delay_ms=10,max_fires=3",
                  &specs)
                  .ok());
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].site, "detector");
  EXPECT_DOUBLE_EQ(specs[0].rate, 0.05);
  EXPECT_EQ(specs[0].seed, 42u);
  EXPECT_EQ(specs[1].site, "slow_shard");
  EXPECT_DOUBLE_EQ(specs[1].rate, 1.0);
  EXPECT_EQ(specs[1].delay_ms, 10u);
  EXPECT_EQ(specs[1].max_fires, 3u);
}

TEST_F(FaultInjectorTest, RejectsMalformedSpecs) {
  std::vector<SiteSpec> specs;
  // A clause must lead with site=.
  EXPECT_FALSE(FaultInjector::ParseSpec("rate=0.5", &specs).ok());
  // Unknown parameter.
  EXPECT_FALSE(
      FaultInjector::ParseSpec("site=detector,bogus=1", &specs).ok());
  // Rate outside [0, 1].
  EXPECT_FALSE(
      FaultInjector::ParseSpec("site=detector,rate=1.5", &specs).ok());
  // Non-numeric value.
  EXPECT_FALSE(
      FaultInjector::ParseSpec("site=detector,seed=abc", &specs).ok());
}

TEST_F(FaultInjectorTest, BadSpecLeavesPreviousArmingUntouched) {
  auto& injector = FaultInjector::Global();
  ASSERT_TRUE(injector.Configure("site=detector,rate=1").ok());
  EXPECT_FALSE(injector.Configure("site=detector,rate=nope").ok());
  EXPECT_TRUE(injector.armed());
  EXPECT_TRUE(injector.ShouldFire(kSiteDetector, "anything"));
}

TEST_F(FaultInjectorTest, EmptySpecDisarms) {
  auto& injector = FaultInjector::Global();
  ASSERT_TRUE(injector.Configure("site=detector,rate=1").ok());
  ASSERT_TRUE(injector.Configure("").ok());
  EXPECT_FALSE(injector.armed());
  EXPECT_FALSE(injector.ShouldFire(kSiteDetector, "anything"));
}

TEST_F(FaultInjectorTest, DecisionsAreDeterministicPerSeedSiteKey) {
  auto& injector = FaultInjector::Global();
  ASSERT_TRUE(injector.Configure("site=detector,rate=0.5,seed=7").ok());
  std::vector<bool> first;
  for (int k = 0; k < 64; ++k) {
    first.push_back(
        injector.ShouldFire(kSiteDetector, "key" + std::to_string(k)));
  }
  // Re-arming the identical spec replays the identical decisions.
  ASSERT_TRUE(injector.Configure("site=detector,rate=0.5,seed=7").ok());
  for (int k = 0; k < 64; ++k) {
    EXPECT_EQ(injector.ShouldFire(kSiteDetector, "key" + std::to_string(k)),
              first[k])
        << "key" << k;
  }
  // A different seed gives a different (still ~rate-sized) decision set.
  ASSERT_TRUE(injector.Configure("site=detector,rate=0.5,seed=8").ok());
  int differing = 0;
  for (int k = 0; k < 64; ++k) {
    if (injector.ShouldFire(kSiteDetector, "key" + std::to_string(k)) !=
        first[k]) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0);
}

TEST_F(FaultInjectorTest, RateBoundsAreExact) {
  auto& injector = FaultInjector::Global();
  ASSERT_TRUE(injector.Configure("site=detector,rate=1").ok());
  for (int k = 0; k < 32; ++k) {
    EXPECT_TRUE(injector.ShouldFire(kSiteDetector, std::to_string(k)));
  }
  ASSERT_TRUE(injector.Configure("site=detector,rate=0").ok());
  for (int k = 0; k < 32; ++k) {
    EXPECT_FALSE(injector.ShouldFire(kSiteDetector, std::to_string(k)));
  }
}

TEST_F(FaultInjectorTest, ApproximatesConfiguredRate) {
  auto& injector = FaultInjector::Global();
  ASSERT_TRUE(injector.Configure("site=detector,rate=0.25,seed=3").ok());
  int fired = 0;
  const int kKeys = 2000;
  for (int k = 0; k < kKeys; ++k) {
    if (injector.ShouldFire(kSiteDetector, "u" + std::to_string(k))) ++fired;
  }
  EXPECT_NEAR(static_cast<double>(fired) / kKeys, 0.25, 0.05);
}

TEST_F(FaultInjectorTest, MaxFiresCapsInjection) {
  auto& injector = FaultInjector::Global();
  ASSERT_TRUE(injector.Configure("site=detector,rate=1,max_fires=3").ok());
  int fired = 0;
  for (int k = 0; k < 10; ++k) {
    if (injector.ShouldFire(kSiteDetector, std::to_string(k))) ++fired;
  }
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(injector.fires(kSiteDetector), 3u);
  EXPECT_EQ(injector.total_fires(), 3u);
}

TEST_F(FaultInjectorTest, UnarmedSitesNeverFire) {
  auto& injector = FaultInjector::Global();
  ASSERT_TRUE(injector.Configure("site=detector,rate=1").ok());
  EXPECT_FALSE(injector.ShouldFire(kSiteAlloc, "42"));
  EXPECT_EQ(injector.delay_ms(kSiteSlowShard), 0u);
}

TEST_F(FaultInjectorTest, MaybeThrowRaisesFaultInjected) {
  auto& injector = FaultInjector::Global();
  ASSERT_TRUE(injector.Configure("site=detector,rate=1").ok());
  EXPECT_THROW(injector.MaybeThrow(kSiteDetector, "http://a.com#1"),
               FaultInjected);
  ASSERT_TRUE(injector.Configure("site=alloc,rate=1").ok());
  EXPECT_THROW(injector.MaybeBadAlloc(kSiteAlloc, "7"), std::bad_alloc);
}

TEST_F(FaultInjectorTest, ScopedSpecDisarmsOnExit) {
  {
    ScopedFaultSpec scoped("site=detector,rate=1");
    EXPECT_TRUE(FaultInjector::Global().armed());
  }
  EXPECT_FALSE(FaultInjector::Global().armed());
}

TEST(CancelTokenTest, DefaultNeverExpires) {
  CancelToken token;
  EXPECT_FALSE(token.Expired());
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(token.deadline_ns(), 0u);
}

TEST(CancelTokenTest, CancelIsSticky) {
  CancelToken token;
  token.Cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(token.Expired());
}

TEST(CancelTokenTest, DeadlineExpires) {
  CancelToken token;
  token.SetDeadlineNs(obs::NowNanos() + 1'000'000'000ull);
  EXPECT_FALSE(token.Expired());
  token.SetDeadlineNs(obs::NowNanos() - 1);
  EXPECT_TRUE(token.Expired());
  // Clearing the deadline un-expires (cancel was never set).
  token.SetDeadlineNs(0);
  EXPECT_FALSE(token.Expired());
}

TEST(CancelTokenTest, BudgetMsArmsRelativeDeadline) {
  CancelToken token;
  token.SetBudgetMs(1);
  EXPECT_GT(token.deadline_ns(), 0u);
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  EXPECT_TRUE(token.Expired());
}

}  // namespace
}  // namespace fault
}  // namespace midas
