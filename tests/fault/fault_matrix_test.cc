// The deterministic fault-matrix suite — the robustness contract of the
// multi-source framework. Each matrix entry arms a fault spec and/or a
// per-source deadline and runs the full pipeline, asserting that:
//
//   * the run completes (no crash, no std::terminate from a pool task);
//   * every span is closed exactly once (open_spans() back to zero);
//   * per-source failure reporting is accurate: the kFailed reports agree
//     with FrameworkStats.shards_failed and the obs counters;
//   * with no deadline in play, the run is deterministic — a replay with
//     the same spec yields bit-identical slices and statuses;
//   * a zero-fault run (hooks compiled in, nothing armed or rate=0) is
//     bit-identical to the unarmed baseline.
//
// Leak-freedom is asserted by the CI fault-matrix job, which runs this
// binary under ASan+UBSan (LeakSanitizer included).

#include "midas/core/framework.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <sys/stat.h>
#include <vector>

#include "common/corpus_fixture.h"
#include "midas/core/midas_alg.h"
#include "midas/fault/fault.h"
#include "midas/obs/metrics.h"
#include "midas/obs/trace.h"
#include "midas/store/checkpoint.h"
#include "midas/util/timer.h"

namespace midas {
namespace core {
namespace {

uint64_t CounterValue(const std::string& name) {
  const obs::Counter* c = obs::Registry::Global().FindCounter(name);
  return c == nullptr ? 0 : c->Value();
}

/// One matrix entry: a fault spec (may be empty), a per-source deadline,
/// and whether a replay must reproduce the exact same result (true unless
/// the entry depends on wall-clock deadlines). Entries with `checkpoint`
/// set run with a checkpoint log, exercising the durable-append path under
/// the armed faults (append failures must never change the run's result).
struct MatrixConfig {
  const char* name;
  const char* spec;
  uint64_t deadline_ms;
  bool deterministic;
  bool checkpoint = false;
};

const MatrixConfig kMatrix[] = {
    {"no_fault_no_deadline", "", 0, true},
    {"detector_rate0", "site=detector,rate=0,seed=1", 0, true},
    {"detector_rare", "site=detector,rate=0.05,seed=42", 0, true},
    {"detector_third", "site=detector,rate=0.3,seed=1", 0, true},
    {"detector_third_alt_seed", "site=detector,rate=0.3,seed=99", 0, true},
    // max_fires-capped entries are NOT replay-deterministic: the cap is a
    // global budget consumed in thread-schedule order, so *which* shard
    // absorbs the capped fires varies run to run (the no-crash/accurate-
    // reporting contract still holds).
    {"detector_half_capped", "site=detector,rate=0.5,seed=5,max_fires=3", 0,
     false},
    {"detector_always", "site=detector,rate=1,seed=2", 0, true},
    {"detector_always_capped", "site=detector,rate=1,seed=2,max_fires=2", 0,
     false},
    {"alloc_rare", "site=alloc,rate=0.001,seed=7", 0, true},
    {"alloc_occasional", "site=alloc,rate=0.01,seed=3", 0, true},
    {"alloc_once", "site=alloc,rate=1,seed=4,max_fires=1", 0, false},
    {"slow_half", "site=slow_shard,rate=0.5,seed=6,delay_ms=3", 0, true},
    {"slow_all", "site=slow_shard,rate=1,seed=6,delay_ms=2", 0, true},
    {"detector_plus_slow",
     "site=detector,rate=0.3,seed=1;site=slow_shard,rate=0.5,delay_ms=2", 0,
     true},
    {"detector_plus_alloc",
     "site=detector,rate=0.2,seed=9;site=alloc,rate=0.005,seed=9", 0, true},
    {"deadline_tight", "", 1, false},
    {"deadline_loose", "", 200, false},
    {"detector_with_deadline", "site=detector,rate=0.3,seed=1", 50, false},
    {"slow_past_deadline", "site=slow_shard,rate=1,delay_ms=10", 5, false},
    {"everything",
     "site=detector,rate=0.2,seed=3;site=slow_shard,rate=0.3,delay_ms=2;"
     "site=alloc,rate=0.002,seed=3",
     40, false},
    // Durable-I/O sites against the checkpoint log. Armed-at-rate-0 must be
    // inert; every-append-fails must disable checkpointing without touching
    // the run's result; torn appends leave a recoverable prefix (the resume
    // contract is asserted in tests/store/checkpoint_resume_test.cc).
    {"io_write_fail_rate0", "site=io_write_fail,rate=0,seed=1", 0, true, true},
    {"io_torn_write_rate0", "site=io_torn_write,rate=0,seed=1", 0, true, true},
    {"io_write_fail_all", "site=io_write_fail,rate=1,seed=2", 0, true, true},
    {"io_torn_write_some", "site=io_torn_write,rate=0.3,seed=8", 0, true,
     true},
    {"io_plus_detector",
     "site=io_write_fail,rate=0.5,seed=4;site=detector,rate=0.2,seed=4", 0,
     true, true},
};

/// The per-source outcome digest a deterministic replay must reproduce.
struct RunDigest {
  std::vector<std::string> slice_keys;  // url + description-ish + profit
  std::vector<std::string> source_keys;  // url + status + attempts
  bool partial = false;
};

RunDigest Digest(const FrameworkResult& result) {
  RunDigest digest;
  for (const auto& s : result.slices) {
    digest.slice_keys.push_back(s.source_url + "|" +
                                std::to_string(s.num_facts) + "|" +
                                std::to_string(s.num_new_facts) + "|" +
                                std::to_string(s.profit));
  }
  for (const auto& sr : result.sources) {
    digest.source_keys.push_back(
        sr.url + "|" + SourceStatusName(sr.status) + "|" +
        std::to_string(sr.attempts));
  }
  digest.partial = result.partial;
  return digest;
}

class FaultMatrixTest : public ::testing::TestWithParam<MatrixConfig> {
 protected:
  void SetUp() override {
#ifndef MIDAS_FAULT_INJECTION
    GTEST_SKIP() << "fault-injection hooks compiled out";
#endif
#ifndef MIDAS_OBS_NOOP
    obs::Registry::Global().ResetAllForTest();
    obs::Tracer::Global().Reset();
#endif
  }
  void TearDown() override { fault::FaultInjector::Global().Disarm(); }

  FrameworkResult RunOnce(const MatrixConfig& config) {
    auto dict = std::make_shared<rdf::Dictionary>();
    web::Corpus corpus(dict);
    tests::FillSectionedCorpus(&corpus, /*sections=*/6,
                               /*entities_per_section=*/8);
    rdf::KnowledgeBase kb(dict);

    MidasOptions alg_options;
    alg_options.cost_model = CostModel::RunningExample();
    MidasAlg alg(alg_options);

    FrameworkOptions fw;
    fw.source_deadline_ms = config.deadline_ms;
    fw.retry_backoff_ms = 1;  // keep the matrix fast
    if (config.checkpoint) {
      // Fresh (non-resume) checkpointing each run so replays stay
      // bit-identical: Create truncates whatever the previous run left.
      const std::string dir =
          ::testing::TempDir() + "/midas_fault_matrix_ckpt";
      ::mkdir(dir.c_str(), 0755);
      fw.checkpoint_dir = dir;
    }
    MidasFramework framework(&alg, fw);

    if (config.spec[0] != '\0') {
      EXPECT_TRUE(
          fault::FaultInjector::Global().Configure(config.spec).ok());
    }
    FrameworkResult result = framework.Run(corpus, kb);
    fault::FaultInjector::Global().Disarm();
    return result;
  }
};

TEST_P(FaultMatrixTest, CompletesWithAccurateReportsAndBalancedSpans) {
  const MatrixConfig& config = GetParam();
  FrameworkResult result = RunOnce(config);

  // Every planned shard reported exactly once, sorted by URL.
  ASSERT_FALSE(result.sources.empty());
  for (size_t i = 1; i < result.sources.size(); ++i) {
    EXPECT_LE(result.sources[i - 1].url, result.sources[i].url);
  }

  size_t failed = 0, partial = 0, cancelled = 0, retries = 0;
  for (const auto& sr : result.sources) {
    switch (sr.status) {
      case SourceStatus::kFailed:
        ++failed;
        EXPECT_FALSE(sr.error.empty()) << sr.url;
        // A permanent failure exhausted every attempt.
        EXPECT_EQ(sr.attempts, FrameworkOptions{}.max_retries + 1) << sr.url;
        break;
      case SourceStatus::kPartial:
        ++partial;
        break;
      case SourceStatus::kCancelled:
        ++cancelled;
        break;
      case SourceStatus::kOk:
      case SourceStatus::kNoSlices:
        EXPECT_TRUE(sr.error.empty()) << sr.url;
        break;
    }
    if (sr.attempts > 1) retries += sr.attempts - 1;
  }

  // Reports agree with the aggregate stats...
  EXPECT_EQ(failed, result.stats.shards_failed);
  EXPECT_EQ(partial, result.stats.deadline_expirations);
  EXPECT_EQ(retries, result.stats.shard_retries);
  EXPECT_EQ(result.partial, partial + cancelled > 0);
  // ...and no slice is attributed to a permanently-failed source.
  for (const auto& sr : result.sources) {
    if (sr.status != SourceStatus::kFailed) continue;
    for (const auto& s : result.slices) {
      EXPECT_NE(s.source_url, sr.url);
    }
  }

  if (config.checkpoint) {
    // Fresh runs never resume, and whatever the io faults did to the log,
    // the checkpoint log on disk is readable back to its last intact
    // record (a torn append may leave tail garbage behind valid_bytes).
    EXPECT_EQ(result.stats.sources_resumed, 0u);
    const std::string log_path = ::testing::TempDir() +
                                 "/midas_fault_matrix_ckpt/" +
                                 store::kCheckpointFileName;
    StatusOr<store::RecordReadResult> read = store::ReadRecordLog(log_path);
    if (read.ok()) {
      EXPECT_LE(read->records.size(), result.sources.size() + 1);
    } else {
      // Every append failed before the log was even created.
      EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
      EXPECT_GT(result.stats.checkpoint_write_errors, 0u);
    }
    std::remove(log_path.c_str());
  }

#ifndef MIDAS_OBS_NOOP
  // Span balance: error paths and deadline stops close what they open.
  EXPECT_EQ(obs::Tracer::Global().open_spans(), 0);
  // The new robustness counters mirror the run's stats.
  EXPECT_EQ(CounterValue("framework.shards_failed"),
            result.stats.shards_failed);
  EXPECT_EQ(CounterValue("framework.shard_retries"),
            result.stats.shard_retries);
  EXPECT_EQ(CounterValue("framework.deadline_expirations"),
            result.stats.deadline_expirations);
#endif
}

TEST_P(FaultMatrixTest, ReplayIsBitIdentical) {
  const MatrixConfig& config = GetParam();
  if (!config.deterministic) {
    GTEST_SKIP() << "entry depends on wall-clock deadlines";
  }
  RunDigest first = Digest(RunOnce(config));
  RunDigest second = Digest(RunOnce(config));
  EXPECT_EQ(first.slice_keys, second.slice_keys);
  EXPECT_EQ(first.source_keys, second.source_keys);
  EXPECT_EQ(first.partial, second.partial);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, FaultMatrixTest, ::testing::ValuesIn(kMatrix),
    [](const ::testing::TestParamInfo<MatrixConfig>& info) {
      return std::string(info.param.name);
    });

class FaultFreeBitIdentityTest : public ::testing::Test {
 protected:
  void SetUp() override {
#ifndef MIDAS_OBS_NOOP
    obs::Registry::Global().ResetAllForTest();
    obs::Tracer::Global().Reset();
#endif
  }
  void TearDown() override { fault::FaultInjector::Global().Disarm(); }

  FrameworkResult RunPipeline(const FrameworkOptions& fw) {
    auto dict = std::make_shared<rdf::Dictionary>();
    web::Corpus corpus(dict);
    tests::FillSectionedCorpus(&corpus, /*sections=*/6,
                               /*entities_per_section=*/8);
    rdf::KnowledgeBase kb(dict);
    MidasOptions alg_options;
    alg_options.cost_model = CostModel::RunningExample();
    MidasAlg alg(alg_options);
    return MidasFramework(&alg, fw).Run(corpus, kb);
  }
};

/// The acceptance bar for the whole subsystem: with the hooks compiled in
/// but nothing firing — disarmed, armed-at-rate-0, or armed with an
/// enormous budget — the discovered slices are bit-identical to the plain
/// run, and no source reports anything but clean completion.
TEST_F(FaultFreeBitIdentityTest, ZeroFaultRunsMatchBaseline) {
  RunDigest baseline = Digest(RunPipeline(FrameworkOptions{}));
  EXPECT_FALSE(baseline.partial);

#ifdef MIDAS_FAULT_INJECTION
  {
    fault::ScopedFaultSpec armed("site=detector,rate=0,seed=42");
    RunDigest armed_but_silent = Digest(RunPipeline(FrameworkOptions{}));
    EXPECT_EQ(baseline.slice_keys, armed_but_silent.slice_keys);
    EXPECT_EQ(baseline.source_keys, armed_but_silent.source_keys);
  }
#endif

  FrameworkOptions huge_budget;
  huge_budget.source_deadline_ms = 1'000'000;
  RunDigest budgeted = Digest(RunPipeline(huge_budget));
  EXPECT_EQ(baseline.slice_keys, budgeted.slice_keys);
  EXPECT_EQ(baseline.source_keys, budgeted.source_keys);
  EXPECT_FALSE(budgeted.partial);
}

/// Deadline semantics: an expiring per-source budget yields partial=true,
/// best-so-far slices, and framework.deadline_expirations > 0 — and the run
/// finishes promptly instead of grinding through the full lattice.
TEST_F(FaultFreeBitIdentityTest, ExpiredBudgetReturnsPartialPromptly) {
#ifndef MIDAS_FAULT_INJECTION
  GTEST_SKIP() << "fault-injection hooks compiled out";
#else
  // A slow-shard sleep longer than the budget guarantees every shard's
  // token is already expired when detection starts, independent of how
  // fast the machine builds hierarchies.
  fault::ScopedFaultSpec slow("site=slow_shard,rate=1,delay_ms=20");
  FrameworkOptions fw;
  fw.source_deadline_ms = 2;
  Stopwatch watch;
  FrameworkResult result = RunPipeline(fw);
  const double seconds = watch.ElapsedSeconds();

  EXPECT_TRUE(result.partial);
  EXPECT_GT(result.stats.deadline_expirations, 0u);
  for (const auto& sr : result.sources) {
    EXPECT_EQ(sr.status, SourceStatus::kPartial) << sr.url;
    EXPECT_EQ(sr.attempts, 1u) << sr.url;  // expired budgets do not retry
  }
#ifndef MIDAS_OBS_NOOP
  EXPECT_GT(CounterValue("framework.deadline_expirations"), 0u);
  EXPECT_EQ(obs::Tracer::Global().open_spans(), 0);
#endif
  // Budget + one sleep per shard, with generous slack for slow machines:
  // far below what full unbounded detection plus retries would take.
  EXPECT_LT(seconds, 30.0);
#endif  // MIDAS_FAULT_INJECTION
}

/// Whole-run cancellation: a pre-cancelled token means no shard is
/// detected, every planned source is reported cancelled, and the result is
/// flagged partial — without a crash or span imbalance.
TEST_F(FaultFreeBitIdentityTest, PreCancelledRunReportsEverySourceCancelled) {
  fault::CancelToken cancel;
  cancel.Cancel();
  FrameworkOptions fw;
  fw.cancel = &cancel;
  FrameworkResult result = RunPipeline(fw);

  EXPECT_TRUE(result.partial);
  EXPECT_TRUE(result.slices.empty());
  ASSERT_FALSE(result.sources.empty());
  for (const auto& sr : result.sources) {
    EXPECT_EQ(sr.status, SourceStatus::kCancelled) << sr.url;
    EXPECT_EQ(sr.attempts, 0u) << sr.url;
  }
#ifndef MIDAS_OBS_NOOP
  EXPECT_EQ(obs::Tracer::Global().open_spans(), 0);
#endif
}

}  // namespace
}  // namespace core
}  // namespace midas
