#include "midas/baselines/naive.h"

#include <gtest/gtest.h>

#include <memory>

namespace midas {
namespace baselines {
namespace {

class NaiveTest : public ::testing::Test {
 protected:
  NaiveTest() : dict_(std::make_shared<rdf::Dictionary>()), kb_(dict_) {}

  void AddFact(const std::string& s, const std::string& p,
               const std::string& o, bool known = false) {
    rdf::Triple t(dict_->Intern(s), dict_->Intern(p), dict_->Intern(o));
    facts_.push_back(t);
    if (known) kb_.Add(t);
  }
  core::SourceInput Input() {
    core::SourceInput input;
    input.url = "http://src.example.com";
    input.facts = &facts_;
    return input;
  }

  std::shared_ptr<rdf::Dictionary> dict_;
  rdf::KnowledgeBase kb_;
  std::vector<rdf::Triple> facts_;
};

TEST_F(NaiveTest, ReturnsWholeSourceAsOneSlice) {
  AddFact("e1", "cat", "a");
  AddFact("e2", "cat", "b");
  AddFact("e3", "loc", "c", /*known=*/true);
  NaiveDetector naive;
  auto slices = naive.Detect(Input(), kb_);
  ASSERT_EQ(slices.size(), 1u);
  EXPECT_TRUE(slices[0].properties.empty());
  EXPECT_EQ(slices[0].Description(*dict_), "*");
  EXPECT_EQ(slices[0].num_facts, 3u);
  EXPECT_EQ(slices[0].num_new_facts, 2u);
  EXPECT_EQ(slices[0].entities.size(), 3u);
  // Rank score is the new-fact count.
  EXPECT_DOUBLE_EQ(slices[0].profit, 2.0);
}

TEST_F(NaiveTest, NothingWhenNoNewFacts) {
  AddFact("e1", "cat", "a", /*known=*/true);
  NaiveDetector naive;
  EXPECT_TRUE(naive.Detect(Input(), kb_).empty());
}

TEST_F(NaiveTest, EmptySource) {
  NaiveDetector naive;
  EXPECT_TRUE(naive.Detect(Input(), kb_).empty());
}

}  // namespace
}  // namespace baselines
}  // namespace midas
