// Contract tests applied to every SliceDetector implementation (MIDAS and
// the three baselines): well-formed output, determinism, and thread safety
// — the framework invokes detectors concurrently from its pool, so a
// detector with hidden mutable state would corrupt runs.

#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "midas/baselines/agg_cluster.h"
#include "midas/baselines/greedy.h"
#include "midas/baselines/naive.h"
#include "midas/core/midas_alg.h"
#include "midas/synth/single_source.h"

namespace midas {
namespace {

enum class Kind { kMidas, kGreedy, kAggCluster, kNaive };

std::unique_ptr<core::SliceDetector> Make(Kind kind) {
  switch (kind) {
    case Kind::kMidas:
      return std::make_unique<core::MidasAlg>();
    case Kind::kGreedy:
      return std::make_unique<baselines::GreedyDetector>();
    case Kind::kAggCluster:
      return std::make_unique<baselines::AggClusterDetector>();
    case Kind::kNaive:
      return std::make_unique<baselines::NaiveDetector>();
  }
  return nullptr;
}

class DetectorContractTest : public ::testing::TestWithParam<Kind> {
 protected:
  void SetUp() override {
    synth::SingleSourceParams params;
    params.num_facts = 1200;
    params.num_slices = 8;
    params.num_optimal = 4;
    params.seed = 71;
    data_ = std::make_unique<synth::SingleSourceData>(
        synth::GenerateSingleSource(params));
    detector_ = Make(GetParam());
  }

  core::SourceInput Input() const {
    core::SourceInput input;
    input.url = data_->url;
    input.facts = &data_->facts;
    return input;
  }

  std::unique_ptr<synth::SingleSourceData> data_;
  std::unique_ptr<core::SliceDetector> detector_;
};

TEST_P(DetectorContractTest, OutputWellFormed) {
  auto slices = detector_->Detect(Input(), *data_->kb);
  for (const auto& s : slices) {
    EXPECT_EQ(s.source_url, data_->url);
    EXPECT_FALSE(s.entities.empty());
    EXPECT_EQ(s.num_facts, s.facts.size());
    EXPECT_LE(s.num_new_facts, s.num_facts);
    // Facts belong to the source.
    for (const auto& t : s.facts) {
      bool found = false;
      for (const auto& src : *Input().facts) {
        if (src == t) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found);
      if (!found) break;
    }
  }
}

TEST_P(DetectorContractTest, Deterministic) {
  auto a = detector_->Detect(Input(), *data_->kb);
  auto b = detector_->Detect(Input(), *data_->kb);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].entities, b[i].entities);
    EXPECT_DOUBLE_EQ(a[i].profit, b[i].profit);
    EXPECT_EQ(a[i].properties.size(), b[i].properties.size());
  }
}

TEST_P(DetectorContractTest, ConcurrentCallsAgree) {
  auto reference = detector_->Detect(Input(), *data_->kb);
  constexpr int kThreads = 6;
  std::vector<std::vector<core::DiscoveredSlice>> results(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      results[static_cast<size_t>(t)] =
          detector_->Detect(Input(), *data_->kb);
    });
  }
  for (auto& thread : threads) thread.join();
  for (const auto& result : results) {
    ASSERT_EQ(result.size(), reference.size());
    for (size_t i = 0; i < result.size(); ++i) {
      EXPECT_EQ(result[i].entities, reference[i].entities);
      EXPECT_DOUBLE_EQ(result[i].profit, reference[i].profit);
    }
  }
}

TEST_P(DetectorContractTest, EmptyInputYieldsNothing) {
  std::vector<rdf::Triple> empty;
  core::SourceInput input;
  input.url = "http://empty.example.com";
  input.facts = &empty;
  EXPECT_TRUE(detector_->Detect(input, *data_->kb).empty());
}

TEST_P(DetectorContractTest, NameIsStable) {
  EXPECT_FALSE(detector_->name().empty());
  EXPECT_EQ(detector_->name(), Make(GetParam())->name());
}

INSTANTIATE_TEST_SUITE_P(
    AllDetectors, DetectorContractTest,
    ::testing::Values(Kind::kMidas, Kind::kGreedy, Kind::kAggCluster,
                      Kind::kNaive),
    [](const ::testing::TestParamInfo<Kind>& info) {
      switch (info.param) {
        case Kind::kMidas:
          return std::string("MIDAS");
        case Kind::kGreedy:
          return std::string("Greedy");
        case Kind::kAggCluster:
          return std::string("AggCluster");
        case Kind::kNaive:
          return std::string("Naive");
      }
      return std::string("unknown");
    });

}  // namespace
}  // namespace midas
