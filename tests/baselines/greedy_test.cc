#include "midas/baselines/greedy.h"

#include <gtest/gtest.h>

#include <memory>

namespace midas {
namespace baselines {
namespace {

class GreedyTest : public ::testing::Test {
 protected:
  GreedyTest() : dict_(std::make_shared<rdf::Dictionary>()), kb_(dict_) {}

  void AddFact(const std::string& s, const std::string& p,
               const std::string& o, bool known = false) {
    rdf::Triple t(dict_->Intern(s), dict_->Intern(p), dict_->Intern(o));
    facts_.push_back(t);
    if (known) kb_.Add(t);
  }
  core::SourceInput Input() {
    core::SourceInput input;
    input.url = "http://src.example.com";
    input.facts = &facts_;
    return input;
  }

  std::shared_ptr<rdf::Dictionary> dict_;
  rdf::KnowledgeBase kb_;
  std::vector<rdf::Triple> facts_;
};

TEST_F(GreedyTest, AtMostOneSlice) {
  // Two equally good disjoint groups: greedy must return exactly one.
  for (int i = 0; i < 10; ++i) {
    AddFact("r" + std::to_string(i), "cat", "rocket");
    AddFact("c" + std::to_string(i), "cat", "cocktail");
  }
  GreedyDetector greedy(core::CostModel::RunningExample());
  auto slices = greedy.Detect(Input(), kb_);
  ASSERT_EQ(slices.size(), 1u);
  EXPECT_EQ(slices[0].entities.size(), 10u);
}

TEST_F(GreedyTest, SliceAlwaysHasAtLeastOneProperty) {
  for (int i = 0; i < 10; ++i) {
    AddFact("e" + std::to_string(i), "cat", "x");
    AddFact("e" + std::to_string(i), "grp", i % 2 ? "a" : "b");
  }
  GreedyDetector greedy(core::CostModel::RunningExample());
  auto slices = greedy.Detect(Input(), kb_);
  ASSERT_EQ(slices.size(), 1u);
  EXPECT_GE(slices[0].properties.size(), 1u);
}

TEST_F(GreedyTest, AddsSecondPropertyWhenItPays) {
  // Under cat=x, the g1 group is new and the g2 group is known: adding
  // grp=g1 to cat=x removes the known ballast.
  for (int i = 0; i < 10; ++i) {
    std::string e = "new" + std::to_string(i);
    AddFact(e, "cat", "x");
    AddFact(e, "grp", "g1");
  }
  for (int i = 0; i < 30; ++i) {
    std::string e = "old" + std::to_string(i);
    AddFact(e, "cat", "x", /*known=*/true);
    AddFact(e, "grp", "g2", /*known=*/true);
  }
  GreedyDetector greedy(core::CostModel::RunningExample());
  auto slices = greedy.Detect(Input(), kb_);
  ASSERT_EQ(slices.size(), 1u);
  EXPECT_EQ(slices[0].entities.size(), 10u);
  EXPECT_EQ(slices[0].num_new_facts, 20u);
  // The chosen properties must include grp=g1 (cat=x alone drags in the
  // 60 known facts at f_d each).
  bool has_g1 = false;
  for (const auto& p : slices[0].properties) {
    if (dict_->Term(p.predicate) == "grp" && dict_->Term(p.value) == "g1") {
      has_g1 = true;
    }
  }
  EXPECT_TRUE(has_g1);
}

TEST_F(GreedyTest, NothingWhenBestIsUnprofitable) {
  AddFact("e1", "cat", "x", /*known=*/true);
  AddFact("e2", "cat", "x", /*known=*/true);
  GreedyDetector greedy(core::CostModel::RunningExample());
  EXPECT_TRUE(greedy.Detect(Input(), kb_).empty());
}

TEST_F(GreedyTest, EmptySource) {
  GreedyDetector greedy;
  EXPECT_TRUE(greedy.Detect(Input(), kb_).empty());
}

TEST_F(GreedyTest, StopsAtLocalOptimum) {
  // cat=x (20 new facts) with subgroup grp=g (10 of them): restricting
  // to the subgroup loses half the gain; greedy keeps the single property.
  for (int i = 0; i < 10; ++i) {
    std::string e = "e" + std::to_string(i);
    AddFact(e, "cat", "x");
    AddFact(e, "grp", i < 5 ? "g" : ("u" + std::to_string(i)));
  }
  GreedyDetector greedy(core::CostModel::RunningExample());
  auto slices = greedy.Detect(Input(), kb_);
  ASSERT_EQ(slices.size(), 1u);
  EXPECT_EQ(slices[0].properties.size(), 1u);
  EXPECT_EQ(dict_->Term(slices[0].properties[0].predicate), "cat");
}

}  // namespace
}  // namespace baselines
}  // namespace midas
