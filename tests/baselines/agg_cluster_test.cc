#include "midas/baselines/agg_cluster.h"

#include <gtest/gtest.h>

#include <memory>

namespace midas {
namespace baselines {
namespace {

class AggClusterTest : public ::testing::Test {
 protected:
  AggClusterTest() : dict_(std::make_shared<rdf::Dictionary>()), kb_(dict_) {}

  void AddFact(const std::string& s, const std::string& p,
               const std::string& o, bool known = false) {
    rdf::Triple t(dict_->Intern(s), dict_->Intern(p), dict_->Intern(o));
    facts_.push_back(t);
    if (known) kb_.Add(t);
  }
  core::SourceInput Input() {
    core::SourceInput input;
    input.url = "http://src.example.com";
    input.facts = &facts_;
    return input;
  }
  AggClusterDetector Make() {
    AggClusterOptions options;
    options.cost_model = core::CostModel::RunningExample();
    return AggClusterDetector(options);
  }

  std::shared_ptr<rdf::Dictionary> dict_;
  rdf::KnowledgeBase kb_;
  std::vector<rdf::Triple> facts_;
};

TEST_F(AggClusterTest, MergesHomogeneousEntities) {
  for (int i = 0; i < 10; ++i) {
    std::string e = "e" + std::to_string(i);
    AddFact(e, "cat", "rocket");
    AddFact(e, "sponsor", "NASA");
  }
  auto agg = Make();
  auto slices = agg.Detect(Input(), kb_);
  ASSERT_EQ(slices.size(), 1u);
  EXPECT_EQ(slices[0].entities.size(), 10u);
  EXPECT_GE(slices[0].properties.size(), 1u);
  EXPECT_GT(slices[0].profit, 0.0);
}

TEST_F(AggClusterTest, KeepsDistinctGroupsApart) {
  for (int i = 0; i < 10; ++i) {
    AddFact("r" + std::to_string(i), "cat", "rocket");
    AddFact("c" + std::to_string(i), "cat", "cocktail");
  }
  auto agg = Make();
  auto slices = agg.Detect(Input(), kb_);
  // Merging across groups would produce an empty property set (profit
  // -inf), so the two groups stay separate.
  ASSERT_EQ(slices.size(), 2u);
  EXPECT_EQ(slices[0].entities.size(), 10u);
  EXPECT_EQ(slices[1].entities.size(), 10u);
}

TEST_F(AggClusterTest, DropsUnprofitableClusters) {
  AddFact("known", "cat", "x", /*known=*/true);
  auto agg = Make();
  EXPECT_TRUE(agg.Detect(Input(), kb_).empty());
}

TEST_F(AggClusterTest, EmptySource) {
  auto agg = Make();
  EXPECT_TRUE(agg.Detect(Input(), kb_).empty());
}

TEST_F(AggClusterTest, DeduplicatesIdenticalClusterSlices) {
  // Two entities with identical properties collapse to one reported slice
  // even if clustering leaves them in separate clusters.
  AddFact("e1", "cat", "x");
  AddFact("e1", "grp", "g");
  AddFact("e2", "cat", "x");
  AddFact("e2", "grp", "g");
  for (int i = 0; i < 8; ++i) {
    AddFact("pad" + std::to_string(i), "cat", "x");
    AddFact("pad" + std::to_string(i), "grp", "g");
  }
  auto agg = Make();
  auto slices = agg.Detect(Input(), kb_);
  ASSERT_EQ(slices.size(), 1u);
}

TEST_F(AggClusterTest, MaxEntitiesCapBoundsWork) {
  for (int i = 0; i < 50; ++i) {
    std::string e = "e" + std::to_string(i);
    AddFact(e, "cat", "x");
  }
  AggClusterOptions options;
  options.cost_model = core::CostModel::RunningExample();
  options.max_entities = 10;
  AggClusterDetector agg(options);
  auto slices = agg.Detect(Input(), kb_);
  // Clusters are seeded from the first 10 entities only, but the induced
  // slice still matches all 50 (MatchEntities runs on the full table).
  ASSERT_EQ(slices.size(), 1u);
  EXPECT_EQ(slices[0].entities.size(), 50u);
}

TEST_F(AggClusterTest, SeedsBecomeInitialClusters) {
  for (int i = 0; i < 10; ++i) {
    std::string e = "e" + std::to_string(i);
    AddFact(e, "cat", "x");
    AddFact(e, "grp", i < 5 ? "a" : "b");
  }
  core::SourceInput input = Input();
  input.seeds = {{core::PropertyPair{*dict_->Lookup("cat"),
                                     *dict_->Lookup("x")}}};
  auto agg = Make();
  auto slices = agg.Detect(input, kb_);
  ASSERT_GE(slices.size(), 1u);
  // The seeded cluster covers all entities.
  EXPECT_EQ(slices[0].entities.size(), 10u);
}

}  // namespace
}  // namespace baselines
}  // namespace midas
