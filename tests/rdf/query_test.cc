#include "midas/rdf/query.h"

#include <gtest/gtest.h>

#include "midas/rdf/dictionary.h"

namespace midas {
namespace rdf {
namespace {

class QueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Add("Atlas", "category", "rocket_family");
    Add("Atlas", "sponsor", "NASA");
    Add("Atlas", "started", "1957");
    Add("Castor-4", "category", "rocket_family");
    Add("Castor-4", "sponsor", "NASA");
    Add("Apollo", "category", "space_program");
    Add("Apollo", "sponsor", "NASA");
    Add("Soyuz", "category", "rocket_family");
    Add("Soyuz", "sponsor", "Roscosmos");
  }

  void Add(const char* s, const char* p, const char* o) {
    store_.Insert(Triple(dict_.Intern(s), dict_.Intern(p), dict_.Intern(o)));
  }
  TermId Id(const char* term) { return dict_.Intern(term); }

  std::vector<std::string> Names(const std::vector<TermId>& ids) {
    std::vector<std::string> out;
    for (TermId id : ids) out.push_back(dict_.Term(id));
    return out;
  }

  Dictionary dict_;
  TripleStore store_;
};

TEST_F(QueryTest, SingleConstraint) {
  auto subjects = SubjectsMatchingAll(
      &store_, {{Id("category"), Id("rocket_family")}});
  EXPECT_EQ(subjects.size(), 3u);  // Atlas, Castor-4, Soyuz
}

TEST_F(QueryTest, Conjunction) {
  auto subjects = SubjectsMatchingAll(
      &store_, {{Id("category"), Id("rocket_family")},
                {Id("sponsor"), Id("NASA")}});
  auto names = Names(subjects);
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"Atlas", "Castor-4"}));
}

TEST_F(QueryTest, ExistenceConstraint) {
  // Wildcard object: subjects that have *any* "started" fact.
  auto subjects =
      SubjectsMatchingAll(&store_, {{Id("started"), kInvalidTermId}});
  ASSERT_EQ(subjects.size(), 1u);
  EXPECT_EQ(dict_.Term(subjects[0]), "Atlas");
}

TEST_F(QueryTest, MixedExistenceAndValue) {
  auto subjects = SubjectsMatchingAll(
      &store_, {{Id("started"), kInvalidTermId},
                {Id("sponsor"), Id("NASA")}});
  EXPECT_EQ(subjects.size(), 1u);
}

TEST_F(QueryTest, EmptyConstraintsReturnsAllSubjects) {
  auto subjects = SubjectsMatchingAll(&store_, {});
  EXPECT_EQ(subjects.size(), 4u);
  EXPECT_TRUE(std::is_sorted(subjects.begin(), subjects.end()));
}

TEST_F(QueryTest, UnsatisfiableConjunction) {
  auto subjects = SubjectsMatchingAll(
      &store_, {{Id("category"), Id("space_program")},
                {Id("sponsor"), Id("Roscosmos")}});
  EXPECT_TRUE(subjects.empty());
}

TEST_F(QueryTest, ConstraintOnUnknownValue) {
  auto subjects = SubjectsMatchingAll(
      &store_, {{Id("category"), Id("never-seen-value")}});
  EXPECT_TRUE(subjects.empty());
}

TEST_F(QueryTest, ObjectsOf) {
  Add("Atlas", "sponsor", "USAF");  // second sponsor
  auto objects = ObjectsOf(&store_, Id("Atlas"), Id("sponsor"));
  auto names = Names(objects);
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"NASA", "USAF"}));
  EXPECT_TRUE(ObjectsOf(&store_, Id("Atlas"), Id("orbit")).empty());
}

TEST_F(QueryTest, DuplicateSubjectsCollapsed) {
  // Soyuz has two category facts after this; subject must appear once.
  Add("Soyuz", "category", "launch_vehicle");
  auto subjects =
      SubjectsMatchingAll(&store_, {{Id("category"), kInvalidTermId}});
  size_t soyuz_count = 0;
  for (TermId s : subjects) {
    if (dict_.Term(s) == "Soyuz") ++soyuz_count;
  }
  EXPECT_EQ(soyuz_count, 1u);
}

}  // namespace
}  // namespace rdf
}  // namespace midas
