#include "midas/rdf/dictionary.h"

#include <gtest/gtest.h>

namespace midas {
namespace rdf {
namespace {

TEST(DictionaryTest, InternAssignsDenseIds) {
  Dictionary dict;
  EXPECT_EQ(dict.Intern("a"), 0u);
  EXPECT_EQ(dict.Intern("b"), 1u);
  EXPECT_EQ(dict.Intern("c"), 2u);
  EXPECT_EQ(dict.size(), 3u);
}

TEST(DictionaryTest, InternIsIdempotent) {
  Dictionary dict;
  TermId a = dict.Intern("term");
  EXPECT_EQ(dict.Intern("term"), a);
  EXPECT_EQ(dict.size(), 1u);
}

TEST(DictionaryTest, RoundTrip) {
  Dictionary dict;
  TermId id = dict.Intern("Project Mercury");
  EXPECT_EQ(dict.Term(id), "Project Mercury");
}

TEST(DictionaryTest, LookupWithoutIntern) {
  Dictionary dict;
  dict.Intern("present");
  auto found = dict.Lookup("present");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(dict.Term(*found), "present");
  EXPECT_FALSE(dict.Lookup("absent").has_value());
  EXPECT_EQ(dict.size(), 1u);  // Lookup never interns
}

TEST(DictionaryTest, EmptyStringIsAValidTerm) {
  Dictionary dict;
  TermId id = dict.Intern("");
  EXPECT_EQ(dict.Term(id), "");
  EXPECT_TRUE(dict.Lookup("").has_value());
}

TEST(DictionaryTest, ManyTermsStaySorted) {
  Dictionary dict;
  for (int i = 0; i < 10000; ++i) {
    TermId id = dict.Intern("term_" + std::to_string(i));
    EXPECT_EQ(id, static_cast<TermId>(i));
  }
  EXPECT_EQ(dict.size(), 10000u);
  EXPECT_EQ(dict.Term(1234), "term_1234");
  EXPECT_GT(dict.MemoryUsageBytes(), 10000u);
}

}  // namespace
}  // namespace rdf
}  // namespace midas
