#include "midas/rdf/knowledge_base.h"

#include <gtest/gtest.h>

#include <memory>

namespace midas {
namespace rdf {
namespace {

class KnowledgeBaseTest : public ::testing::Test {
 protected:
  KnowledgeBaseTest()
      : dict_(std::make_shared<Dictionary>()), kb_(dict_) {}
  std::shared_ptr<Dictionary> dict_;
  KnowledgeBase kb_;
};

TEST_F(KnowledgeBaseTest, StartsEmpty) {
  EXPECT_TRUE(kb_.empty());
  EXPECT_EQ(kb_.size(), 0u);
}

TEST_F(KnowledgeBaseTest, AddByStringsAndContains) {
  EXPECT_TRUE(kb_.Add("Margarita", "ingredient", "tequila"));
  EXPECT_EQ(kb_.size(), 1u);
  EXPECT_TRUE(kb_.Contains("Margarita", "ingredient", "tequila"));
  EXPECT_FALSE(kb_.Contains("Margarita", "ingredient", "rum"));
}

TEST_F(KnowledgeBaseTest, DuplicateAddReturnsFalse) {
  EXPECT_TRUE(kb_.Add("s", "p", "o"));
  EXPECT_FALSE(kb_.Add("s", "p", "o"));
  EXPECT_EQ(kb_.size(), 1u);
}

TEST_F(KnowledgeBaseTest, ContainsWithUninternedTermIsFalse) {
  kb_.Add("s", "p", "o");
  // "zzz" was never interned; string-level Contains must not intern it.
  size_t dict_size = dict_->size();
  EXPECT_FALSE(kb_.Contains("zzz", "p", "o"));
  EXPECT_EQ(dict_->size(), dict_size);
}

TEST_F(KnowledgeBaseTest, SharedDictionaryWithCorpusIds) {
  TermId s = dict_->Intern("subject");
  TermId p = dict_->Intern("pred");
  TermId o = dict_->Intern("obj");
  kb_.Add(Triple(s, p, o));
  EXPECT_TRUE(kb_.Contains(Triple(s, p, o)));
  EXPECT_TRUE(kb_.Contains("subject", "pred", "obj"));
}

TEST_F(KnowledgeBaseTest, AddAllBulk) {
  std::vector<Triple> triples;
  for (int i = 0; i < 100; ++i) {
    triples.emplace_back(dict_->Intern("s" + std::to_string(i)),
                         dict_->Intern("p"), dict_->Intern("o"));
  }
  kb_.AddAll(triples);
  EXPECT_EQ(kb_.size(), 100u);
  kb_.AddAll(triples);  // idempotent
  EXPECT_EQ(kb_.size(), 100u);
}

TEST_F(KnowledgeBaseTest, FindPatternQueries) {
  kb_.Add("alice", "knows", "bob");
  kb_.Add("alice", "knows", "carol");
  kb_.Add("bob", "knows", "carol");
  TriplePattern p;
  p.subject = *dict_->Lookup("alice");
  EXPECT_EQ(kb_.Find(p).size(), 2u);
}

}  // namespace
}  // namespace rdf
}  // namespace midas
