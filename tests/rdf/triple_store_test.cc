#include "midas/rdf/triple_store.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "midas/rdf/dictionary.h"

namespace midas {
namespace rdf {
namespace {

class TripleStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // A small graph: people, cities, types.
    Add("alice", "lives_in", "paris");
    Add("alice", "type", "person");
    Add("bob", "lives_in", "paris");
    Add("bob", "type", "person");
    Add("carol", "lives_in", "rome");
    Add("carol", "type", "person");
    Add("paris", "type", "city");
    Add("rome", "type", "city");
  }

  Triple Add(const char* s, const char* p, const char* o) {
    Triple t(dict_.Intern(s), dict_.Intern(p), dict_.Intern(o));
    store_.Insert(t);
    return t;
  }
  TermId Id(const char* term) { return dict_.Intern(term); }

  Dictionary dict_;
  TripleStore store_;
};

TEST_F(TripleStoreTest, InsertDedupes) {
  EXPECT_EQ(store_.size(), 8u);
  Triple dup(Id("alice"), Id("lives_in"), Id("paris"));
  EXPECT_FALSE(store_.Insert(dup));
  EXPECT_EQ(store_.size(), 8u);
}

TEST_F(TripleStoreTest, Contains) {
  EXPECT_TRUE(store_.Contains(Triple(Id("bob"), Id("type"), Id("person"))));
  EXPECT_FALSE(store_.Contains(Triple(Id("bob"), Id("type"), Id("city"))));
}

TEST_F(TripleStoreTest, FindBySubject) {
  TriplePattern p;
  p.subject = Id("alice");
  auto results = store_.Find(p);
  EXPECT_EQ(results.size(), 2u);
  for (const auto& t : results) EXPECT_EQ(t.subject, Id("alice"));
}

TEST_F(TripleStoreTest, FindByPredicate) {
  TriplePattern p;
  p.predicate = Id("type");
  EXPECT_EQ(store_.Find(p).size(), 5u);
}

TEST_F(TripleStoreTest, FindByObject) {
  TriplePattern p;
  p.object = Id("paris");
  EXPECT_EQ(store_.Find(p).size(), 2u);
}

TEST_F(TripleStoreTest, FindByPredicateObject) {
  TriplePattern p;
  p.predicate = Id("type");
  p.object = Id("city");
  auto results = store_.Find(p);
  EXPECT_EQ(results.size(), 2u);
}

TEST_F(TripleStoreTest, FindBySubjectPredicate) {
  TriplePattern p;
  p.subject = Id("carol");
  p.predicate = Id("lives_in");
  auto results = store_.Find(p);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].object, Id("rome"));
}

TEST_F(TripleStoreTest, FindBySubjectObject) {
  TriplePattern p;
  p.subject = Id("alice");
  p.object = Id("paris");
  EXPECT_EQ(store_.Find(p).size(), 1u);
}

TEST_F(TripleStoreTest, FullyBoundPattern) {
  TriplePattern p;
  p.subject = Id("rome");
  p.predicate = Id("type");
  p.object = Id("city");
  EXPECT_EQ(store_.Find(p).size(), 1u);
  p.object = Id("person");
  EXPECT_TRUE(store_.Find(p).empty());
}

TEST_F(TripleStoreTest, UnboundPatternReturnsAll) {
  EXPECT_EQ(store_.Find(TriplePattern()).size(), 8u);
}

TEST_F(TripleStoreTest, CountMatchesFind) {
  TriplePattern p;
  p.predicate = Id("lives_in");
  EXPECT_EQ(store_.Count(p), store_.Find(p).size());
}

TEST_F(TripleStoreTest, InsertAfterFreezeReindexes) {
  TriplePattern p;
  p.predicate = Id("type");
  EXPECT_EQ(store_.Find(p).size(), 5u);  // freezes
  Add("dave", "type", "person");
  EXPECT_EQ(store_.Find(p).size(), 6u);  // re-freezes transparently
}

TEST_F(TripleStoreTest, DistinctCounts) {
  EXPECT_EQ(store_.NumDistinctSubjects(), 5u);   // alice,bob,carol,paris,rome
  EXPECT_EQ(store_.NumDistinctPredicates(), 2u); // lives_in,type
  EXPECT_EQ(store_.NumDistinctObjects(), 4u);    // paris,rome,person,city
}

TEST_F(TripleStoreTest, NoMatchForUnknownTerm) {
  TriplePattern p;
  p.subject = Id("never-inserted-subject");
  EXPECT_TRUE(store_.Find(p).empty());
}

TEST(TripleStoreScaleTest, LargeStorePatternQueries) {
  Dictionary dict;
  TripleStore store;
  // 100 subjects x 10 predicates.
  for (int s = 0; s < 100; ++s) {
    for (int p = 0; p < 10; ++p) {
      store.Insert(Triple(dict.Intern("s" + std::to_string(s)),
                          dict.Intern("p" + std::to_string(p)),
                          dict.Intern("o" + std::to_string((s + p) % 7))));
    }
  }
  EXPECT_EQ(store.size(), 1000u);
  TriplePattern bypred;
  bypred.predicate = *dict.Lookup("p3");
  EXPECT_EQ(store.Find(bypred).size(), 100u);
  TriplePattern byobj;
  byobj.object = *dict.Lookup("o0");
  size_t expected = 0;
  for (int s = 0; s < 100; ++s) {
    for (int p = 0; p < 10; ++p) {
      if ((s + p) % 7 == 0) ++expected;
    }
  }
  EXPECT_EQ(store.Find(byobj).size(), expected);
}

TEST(TripleTest, ToStringFormats) {
  Dictionary dict;
  Triple t(dict.Intern("s"), dict.Intern("p"), dict.Intern("o"));
  EXPECT_EQ(t.ToString(dict), "(s, p, o)");
}

TEST(TripleTest, OrderingAndEquality) {
  Triple a(1, 2, 3), b(1, 2, 4), c(1, 2, 3);
  EXPECT_EQ(a, c);
  EXPECT_NE(a, b);
  EXPECT_LT(a, b);
  EXPECT_FALSE(b < a);
}

}  // namespace
}  // namespace rdf
}  // namespace midas
