// Differential test: the indexed TripleStore's pattern queries must agree
// with a brute-force scan over random data, for every pattern shape, across
// several random store shapes (parameterized).

#include <gtest/gtest.h>

#include <algorithm>

#include "midas/rdf/triple_store.h"
#include "midas/util/random.h"

namespace midas {
namespace rdf {
namespace {

struct StoreShape {
  size_t num_triples;
  uint64_t subjects;
  uint64_t predicates;
  uint64_t objects;
  uint64_t seed;
};

class TripleStoreDifferentialTest
    : public ::testing::TestWithParam<StoreShape> {
 protected:
  void SetUp() override {
    Rng rng(GetParam().seed);
    for (size_t i = 0; i < GetParam().num_triples; ++i) {
      Triple t(static_cast<TermId>(rng.Uniform(GetParam().subjects)),
               static_cast<TermId>(rng.Uniform(GetParam().predicates)),
               static_cast<TermId>(rng.Uniform(GetParam().objects)));
      store_.Insert(t);
    }
  }

  std::vector<Triple> BruteForce(const TriplePattern& p) const {
    std::vector<Triple> out;
    for (const Triple& t : store_.triples()) {
      if (p.Matches(t)) out.push_back(t);
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  void Check(const TriplePattern& p) {
    auto indexed = store_.Find(p);
    std::sort(indexed.begin(), indexed.end());
    EXPECT_EQ(indexed, BruteForce(p))
        << "pattern (" << p.subject << "," << p.predicate << "," << p.object
        << ")";
  }

  TripleStore store_;
};

TEST_P(TripleStoreDifferentialTest, AllPatternShapesAgree) {
  Rng rng(GetParam().seed + 1000);
  const auto& shape = GetParam();
  for (int trial = 0; trial < 50; ++trial) {
    TermId s = static_cast<TermId>(rng.Uniform(shape.subjects + 2));
    TermId p = static_cast<TermId>(rng.Uniform(shape.predicates + 2));
    TermId o = static_cast<TermId>(rng.Uniform(shape.objects + 2));
    // All 8 bound/unbound combinations.
    for (int mask = 0; mask < 8; ++mask) {
      TriplePattern pattern;
      if (mask & 1) pattern.subject = s;
      if (mask & 2) pattern.predicate = p;
      if (mask & 4) pattern.object = o;
      Check(pattern);
    }
  }
}

TEST_P(TripleStoreDifferentialTest, CountAgreesWithFind) {
  Rng rng(GetParam().seed + 2000);
  for (int trial = 0; trial < 20; ++trial) {
    TriplePattern pattern;
    pattern.predicate =
        static_cast<TermId>(rng.Uniform(GetParam().predicates));
    EXPECT_EQ(store_.Count(pattern), store_.Find(pattern).size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TripleStoreDifferentialTest,
    ::testing::Values(
        StoreShape{0, 4, 4, 4, 1},        // empty store
        StoreShape{50, 4, 2, 4, 2},       // tiny, dense duplicates
        StoreShape{1000, 100, 8, 50, 3},  // medium
        StoreShape{5000, 40, 4, 20, 4},   // heavy collisions
        StoreShape{2000, 2000, 64, 2000, 5}),  // sparse
    [](const ::testing::TestParamInfo<StoreShape>& info) {
      return "n" + std::to_string(info.param.num_triples) + "_s" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace rdf
}  // namespace midas
