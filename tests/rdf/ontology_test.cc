#include "midas/rdf/ontology.h"

#include <gtest/gtest.h>

namespace midas {
namespace rdf {
namespace {

TypeSpec MakeType(const std::string& name,
                  std::vector<std::string> pred_names) {
  TypeSpec t;
  t.name = name;
  for (auto& p : pred_names) {
    PredicateSpec spec;
    spec.name = std::move(p);
    t.predicates.push_back(std::move(spec));
  }
  return t;
}

TEST(OntologyTest, AddAndFind) {
  Ontology ont;
  ont.AddType(MakeType("rocket_family", {"sponsor", "started"}));
  ont.AddType(MakeType("cocktail", {"ingredient"}));

  EXPECT_EQ(ont.size(), 2u);
  const TypeSpec* rocket = ont.FindType("rocket_family");
  ASSERT_NE(rocket, nullptr);
  EXPECT_EQ(rocket->predicates.size(), 2u);
  EXPECT_EQ(ont.FindType("nope"), nullptr);
}

TEST(OntologyTest, TypesKeepRegistrationOrder) {
  Ontology ont;
  ont.AddType(MakeType("b", {}));
  ont.AddType(MakeType("a", {}));
  EXPECT_EQ(ont.types()[0].name, "b");
  EXPECT_EQ(ont.types()[1].name, "a");
}

TEST(OntologyTest, DistinctPredicatesAcrossTypes) {
  Ontology ont;
  ont.AddType(MakeType("t1", {"shared", "only1"}));
  ont.AddType(MakeType("t2", {"shared", "only2"}));
  EXPECT_EQ(ont.NumDistinctPredicates(), 3u);
}

TEST(OntologyTest, PredicateSpecDefaults) {
  PredicateSpec spec;
  EXPECT_EQ(spec.presence_prob, 1.0);
  EXPECT_FALSE(spec.multivalued);
  EXPECT_TRUE(spec.values.empty());
  EXPECT_EQ(spec.open_values, 0u);
}

TEST(OntologyDeathTest, DuplicateTypeNameAborts) {
  Ontology ont;
  ont.AddType(MakeType("dup", {}));
  EXPECT_DEATH(ont.AddType(MakeType("dup", {})), "duplicate type");
}

}  // namespace
}  // namespace rdf
}  // namespace midas
