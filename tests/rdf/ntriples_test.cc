#include "midas/rdf/ntriples.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace midas {
namespace rdf {
namespace {

TEST(NTriplesParseTest, IriTriple) {
  std::vector<std::string> terms;
  ASSERT_TRUE(ParseNTriplesLine(
                  "<http://x/s> <http://x/p> <http://x/o> .", &terms)
                  .ok());
  ASSERT_EQ(terms.size(), 3u);
  EXPECT_EQ(terms[0], "http://x/s");
  EXPECT_EQ(terms[2], "http://x/o");
}

TEST(NTriplesParseTest, LiteralObject) {
  std::vector<std::string> terms;
  ASSERT_TRUE(
      ParseNTriplesLine("<s> <p> \"a literal\" .", &terms).ok());
  EXPECT_EQ(terms[2], "a literal");
}

TEST(NTriplesParseTest, EscapedLiteral) {
  std::vector<std::string> terms;
  ASSERT_TRUE(ParseNTriplesLine("<s> <p> \"line\\nbreak \\\"q\\\"\" .",
                                &terms)
                  .ok());
  EXPECT_EQ(terms[2], "line\nbreak \"q\"");
}

TEST(NTriplesParseTest, WhitespaceTolerant) {
  std::vector<std::string> terms;
  ASSERT_TRUE(
      ParseNTriplesLine("   <s>\t<p>   \"o\"   .  ", &terms).ok());
  EXPECT_EQ(terms[0], "s");
}

TEST(NTriplesParseTest, Malformed) {
  std::vector<std::string> terms;
  EXPECT_FALSE(ParseNTriplesLine("", &terms).ok());
  EXPECT_FALSE(ParseNTriplesLine("# comment", &terms).ok());
  EXPECT_FALSE(ParseNTriplesLine("<s> <p> .", &terms).ok());
  EXPECT_FALSE(ParseNTriplesLine("<s> <p> \"o\"", &terms).ok());  // no dot
  EXPECT_FALSE(ParseNTriplesLine("<s <p> \"o\" .", &terms).ok());
  EXPECT_FALSE(ParseNTriplesLine("<s> <p> \"unterminated .", &terms).ok());
  EXPECT_FALSE(ParseNTriplesLine("s p o .", &terms).ok());
}

TEST(NTriplesFormatTest, ObjectKindDetection) {
  EXPECT_EQ(FormatNTriplesLine("s", "p", "http://o"),
            "<s> <p> <http://o> .");
  EXPECT_EQ(FormatNTriplesLine("s", "p", "plain text"),
            "<s> <p> \"plain text\" .");
  EXPECT_EQ(FormatNTriplesLine("s", "p", "with \"quote\""),
            "<s> <p> \"with \\\"quote\\\"\" .");
}

class NTriplesFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/midas_ntriples_test.nt";
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(NTriplesFileTest, SaveLoadRoundTrip) {
  Dictionary dict;
  std::vector<Triple> triples = {
      Triple(dict.Intern("Atlas"), dict.Intern("sponsor"),
             dict.Intern("NASA")),
      Triple(dict.Intern("Atlas"), dict.Intern("page"),
             dict.Intern("http://space.skyrocket.de/atlas.htm")),
  };
  ASSERT_TRUE(SaveNTriplesFile(path_, dict, triples).ok());

  Dictionary dict2;
  std::vector<Triple> loaded;
  ASSERT_TRUE(LoadNTriplesFile(path_, &dict2, &loaded).ok());
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(dict2.Term(loaded[0].subject), "Atlas");
  EXPECT_EQ(dict2.Term(loaded[0].object), "NASA");
  EXPECT_EQ(dict2.Term(loaded[1].object),
            "http://space.skyrocket.de/atlas.htm");
}

TEST_F(NTriplesFileTest, LoadReportsLineOfError) {
  {
    std::ofstream out(path_);
    out << "<s> <p> \"good\" .\n";
    out << "broken line\n";
  }
  Dictionary dict;
  std::vector<Triple> loaded;
  Status s = LoadNTriplesFile(path_, &dict, &loaded);
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_NE(s.message().find(":2"), std::string::npos);
}

TEST_F(NTriplesFileTest, TsvFactsRoundTrip) {
  Dictionary dict;
  std::vector<Triple> triples = {
      Triple(dict.Intern("s1"), dict.Intern("p"), dict.Intern("o with space")),
  };
  ASSERT_TRUE(SaveTsvFacts(path_, dict, triples).ok());
  Dictionary dict2;
  std::vector<Triple> loaded;
  ASSERT_TRUE(LoadTsvFacts(path_, &dict2, &loaded).ok());
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(dict2.Term(loaded[0].object), "o with space");
}

TEST_F(NTriplesFileTest, TsvFactsRejectWrongColumnCount) {
  {
    std::ofstream out(path_);
    out << "a\tb\n";
  }
  Dictionary dict;
  std::vector<Triple> loaded;
  EXPECT_EQ(LoadTsvFacts(path_, &dict, &loaded).code(),
            StatusCode::kCorruption);
}

}  // namespace
}  // namespace rdf
}  // namespace midas
