#ifndef MIDAS_TOOLS_COMMANDS_H_
#define MIDAS_TOOLS_COMMANDS_H_

#include <iosfwd>
#include <string>

#include "midas/util/flags.h"
#include "midas/util/status.h"

namespace midas {
namespace tools {

/// Implementations of the `midas` CLI subcommands, factored out of main()
/// so they are unit-testable. Each takes the already-parsed flags and an
/// output stream.

/// `midas generate` — produce a synthetic dataset on disk:
///   --dataset reverb|nell|kv|slim-reverb|slim-nell
///   --scale F        corpus scale factor (full datasets)
///   --num_sources N  source count (slim datasets)
///   --seed N
///   --dump PATH      extraction dump TSV (required)
///   --kb PATH        knowledge-base facts TSV (optional)
///   --silver PATH    silver-standard slices file (optional)
Status RunGenerate(const FlagParser& flags, std::ostream& out);

/// `midas discover` — run slice discovery over an extraction dump:
///   --dump PATH      extraction dump TSV (required)
///   --kb PATH        knowledge-base facts TSV (optional; empty KB if not)
///   --method midas|greedy|aggcluster|naive
///   --threshold F    confidence threshold (default 0.7)
///   --top_k N        rows to print (default 20)
///   --out PATH       save the full slice list (optional)
///   --ranges         enable the numeric-range property extension
///   --f_p/--f_c/--f_d/--f_v   cost-model coefficients
///   --metrics_out PATH   write the metrics/tracing JSON document here
///   --metrics_summary    print the human-readable metrics summary
Status RunDiscover(const FlagParser& flags, std::ostream& out);

/// `midas experiment` (also the standalone `experiment` binary) — generate
/// a slim synthetic corpus in memory, run the requested methods over it,
/// score each against the generator's silver standard, and optionally dump
/// the observability registry:
///   --dataset slim-nell|slim-reverb
///   --num_sources N  source count (default 40)
///   --seed N
///   --methods LIST   comma-separated midas|greedy|aggcluster|naive
///   --threads N      framework threads (0 = hardware)
///   --f_p/--f_c/--f_d/--f_v   cost-model coefficients
///   --json           emit a JSON report instead of tables
///   --metrics_out PATH   write the metrics/tracing JSON document here
///   --metrics_summary    print the human-readable metrics summary
Status RunExperiment(const FlagParser& flags, std::ostream& out);

/// `midas stats` — dataset statistics of a dump (Fig. 7 columns):
///   --dump PATH      extraction dump TSV (required)
///   --threshold F    confidence threshold (default 0.7)
Status RunStats(const FlagParser& flags, std::ostream& out);

/// `midas convert` — convert an extraction dump between the TSV and the
/// MIDASCOL1 columnar formats (docs/FORMATS.md). The input format is
/// auto-detected by magic:
///   --in PATH        input dump, TSV or columnar (required)
///   --out PATH       output path (required)
///   --to columnar|tsv|auto   output format (auto = opposite of input)
Status RunConvert(const FlagParser& flags, std::ostream& out);

/// `midas evaluate` — score a slice file against a silver-standard file:
///   --slices PATH    discovered slices (slice_io format, required)
///   --silver PATH    silver slices (slice_io format, required)
///   --jaccard F      equivalence threshold (default 0.95)
Status RunEvaluate(const FlagParser& flags, std::ostream& out);

/// `midas coordinator` — distributed slice discovery (docs/DISTRIBUTED.md):
/// all `midas discover` flags, plus:
///   --listen PATH       unix-socket path to accept workers on (required)
///   --min_workers N     wait for this many workers before starting
///   --accept_timeout_ms N   how long to wait for them
/// Runs the framework with worker processes executing the shards; output
/// and slices are bit-identical to `midas discover` with the same flags.
Status RunCoordinator(const FlagParser& flags, std::ostream& out);

/// `midas worker` — one worker process for `midas coordinator`:
/// all `midas discover` flags (pass the coordinator's values), plus:
///   --connect PATH      coordinator unix-socket path (required)
///   --heartbeat_ms N    idle heartbeat interval (0 = none)
/// Loads the same dump/KB, connects, executes WorkAssigns until the
/// coordinator shuts it down.
Status RunWorker(const FlagParser& flags, std::ostream& out);

/// `midas serve` — the online slice-discovery daemon (docs/SERVE.md):
///   --corpus PATH    extraction dump, TSV or columnar (required)
///   --kb PATH        knowledge-base facts TSV (optional; empty KB if not)
///   --threshold F    confidence threshold for load AND ingest (default 0.7)
///   --port N         listen port (default 8080; 0 = ephemeral, printed)
///   --bind ADDR      listen address (default 127.0.0.1)
///   --threads N      framework threads per request (0 = hardware)
///   --max_inflight N concurrent request cap; excess answered 503
///   --request_deadline_ms N   per-request budget (0 = unbounded)
///   --cache_capacity N        result-cache entries (0 disables)
///   --fault_spec SPEC         arm fault injection (serve_accept/serve_read)
/// Serves POST /discover, POST /ingest, GET /healthz, GET /metricz until
/// SIGTERM/SIGINT, then drains in-flight requests and exits 0.
Status RunServe(const FlagParser& flags, std::ostream& out);

/// Registers the flags of each subcommand on a parser.
void RegisterGenerateFlags(FlagParser* flags);
void RegisterDiscoverFlags(FlagParser* flags);
void RegisterExperimentFlags(FlagParser* flags);
void RegisterStatsFlags(FlagParser* flags);
void RegisterConvertFlags(FlagParser* flags);
void RegisterEvaluateFlags(FlagParser* flags);
void RegisterCoordinatorFlags(FlagParser* flags);
void RegisterWorkerFlags(FlagParser* flags);
void RegisterServeFlags(FlagParser* flags);

}  // namespace tools
}  // namespace midas

#endif  // MIDAS_TOOLS_COMMANDS_H_
