#include "tools/commands.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <memory>
#include <ostream>
#include <unordered_map>

#include "midas/baselines/agg_cluster.h"
#include "midas/baselines/greedy.h"
#include "midas/baselines/naive.h"
#include "midas/core/midas.h"
#include "midas/dist/coordinator.h"
#include "midas/dist/net.h"
#include "midas/dist/worker.h"
#include "midas/eval/experiment.h"
#include "midas/eval/metrics.h"
#include "midas/eval/summary.h"
#include "midas/fault/fault.h"
#include "midas/obs/export.h"
#include "midas/extract/cleaning.h"
#include "midas/extract/columnar_io.h"
#include "midas/extract/dump_io.h"
#include "midas/rdf/ntriples.h"
#include "midas/serve/discovery_service.h"
#include "midas/serve/http_server.h"
#include "midas/store/columnar.h"
#include "midas/synth/corpus_generator.h"
#include "midas/synth/dataset_stats.h"
#include "midas/util/json.h"
#include "midas/util/logging.h"
#include "midas/util/string_util.h"
#include "midas/util/table_printer.h"

namespace midas {
namespace tools {

namespace {

// Converts a ground-truth slice to the DiscoveredSlice shape so silver
// standards share the slice_io on-disk format.
core::DiscoveredSlice ToDiscovered(const synth::GroundTruthSlice& gt) {
  core::DiscoveredSlice slice;
  slice.source_url = gt.source_url;
  for (const auto& [pred, value] : gt.rule) {
    slice.properties.push_back(core::PropertyPair{pred, value});
  }
  slice.entities = gt.entities;
  slice.facts = gt.facts;
  slice.num_facts = gt.facts.size();
  return slice;
}

Status LoadKbFacts(const std::string& path, rdf::KnowledgeBase* kb,
                   rdf::Dictionary* dict) {
  std::vector<rdf::Triple> facts;
  MIDAS_RETURN_IF_ERROR(rdf::LoadTsvFacts(path, dict, &facts));
  kb->AddAll(facts);
  return Status::OK();
}

/// Registers the shared observability flags (discover + experiment).
void RegisterMetricsFlags(FlagParser* flags) {
  flags->AddString("metrics_out", "",
                   "write the metrics/tracing JSON document here (optional)");
  flags->AddBool("metrics_summary", false,
                 "print a metrics summary after the run");
}

/// Honors --metrics_out / --metrics_summary after a command's work is done.
Status EmitMetrics(const FlagParser& flags, std::ostream& out) {
  MIDAS_RETURN_IF_ERROR(obs::WriteMetricsJson(flags.GetString("metrics_out")));
  if (flags.GetBool("metrics_summary")) out << obs::MetricsSummary();
  return Status::OK();
}

/// Registers the shared robustness flags (discover + experiment).
void RegisterRobustnessFlags(FlagParser* flags) {
  flags->AddInt64("source_deadline_ms", 0,
                  "per-source detection budget in ms (0 = unbounded); "
                  "expired shards return best-so-far slices marked partial");
  flags->AddInt64("max_retries", 2,
                  "retries after a shard's detector throws");
  flags->AddString("fault_spec", "",
                   "arm deterministic fault injection, e.g. "
                   "'site=detector,rate=0.05,seed=42' (sites only fire in a "
                   "MIDAS_FAULT_INJECTION build; see docs/ROBUSTNESS.md)");
  flags->AddString("checkpoint_dir", "",
                   "directory for the run's durable checkpoint log; each "
                   "finished source is appended so a killed run can be "
                   "continued with --resume (empty = no checkpointing)");
  flags->AddBool("resume", false,
                 "with --checkpoint_dir: skip sources the existing "
                 "checkpoint already records and merge their results "
                 "bit-identically");
}

/// Applies the robustness flags to the framework options and arms the fault
/// injector when --fault_spec is set (pair with a ScopedDisarm).
Status ApplyRobustnessFlags(const FlagParser& flags,
                            core::FrameworkOptions* options) {
  options->source_deadline_ms =
      static_cast<uint64_t>(flags.GetInt64("source_deadline_ms"));
  options->max_retries = static_cast<size_t>(flags.GetInt64("max_retries"));
  options->checkpoint_dir = flags.GetString("checkpoint_dir");
  options->resume = flags.GetBool("resume");
  if (options->resume && options->checkpoint_dir.empty()) {
    return Status::InvalidArgument("--resume requires --checkpoint_dir");
  }
  const std::string spec = flags.GetString("fault_spec");
  if (!spec.empty()) {
    MIDAS_RETURN_IF_ERROR(fault::FaultInjector::Global().Configure(spec));
  }
  return Status::OK();
}

/// Disarms the fault injector on scope exit (no-op when never armed), so a
/// command cannot leak an armed spec into later work in the same process.
struct ScopedDisarm {
  ~ScopedDisarm() { fault::FaultInjector::Global().Disarm(); }
};

/// Writes the per-source robustness outcome of a run: a text summary of
/// anything that did not complete cleanly, or the full `sources` array in
/// JSON mode.
void ReportSources(const core::FrameworkResult& result, bool json,
                   JsonValue* report, std::ostream& out) {
  if (json) {
    report->Set("partial", JsonValue::Bool(result.partial));
    JsonValue sources = JsonValue::Array();
    for (const auto& sr : result.sources) {
      JsonValue row = JsonValue::Object();
      row.Set("url", JsonValue::Str(sr.url));
      row.Set("status", JsonValue::Str(core::SourceStatusName(sr.status)));
      row.Set("attempts", JsonValue::Int(static_cast<int64_t>(sr.attempts)));
      if (!sr.error.empty()) row.Set("error", JsonValue::Str(sr.error));
      sources.Append(std::move(row));
    }
    report->Set("sources", std::move(sources));
    return;
  }
  if (result.partial) {
    out << "NOTE: partial result — a deadline or cancellation cut the run "
           "short; slices are best-so-far\n";
  }
  for (const auto& sr : result.sources) {
    if (sr.status == core::SourceStatus::kFailed) {
      out << "failed source: " << sr.url << " (" << sr.attempts
          << " attempts): " << sr.error << "\n";
    }
  }
}

}  // namespace

void RegisterGenerateFlags(FlagParser* flags) {
  flags->AddString("dataset", "slim-nell",
                   "reverb|nell|kv|slim-reverb|slim-nell");
  flags->AddDouble("scale", 0.5, "scale factor for full datasets");
  flags->AddInt64("num_sources", 100, "sources for slim datasets");
  flags->AddInt64("pages_per_section", 0,
                  "override mean pages per section (0 = dataset default); "
                  "shapes source density for smoke corpora");
  flags->AddInt64("entities_per_page", 0,
                  "override mean entities per page (0 = dataset default)");
  flags->AddInt64("seed", 11, "generator seed");
  flags->AddString("dump", "", "output extraction dump TSV (required)");
  flags->AddString("kb", "", "output KB facts TSV (optional)");
  flags->AddString("silver", "", "output silver-standard slices (optional)");
}

Status RunGenerate(const FlagParser& flags, std::ostream& out) {
  const std::string dump_path = flags.GetString("dump");
  if (dump_path.empty()) {
    return Status::InvalidArgument("--dump is required");
  }

  const std::string dataset = flags.GetString("dataset");
  double scale = flags.GetDouble("scale");
  uint64_t seed = static_cast<uint64_t>(flags.GetInt64("seed"));
  size_t num_sources = static_cast<size_t>(flags.GetInt64("num_sources"));

  synth::CorpusGenParams params;
  if (dataset == "reverb") {
    params = synth::ReVerbLikeParams(scale);
  } else if (dataset == "nell") {
    params = synth::NellLikeParams(scale);
  } else if (dataset == "kv") {
    params = synth::KnowledgeVaultLikeParams(scale);
  } else if (dataset == "slim-reverb") {
    params = synth::SlimParams(/*open_ie=*/true, num_sources, seed);
  } else if (dataset == "slim-nell") {
    params = synth::SlimParams(/*open_ie=*/false, num_sources, seed);
  } else {
    return Status::InvalidArgument("unknown --dataset: " + dataset);
  }
  params.seed = seed;
  if (flags.GetInt64("pages_per_section") > 0) {
    params.pages_per_section =
        static_cast<size_t>(flags.GetInt64("pages_per_section"));
  }
  if (flags.GetInt64("entities_per_page") > 0) {
    params.entities_per_page =
        static_cast<size_t>(flags.GetInt64("entities_per_page"));
  }

  auto data = synth::GenerateCorpus(params);

  // Dump: confidence 0.95 (the corpus is already confidence-filtered).
  extract::ExtractionDump dump;
  dump.dict = data.dict;
  for (const auto& src : data.corpus->sources()) {
    for (const auto& t : src.facts) {
      dump.facts.push_back(extract::ExtractedFact{src.url, t, 0.95});
    }
  }
  MIDAS_RETURN_IF_ERROR(extract::SaveDump(dump_path, dump));
  out << "wrote " << dump.facts.size() << " extraction records to "
      << dump_path << "\n";

  if (!flags.GetString("kb").empty()) {
    MIDAS_RETURN_IF_ERROR(rdf::SaveTsvFacts(
        flags.GetString("kb"), *data.dict, data.kb->store().triples()));
    out << "wrote " << data.kb->size() << " KB facts to "
        << flags.GetString("kb") << "\n";
  }
  if (!flags.GetString("silver").empty()) {
    std::vector<core::DiscoveredSlice> silver;
    for (const auto& gt : data.silver.slices) {
      silver.push_back(ToDiscovered(gt));
    }
    MIDAS_RETURN_IF_ERROR(
        core::SaveSlices(flags.GetString("silver"), *data.dict, silver));
    out << "wrote " << silver.size() << " silver slices to "
        << flags.GetString("silver") << "\n";
  }
  return Status::OK();
}

void RegisterDiscoverFlags(FlagParser* flags) {
  flags->AddString("dump", "", "extraction dump TSV (required)");
  flags->AddString("kb", "", "KB facts TSV (optional)");
  flags->AddString("method", "midas", "midas|greedy|aggcluster|naive");
  flags->AddDouble("threshold", 0.7, "confidence threshold");
  flags->AddInt64("top_k", 20, "rows to print");
  flags->AddString("out", "", "save the full slice list here (optional)");
  flags->AddBool("ranges", false, "numeric-range property extension");
  flags->AddDouble("f_p", 10.0, "per-slice training cost");
  flags->AddDouble("f_c", 0.001, "per-fact crawling cost");
  flags->AddDouble("f_d", 0.01, "per-fact de-duplication cost");
  flags->AddDouble("f_v", 0.1, "per-new-fact validation cost");
  flags->AddInt64("threads", 0, "framework threads (0 = hardware)");
  flags->AddBool("json", false, "emit a JSON report instead of tables");
  flags->AddBool("clean", false,
                 "run the extraction-hygiene pass before discovery");
  flags->AddString("functional", "",
                   "comma-separated functional predicates for --clean");
  flags->AddBool("strict_load", true,
                 "abort on the first malformed dump row; with "
                 "--strict_load=false malformed rows are quarantined "
                 "(counted and skipped) instead");
  flags->AddInt64("workers", 0,
                  "run detection in N self-forked worker processes instead "
                  "of in-process threads (0 = in-process; results are "
                  "bit-identical either way; docs/DISTRIBUTED.md)");
  flags->AddInt64("worker_respawn_limit", 8,
                  "total replacement workers the coordinator may fork after "
                  "crashes before lost units are abandoned (also the budget "
                  "for external workers joining after the run starts)");
  flags->AddInt64("worker_liveness_ms", 0,
                  "declare a worker lost after this many ms of silence and "
                  "re-queue its unit (0 = EOF-only loss detection; set well "
                  "above the workers' --heartbeat_ms)");
  flags->AddInt64("speculative_ms", 0,
                  "once the round queue drains, speculatively re-assign a "
                  "unit still in flight after this many ms to an idle "
                  "worker; first result wins (0 = off)");
  flags->AddInt64("load_threads", 1,
                  "threads for the columnar corpus load (0/1 = serial; "
                  "bit-identical either way; needs a source-grouped "
                  "columnar dump)");
  flags->AddBool("by_ref", true,
                 "dist mode: assign shards by reference (record ranges of "
                 "the shared columnar dump) to workers that hold the same "
                 "dump; workers without it, or non-columnar/non-indexed "
                 "dumps, fall back to inline facts automatically "
                 "(docs/DISTRIBUTED.md)");
  RegisterRobustnessFlags(flags);
  RegisterMetricsFlags(flags);
}

/// Corpus + KB + detector built from the shared discover-style flags.
/// `midas discover`, `midas coordinator`, and `midas worker` all construct
/// their run through this one function: a worker whose setup differed from
/// its coordinator's could not produce bit-identical shard results (the
/// Hello fingerprint would catch the corpus-shape part of such a drift).
struct DiscoverSetup {
  extract::ExtractionDump dump;  // holds the shared dictionary
  extract::LoadStats load_stats;
  web::Corpus corpus;
  uint64_t corpus_fingerprint = 0;
  std::unique_ptr<rdf::KnowledgeBase> kb;
  core::CostModel cost;
  std::unique_ptr<core::NumericRangeIndex> ranges;
  std::unique_ptr<core::SliceDetector> detector;
  bool hierarchy_rounds = true;
  /// Columnar fast path only: the open dump (kept mapped for by-reference
  /// dist assignment — self-forked workers inherit the mapping), the
  /// file-code -> TermId remap (empty = identity), and the per-source
  /// record-range catalog (empty when the file has no source index).
  std::unique_ptr<store::ColumnarReader> reader;
  std::vector<rdf::TermId> remap;
  extract::SourceRangeCatalog source_ranges;
};

Status BuildDiscoverSetup(const FlagParser& flags, std::ostream& out,
                          DiscoverSetup* setup) {
  if (flags.GetString("dump").empty()) {
    return Status::InvalidArgument("--dump is required");
  }
  const bool json = flags.GetBool("json");

  const std::string dump_path = flags.GetString("dump");
  if (extract::IsColumnarDump(dump_path) && !flags.GetBool("clean")) {
    // Columnar fast path: build the confidence-filtered corpus straight
    // from the mmap'd code arrays — no per-row materialization, and the
    // file's content hash binds the checkpoint fingerprint. --clean needs
    // row-level facts, so it takes the generic path below (LoadDump
    // auto-detects the format there too). The reader stays open in `setup`
    // so dist runs can assign shards by reference to it.
    setup->reader = std::make_unique<store::ColumnarReader>();
    store::ColumnarReadOptions read_options;
    read_options.lazy_verify = true;
    MIDAS_RETURN_IF_ERROR(setup->reader->Open(dump_path, read_options));
    extract::ColumnarLoadOptions load_options;
    load_options.threshold = flags.GetDouble("threshold");
    load_options.num_threads =
        static_cast<size_t>(flags.GetInt64("load_threads"));
    MIDAS_RETURN_IF_ERROR(extract::LoadColumnarCorpusFromReader(
        setup->reader.get(), load_options, &setup->corpus, &setup->remap));
    setup->corpus_fingerprint = setup->reader->content_fingerprint();
    setup->dump.dict = setup->corpus.shared_dict();
    if (setup->reader->has_source_index()) {
      MIDAS_RETURN_IF_ERROR(extract::BuildSourceRangeCatalog(
          setup->reader.get(), setup->corpus, &setup->source_ranges));
    }
  } else {
    extract::LoadOptions load_options;
    load_options.strict = flags.GetBool("strict_load");
    MIDAS_RETURN_IF_ERROR(extract::LoadDump(dump_path, load_options,
                                            &setup->dump,
                                            &setup->load_stats));
    if (setup->load_stats.rows_quarantined > 0 && !json) {
      out << "quarantined " << setup->load_stats.rows_quarantined
          << " malformed dump row(s)\n";
    }
    if (flags.GetBool("clean")) {
      extract::CleaningOptions cleaning;
      for (std::string_view name :
           SplitSkipEmpty(flags.GetString("functional"), ',')) {
        cleaning.functional_predicates.emplace_back(name);
      }
      auto clean_stats = extract::CleanExtractions(
          cleaning, setup->dump.dict.get(), &setup->dump.facts);
      if (!json) {
        out << "cleaning: " << clean_stats.input_records << " -> "
            << clean_stats.output_records << " records ("
            << clean_stats.duplicates_merged << " duplicates, "
            << clean_stats.conflicts_resolved << " conflicts, "
            << clean_stats.terms_normalized << " terms normalized)\n";
      }
    }
    setup->corpus =
        extract::BuildCorpus(setup->dump, flags.GetDouble("threshold"));
  }

  setup->kb = std::make_unique<rdf::KnowledgeBase>(setup->dump.dict);
  if (!flags.GetString("kb").empty()) {
    MIDAS_RETURN_IF_ERROR(LoadKbFacts(flags.GetString("kb"), setup->kb.get(),
                                      setup->dump.dict.get()));
  }
  if (!json) {
    out << "corpus: " << setup->corpus.NumFacts() << " facts over "
        << setup->corpus.NumSources() << " sources; KB: " << setup->kb->size()
        << " facts\n";
  }

  setup->cost = core::CostModel{flags.GetDouble("f_p"), flags.GetDouble("f_c"),
                                flags.GetDouble("f_d"),
                                flags.GetDouble("f_v")};
  core::MidasOptions options;
  options.cost_model = setup->cost;

  if (flags.GetBool("ranges")) {
    setup->ranges = std::make_unique<core::NumericRangeIndex>(
        setup->dump.dict.get(), setup->corpus);
    options.fact_table.range_index = setup->ranges.get();
    if (!json) {
      out << "numeric-range extension: " << setup->ranges->size()
          << " values bucketed\n";
    }
  }

  // Detector selection.
  const std::string method = flags.GetString("method");
  if (method == "midas") {
    setup->detector = std::make_unique<core::MidasAlg>(options);
  } else if (method == "greedy") {
    setup->detector = std::make_unique<baselines::GreedyDetector>(setup->cost);
  } else if (method == "aggcluster") {
    baselines::AggClusterOptions agg;
    agg.cost_model = setup->cost;
    setup->detector = std::make_unique<baselines::AggClusterDetector>(agg);
    setup->hierarchy_rounds = false;
  } else if (method == "naive") {
    setup->detector = std::make_unique<baselines::NaiveDetector>(setup->cost);
    setup->hierarchy_rounds = false;
  } else {
    return Status::InvalidArgument("unknown --method: " + method);
  }
  return Status::OK();
}

/// The shared body of `midas discover` (external_coordinator = false; dist
/// mode only with --workers > 0, self-forked) and `midas coordinator`
/// (true; workers join over --listen).
Status RunDiscoverImpl(const FlagParser& flags, std::ostream& out,
                       bool external_coordinator) {
  DiscoverSetup setup;
  MIDAS_RETURN_IF_ERROR(BuildDiscoverSetup(flags, out, &setup));
  extract::ExtractionDump& dump = setup.dump;
  web::Corpus& corpus = setup.corpus;
  rdf::KnowledgeBase& kb = *setup.kb;
  const extract::LoadStats& load_stats = setup.load_stats;
  const std::string method = flags.GetString("method");
  const bool json = flags.GetBool("json");

  core::FrameworkOptions framework_options;
  framework_options.num_threads =
      static_cast<size_t>(flags.GetInt64("threads"));
  framework_options.use_hierarchy_rounds = setup.hierarchy_rounds;
  framework_options.corpus_fingerprint = setup.corpus_fingerprint;
  MIDAS_RETURN_IF_ERROR(ApplyRobustnessFlags(flags, &framework_options));
  ScopedDisarm disarm;

  // Multi-process execution (docs/DISTRIBUTED.md): plug a DistCoordinator
  // in as the framework's shard executor. Workers must be started before
  // framework.Run — self-forked children then inherit the loaded corpus,
  // KB, detector, and any armed fault spec, and fork before the run's
  // thread pool exists.
  std::unique_ptr<dist::DistCoordinator> coordinator;
  const int64_t workers = flags.GetInt64("workers");
  if (external_coordinator || workers > 0) {
    const uint64_t fingerprint =
        core::ComputeRunFingerprint(corpus, framework_options);
    core::ShardDetectOptions detect;
    detect.source_deadline_ms = framework_options.source_deadline_ms;
    detect.max_retries = framework_options.max_retries;
    detect.retry_backoff_ms = framework_options.retry_backoff_ms;
    detect.run_seed = framework_options.run_seed;

    dist::DistOptions dist_options;
    dist_options.fingerprint = fingerprint;
    // By-reference dispatch: only when the corpus came off a columnar dump
    // whose source index could name every source. The per-worker Hello hash
    // still gates each delivery, so a mixed fleet (some workers without the
    // dump) works off the same options.
    const bool by_ref = flags.GetBool("by_ref") && setup.reader != nullptr &&
                        !setup.source_ranges.empty();
    if (by_ref) {
      dist_options.corpus_hash = setup.reader->content_fingerprint();
      dist_options.ref_threshold = flags.GetDouble("threshold");
      dist_options.source_ranges = &setup.source_ranges;
    }
    dist_options.worker_respawn_limit =
        static_cast<size_t>(flags.GetInt64("worker_respawn_limit"));
    dist_options.worker_liveness_ms =
        static_cast<int>(flags.GetInt64("worker_liveness_ms"));
    dist_options.speculative_ms =
        static_cast<int>(flags.GetInt64("speculative_ms"));
    if (external_coordinator) {
      dist_options.listen_path = flags.GetString("listen");
      if (dist_options.listen_path.empty()) {
        return Status::InvalidArgument("--listen is required");
      }
      dist_options.min_workers =
          static_cast<size_t>(flags.GetInt64("min_workers"));
      dist_options.accept_timeout_ms =
          static_cast<int>(flags.GetInt64("accept_timeout_ms"));
    } else {
      dist_options.num_workers = static_cast<size_t>(workers);
      // detect is captured by VALUE: respawned workers fork from inside
      // framework.Run, long after this block's stack frame is gone.
      dist_options.worker_main = [&setup, detect, fingerprint,
                                  by_ref](int fd) {
        dist::WorkerConfig config;
        config.detector = setup.detector.get();
        config.kb = setup.kb.get();
        config.dict = setup.dump.dict.get();
        config.detect = detect;
        config.fingerprint = fingerprint;
        if (by_ref) {
          // Forked children inherit the coordinator's mmap of the dump —
          // announcing its hash lets the coordinator skip shipping inline
          // facts to them.
          config.corpus_reader = setup.reader.get();
          config.corpus_remap = &setup.remap;
        }
        const Status worker_status = dist::RunWorkerLoop(fd, config);
        if (!worker_status.ok()) {
          MIDAS_LOG(Warning) << "dist: worker exiting on error: "
                             << worker_status.message();
        }
        ::_exit(worker_status.ok() ? 0 : 1);
      };
    }
    coordinator = std::make_unique<dist::DistCoordinator>(
        setup.dump.dict.get(), dist_options);
    if (external_coordinator) {
      // Bind before Start() blocks on Hellos, so the resolved address (and
      // an ephemeral TCP port) is printed while workers can still be
      // launched against it.
      MIDAS_RETURN_IF_ERROR(coordinator->Listen());
      if (!json) {
        out << "dist: listening for workers on " << flags.GetString("listen");
        if (coordinator->listen_port() != 0) {
          out << " (port " << coordinator->listen_port() << ")";
        }
        out << "\n";
        out.flush();
      }
    }
    MIDAS_RETURN_IF_ERROR(coordinator->Start());
    framework_options.executor = coordinator.get();
    if (!external_coordinator && !json) {
      out << "dist: " << workers << " forked worker(s)\n";
      out.flush();
    }
  }

  core::MidasFramework framework(setup.detector.get(), framework_options);
  auto result = framework.Run(corpus, kb);
  if (coordinator != nullptr) coordinator->Shutdown();

  if (json) {
    JsonValue report = JsonValue::Object();
    report.Set("method", JsonValue::Str(method));
    report.Set("corpus_facts", JsonValue::Int(
                                   static_cast<int64_t>(corpus.NumFacts())));
    report.Set("corpus_sources",
               JsonValue::Int(static_cast<int64_t>(corpus.NumSources())));
    report.Set("kb_facts", JsonValue::Int(static_cast<int64_t>(kb.size())));
    report.Set("rows_quarantined",
               JsonValue::Int(
                   static_cast<int64_t>(load_stats.rows_quarantined)));
    report.Set("seconds", JsonValue::Number(result.stats.seconds));
    report.Set("shards_failed",
               JsonValue::Int(static_cast<int64_t>(result.stats.shards_failed)));
    report.Set("shard_retries",
               JsonValue::Int(static_cast<int64_t>(result.stats.shard_retries)));
    report.Set("deadline_expirations",
               JsonValue::Int(
                   static_cast<int64_t>(result.stats.deadline_expirations)));
    ReportSources(result, /*json=*/true, &report, out);
    JsonValue slices = JsonValue::Array();
    for (const auto& s : result.slices) {
      JsonValue row = JsonValue::Object();
      row.Set("source_url", JsonValue::Str(s.source_url));
      row.Set("description", JsonValue::Str(s.Description(*dump.dict)));
      JsonValue props = JsonValue::Array();
      for (const auto& p : s.properties) {
        JsonValue prop = JsonValue::Object();
        prop.Set("predicate", JsonValue::Str(dump.dict->Term(p.predicate)));
        prop.Set("value", JsonValue::Str(dump.dict->Term(p.value)));
        props.Append(std::move(prop));
      }
      row.Set("properties", std::move(props));
      row.Set("num_facts", JsonValue::Int(static_cast<int64_t>(s.num_facts)));
      row.Set("num_new_facts",
              JsonValue::Int(static_cast<int64_t>(s.num_new_facts)));
      row.Set("profit", JsonValue::Number(s.profit));
      slices.Append(std::move(row));
    }
    report.Set("slices", std::move(slices));
    out << report.Dump(2) << "\n";
    if (!flags.GetString("out").empty()) {
      MIDAS_RETURN_IF_ERROR(core::SaveSlices(flags.GetString("out"),
                                             *dump.dict, result.slices));
    }
    return EmitMetrics(flags, out);
  }

  out << "discovered " << result.slices.size() << " slices in "
      << FormatDouble(result.stats.seconds, 3) << "s ("
      << result.stats.detector_calls << " detector calls over "
      << result.stats.rounds << " rounds";
  if (result.stats.shard_retries > 0) {
    out << ", " << result.stats.shard_retries << " retries";
  }
  if (result.stats.shards_failed > 0) {
    out << ", " << result.stats.shards_failed << " sources failed";
  }
  out << ")\n";
  ReportSources(result, /*json=*/false, nullptr, out);
  out << eval::SummarizeSlices(result.slices).ToString();

  TablePrinter table({"#", "web source", "what to extract", "facts",
                      "new", "profit"});
  size_t top_k = static_cast<size_t>(flags.GetInt64("top_k"));
  for (size_t i = 0; i < result.slices.size() && i < top_k; ++i) {
    const auto& s = result.slices[i];
    table.AddRow({std::to_string(i + 1), s.source_url,
                  s.Description(*dump.dict), std::to_string(s.num_facts),
                  std::to_string(s.num_new_facts),
                  FormatDouble(s.profit, 3)});
  }
  table.Print(out);

  if (!flags.GetString("out").empty()) {
    MIDAS_RETURN_IF_ERROR(
        core::SaveSlices(flags.GetString("out"), *dump.dict, result.slices));
    out << "saved full slice list to " << flags.GetString("out") << "\n";
  }
  return EmitMetrics(flags, out);
}

Status RunDiscover(const FlagParser& flags, std::ostream& out) {
  return RunDiscoverImpl(flags, out, /*external_coordinator=*/false);
}

void RegisterCoordinatorFlags(FlagParser* flags) {
  RegisterDiscoverFlags(flags);
  flags->AddString("listen", "",
                   "address to accept workers on (required): host:port "
                   "(TCP, e.g. 127.0.0.1:7070 or [::1]:0; port 0 = "
                   "ephemeral, printed) or a unix-socket path");
  flags->AddInt64("min_workers", 1,
                  "wait for this many workers before the run starts");
  flags->AddInt64("accept_timeout_ms", 30000,
                  "how long to wait for min_workers");
}

Status RunCoordinator(const FlagParser& flags, std::ostream& out) {
  return RunDiscoverImpl(flags, out, /*external_coordinator=*/true);
}

void RegisterWorkerFlags(FlagParser* flags) {
  // A worker loads the run exactly like the coordinator, so it shares the
  // discover flags (pass the same values on both sides; the Hello
  // fingerprint rejects a worker whose corpus/seed/mode differ).
  RegisterDiscoverFlags(flags);
  flags->AddString("connect", "",
                   "coordinator address (required): host:port (TCP) or a "
                   "unix-socket path");
  flags->AddInt64("connect_timeout_ms", 10000,
                  "keep retrying the connect for this long (covers the "
                  "window before the coordinator binds)");
  flags->AddInt64("heartbeat_ms", 1000,
                  "heartbeat interval in ms, while idle and during unit "
                  "execution (0 = no heartbeats; keep well under the "
                  "coordinator's --worker_liveness_ms)");
}

Status RunWorker(const FlagParser& flags, std::ostream& out) {
  const std::string path = flags.GetString("connect");
  if (path.empty()) {
    return Status::InvalidArgument("--connect is required");
  }
  DiscoverSetup setup;
  MIDAS_RETURN_IF_ERROR(BuildDiscoverSetup(flags, out, &setup));

  core::FrameworkOptions framework_options;
  framework_options.use_hierarchy_rounds = setup.hierarchy_rounds;
  framework_options.corpus_fingerprint = setup.corpus_fingerprint;
  MIDAS_RETURN_IF_ERROR(ApplyRobustnessFlags(flags, &framework_options));
  ScopedDisarm disarm;

  // TCP host:port or unix path, dispatched on the address grammar; retries
  // ECONNREFUSED/ENOENT until the deadline so worker start order does not
  // race the coordinator's bind.
  const StatusOr<int> connected = dist::ConnectAddress(
      path, static_cast<int>(flags.GetInt64("connect_timeout_ms")));
  if (!connected.ok()) return connected.status();
  const int fd = *connected;

  dist::WorkerConfig config;
  config.detector = setup.detector.get();
  config.kb = setup.kb.get();
  config.dict = setup.dump.dict.get();
  config.detect.source_deadline_ms = framework_options.source_deadline_ms;
  config.detect.max_retries = framework_options.max_retries;
  config.detect.retry_backoff_ms = framework_options.retry_backoff_ms;
  config.detect.run_seed = framework_options.run_seed;
  config.fingerprint =
      core::ComputeRunFingerprint(setup.corpus, framework_options);
  if (flags.GetBool("by_ref") && setup.reader != nullptr) {
    // Announce the local columnar dump so a coordinator holding the same
    // file assigns shards by reference (record ranges) instead of inline
    // facts; a coordinator without it simply ignores the hash.
    config.corpus_reader = setup.reader.get();
    config.corpus_remap = &setup.remap;
  }
  config.heartbeat_interval_ms =
      static_cast<int>(flags.GetInt64("heartbeat_ms"));
  config.transport = dist::IsTcpAddress(path) ? dist::Transport::kTcp
                                              : dist::Transport::kUnix;

  out << "worker: connected to " << path << "\n";
  out.flush();
  const Status status = dist::RunWorkerLoop(fd, config);
  if (status.ok()) out << "worker: released\n";
  return status;
}

void RegisterExperimentFlags(FlagParser* flags) {
  flags->AddString("dataset", "slim-nell", "slim-nell|slim-reverb");
  flags->AddInt64("num_sources", 40, "source count");
  flags->AddInt64("seed", 11, "generator seed");
  flags->AddString("methods", "midas",
                   "comma-separated midas|greedy|aggcluster|naive");
  flags->AddInt64("threads", 0, "framework threads (0 = hardware)");
  flags->AddDouble("jaccard", 0.95, "silver-match equivalence threshold");
  flags->AddDouble("f_p", 10.0, "per-slice training cost");
  flags->AddDouble("f_c", 0.001, "per-fact crawling cost");
  flags->AddDouble("f_d", 0.01, "per-fact de-duplication cost");
  flags->AddDouble("f_v", 0.1, "per-new-fact validation cost");
  flags->AddBool("json", false, "emit a JSON report instead of tables");
  RegisterRobustnessFlags(flags);
  RegisterMetricsFlags(flags);
}

Status RunExperiment(const FlagParser& flags, std::ostream& out) {
  const std::string dataset = flags.GetString("dataset");
  bool open_ie;
  if (dataset == "slim-nell") {
    open_ie = false;
  } else if (dataset == "slim-reverb") {
    open_ie = true;
  } else {
    return Status::InvalidArgument("unknown --dataset: " + dataset);
  }

  const auto num_sources = static_cast<size_t>(flags.GetInt64("num_sources"));
  const auto seed = static_cast<uint64_t>(flags.GetInt64("seed"));
  auto data =
      synth::GenerateCorpus(synth::SlimParams(open_ie, num_sources, seed));

  core::CostModel cost{flags.GetDouble("f_p"), flags.GetDouble("f_c"),
                       flags.GetDouble("f_d"), flags.GetDouble("f_v")};
  eval::MethodSuite suite(cost);

  // CLI tokens -> suite names.
  std::vector<std::string> method_names;
  for (std::string_view token :
       SplitSkipEmpty(flags.GetString("methods"), ',')) {
    if (token == "midas") {
      method_names.emplace_back("MIDAS");
    } else if (token == "greedy") {
      method_names.emplace_back("Greedy");
    } else if (token == "aggcluster") {
      method_names.emplace_back("AggCluster");
    } else if (token == "naive") {
      method_names.emplace_back("Naive");
    } else {
      return Status::InvalidArgument("unknown method: " + std::string(token));
    }
  }
  if (method_names.empty()) {
    return Status::InvalidArgument("--methods must name at least one method");
  }

  const bool json = flags.GetBool("json");
  const auto threads = static_cast<size_t>(flags.GetInt64("threads"));
  const double jaccard = flags.GetDouble("jaccard");

  if (!json) {
    out << "experiment: " << dataset << ", " << data.corpus->NumFacts()
        << " facts over " << data.corpus->NumSources() << " sources, "
        << data.kb->size() << " KB facts, " << data.silver.slices.size()
        << " silver slices\n";
  }

  JsonValue report = JsonValue::Object();
  report.Set("dataset", JsonValue::Str(dataset));
  report.Set("num_sources",
             JsonValue::Int(static_cast<int64_t>(data.corpus->NumSources())));
  report.Set("silver_slices",
             JsonValue::Int(static_cast<int64_t>(data.silver.slices.size())));
  JsonValue rows = JsonValue::Array();

  core::FrameworkOptions framework_options;
  framework_options.num_threads = threads;
  framework_options.run_seed = seed;
  MIDAS_RETURN_IF_ERROR(ApplyRobustnessFlags(flags, &framework_options));
  ScopedDisarm disarm;

  TablePrinter table({"method", "slices", "precision", "recall", "f-measure",
                      "seconds"});
  for (const std::string& name : method_names) {
    const eval::MethodSpec* spec = suite.Find(name);
    MIDAS_CHECK(spec != nullptr);
    auto result = eval::RunMethodWithOptions(*spec, *data.corpus, *data.kb,
                                             framework_options);
    auto scores =
        eval::ScoreAgainstSilver(result.slices, data.silver, jaccard);
    table.AddRow({name, std::to_string(result.slices.size()),
                  FormatDouble(scores.precision, 3),
                  FormatDouble(scores.recall, 3),
                  FormatDouble(scores.f_measure, 3),
                  FormatDouble(result.stats.seconds, 3)});
    if (!json) ReportSources(result, /*json=*/false, nullptr, out);
    JsonValue row = JsonValue::Object();
    row.Set("method", JsonValue::Str(name));
    row.Set("slices",
            JsonValue::Int(static_cast<int64_t>(result.slices.size())));
    row.Set("precision", JsonValue::Number(scores.precision));
    row.Set("recall", JsonValue::Number(scores.recall));
    row.Set("f_measure", JsonValue::Number(scores.f_measure));
    row.Set("seconds", JsonValue::Number(result.stats.seconds));
    row.Set("shards_failed",
            JsonValue::Int(static_cast<int64_t>(result.stats.shards_failed)));
    row.Set("shard_retries",
            JsonValue::Int(static_cast<int64_t>(result.stats.shard_retries)));
    row.Set("deadline_expirations",
            JsonValue::Int(
                static_cast<int64_t>(result.stats.deadline_expirations)));
    ReportSources(result, /*json=*/true, &row, out);
    rows.Append(std::move(row));
  }
  report.Set("methods", std::move(rows));

  if (json) {
    out << report.Dump(2) << "\n";
  } else {
    table.Print(out);
  }
  return EmitMetrics(flags, out);
}

void RegisterStatsFlags(FlagParser* flags) {
  flags->AddString("dump", "", "extraction dump TSV (required)");
  flags->AddDouble("threshold", 0.7, "confidence threshold");
}

Status RunStats(const FlagParser& flags, std::ostream& out) {
  if (flags.GetString("dump").empty()) {
    return Status::InvalidArgument("--dump is required");
  }
  extract::ExtractionDump dump;
  MIDAS_RETURN_IF_ERROR(extract::LoadDump(flags.GetString("dump"), &dump));
  web::Corpus corpus =
      extract::BuildCorpus(dump, flags.GetDouble("threshold"));
  rdf::KnowledgeBase empty_kb(dump.dict);
  auto stats = synth::ComputeDatasetStats(flags.GetString("dump"), corpus,
                                          empty_kb);
  TablePrinter table({"# of facts", "# of pred.", "# of URLs",
                      "# of subjects", "records in dump"});
  table.AddRow({FormatCount(stats.num_facts),
                FormatCount(stats.num_predicates),
                FormatCount(stats.num_urls),
                FormatCount(corpus.NumDistinctSubjects()),
                FormatCount(dump.facts.size())});
  table.Print(out);
  return Status::OK();
}

void RegisterConvertFlags(FlagParser* flags) {
  flags->AddString("in", "", "input dump, TSV or columnar (required)");
  flags->AddString("out", "", "output path (required)");
  flags->AddString("to", "auto",
                   "output format: columnar|tsv|auto (auto converts to the "
                   "opposite of the detected input format)");
  flags->AddBool("reindex", false,
                 "with columnar output: stable-group records by source "
                 "first, so the file carries the source-range index "
                 "(enables subset loads and by-reference dist assignment; "
                 "docs/FORMATS.md)");
}

Status RunConvert(const FlagParser& flags, std::ostream& out) {
  const std::string in_path = flags.GetString("in");
  const std::string out_path = flags.GetString("out");
  if (in_path.empty() || out_path.empty()) {
    return Status::InvalidArgument("--in and --out are required");
  }
  const bool in_columnar = extract::IsColumnarDump(in_path);
  std::string to = flags.GetString("to");
  if (to == "auto") to = in_columnar ? "tsv" : "columnar";
  if (to != "tsv" && to != "columnar") {
    return Status::InvalidArgument("unknown --to: " + to);
  }
  const bool reindex = flags.GetBool("reindex");
  if (reindex && to != "columnar") {
    return Status::InvalidArgument("--reindex requires columnar output");
  }
  extract::ExtractionDump dump;
  extract::LoadStats load_stats;
  MIDAS_RETURN_IF_ERROR(
      extract::LoadDump(in_path, extract::LoadOptions{}, &dump, &load_stats));
  if (reindex) {
    // Stable-group records by URL in first-appearance order: each source's
    // records become one contiguous run (per-source record order intact, so
    // corpora built from the file are unchanged), which is the layout the
    // columnar writer emits the source-range index for.
    std::unordered_map<std::string_view, uint32_t> first_seen;
    for (const extract::ExtractedFact& fact : dump.facts) {
      first_seen.try_emplace(fact.url,
                             static_cast<uint32_t>(first_seen.size()));
    }
    std::stable_sort(dump.facts.begin(), dump.facts.end(),
                     [&first_seen](const extract::ExtractedFact& a,
                                   const extract::ExtractedFact& b) {
                       return first_seen.find(a.url)->second <
                              first_seen.find(b.url)->second;
                     });
  }
  if (to == "columnar") {
    MIDAS_RETURN_IF_ERROR(extract::SaveColumnarDump(out_path, dump));
  } else {
    MIDAS_RETURN_IF_ERROR(extract::SaveDump(out_path, dump));
  }
  out << "converted " << dump.facts.size() << " records: " << in_path << " ("
      << (in_columnar ? "columnar" : "tsv") << ") -> " << out_path << " ("
      << to << ")\n";
  if (to == "columnar") {
    // Reopen to report whether the writer emitted the index (it does so
    // whenever the stream was source-grouped, --reindex or not).
    store::ColumnarReader reader;
    store::ColumnarReadOptions read_options;
    read_options.lazy_verify = true;
    MIDAS_RETURN_IF_ERROR(reader.Open(out_path, read_options));
    out << "source-range index: "
        << (reader.has_source_index() ? "present" : "absent") << " ("
        << reader.num_source_runs() << " runs)\n";
    if (reindex && !reader.has_source_index()) {
      return Status::Internal("reindexed output carries no source index");
    }
  }
  return Status::OK();
}

void RegisterEvaluateFlags(FlagParser* flags) {
  flags->AddString("slices", "", "discovered slices file (required)");
  flags->AddString("silver", "", "silver-standard slices file (required)");
  flags->AddDouble("jaccard", 0.95, "equivalence threshold");
  flags->AddBool("json", false, "emit a JSON report instead of a table");
}

Status RunEvaluate(const FlagParser& flags, std::ostream& out) {
  if (flags.GetString("slices").empty() ||
      flags.GetString("silver").empty()) {
    return Status::InvalidArgument("--slices and --silver are required");
  }
  auto dict = std::make_shared<rdf::Dictionary>();
  std::vector<core::DiscoveredSlice> returned, silver_slices;
  MIDAS_RETURN_IF_ERROR(
      core::LoadSlices(flags.GetString("slices"), dict.get(), &returned));
  MIDAS_RETURN_IF_ERROR(core::LoadSlices(flags.GetString("silver"),
                                         dict.get(), &silver_slices));

  synth::SilverStandard silver;
  for (const auto& s : silver_slices) {
    synth::GroundTruthSlice gt;
    gt.source_url = s.source_url;
    gt.entities = s.entities;
    gt.facts = s.facts;
    silver.slices.push_back(std::move(gt));
  }

  auto scores = eval::ScoreAgainstSilver(returned, silver,
                                         flags.GetDouble("jaccard"));
  if (flags.GetBool("json")) {
    JsonValue report = JsonValue::Object();
    report.Set("returned", JsonValue::Int(static_cast<int64_t>(scores.returned)));
    report.Set("expected", JsonValue::Int(static_cast<int64_t>(scores.expected)));
    report.Set("matched", JsonValue::Int(static_cast<int64_t>(scores.matched)));
    report.Set("precision", JsonValue::Number(scores.precision));
    report.Set("recall", JsonValue::Number(scores.recall));
    report.Set("f_measure", JsonValue::Number(scores.f_measure));
    out << report.Dump(2) << "\n";
    return Status::OK();
  }
  TablePrinter table({"returned", "expected", "matched", "precision",
                      "recall", "f-measure"});
  table.AddRow({std::to_string(scores.returned),
                std::to_string(scores.expected),
                std::to_string(scores.matched),
                FormatDouble(scores.precision, 3),
                FormatDouble(scores.recall, 3),
                FormatDouble(scores.f_measure, 3)});
  table.Print(out);
  return Status::OK();
}

void RegisterServeFlags(FlagParser* flags) {
  flags->AddString("corpus", "",
                   "extraction dump to serve, TSV or columnar (required)");
  flags->AddString("kb", "", "KB facts TSV (optional; empty KB if not)");
  flags->AddDouble("threshold", 0.7,
                   "confidence threshold for the load and for ingested "
                   "deltas");
  flags->AddInt64("port", 8080, "listen port (0 = ephemeral, printed)");
  flags->AddString("bind", "127.0.0.1", "listen address");
  flags->AddInt64("threads", 0, "framework threads per request (0 = "
                                "hardware)");
  flags->AddInt64("max_inflight", 64,
                  "concurrent request cap; excess answered 503");
  flags->AddInt64("request_deadline_ms", 0,
                  "per-request budget in ms (0 = unbounded)");
  flags->AddInt64("cache_capacity", 64,
                  "result-cache entries (0 disables caching)");
  flags->AddString("fault_spec", "",
                   "arm deterministic fault injection, e.g. "
                   "'site=serve_read,rate=1' or 'site=slow_shard,"
                   "delay_ms=100' (MIDAS_FAULT_INJECTION builds only)");
}

namespace {

// SIGTERM/SIGINT delivery target; ShutdownAsync is async-signal-safe.
serve::HttpServer* g_serving = nullptr;

void HandleServeSignal(int) {
  if (g_serving != nullptr) g_serving->ShutdownAsync();
}

}  // namespace

Status RunServe(const FlagParser& flags, std::ostream& out) {
  const std::string corpus_path = flags.GetString("corpus");
  if (corpus_path.empty()) {
    return Status::InvalidArgument("--corpus is required");
  }
  const int64_t port = flags.GetInt64("port");
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument("--port out of range");
  }

  const std::string spec = flags.GetString("fault_spec");
  if (!spec.empty()) {
    MIDAS_RETURN_IF_ERROR(fault::FaultInjector::Global().Configure(spec));
  }
  ScopedDisarm disarm;

  // Load exactly as `midas discover` would: columnar fast path when the
  // magic matches, row-level TSV otherwise.
  const double threshold = flags.GetDouble("threshold");
  web::Corpus corpus;
  std::shared_ptr<rdf::Dictionary> dict;
  if (extract::IsColumnarDump(corpus_path)) {
    uint64_t corpus_fingerprint = 0;
    MIDAS_RETURN_IF_ERROR(extract::LoadColumnarCorpus(
        corpus_path, threshold, /*dict=*/nullptr, &corpus,
        &corpus_fingerprint));
    dict = corpus.shared_dict();
  } else {
    extract::ExtractionDump dump;
    MIDAS_RETURN_IF_ERROR(extract::LoadDump(corpus_path, &dump));
    corpus = extract::BuildCorpus(dump, threshold);
    dict = dump.dict;
  }
  rdf::KnowledgeBase kb(dict);
  if (!flags.GetString("kb").empty()) {
    MIDAS_RETURN_IF_ERROR(LoadKbFacts(flags.GetString("kb"), &kb,
                                      dict.get()));
  }
  out << "corpus: " << corpus.NumFacts() << " facts over "
      << corpus.NumSources() << " sources; KB: " << kb.size() << " facts\n";

  serve::DiscoveryServiceOptions service_options;
  service_options.confidence_threshold = threshold;
  service_options.num_threads =
      static_cast<size_t>(flags.GetInt64("threads"));
  service_options.default_deadline_ms =
      static_cast<uint64_t>(flags.GetInt64("request_deadline_ms"));
  service_options.cache_capacity =
      static_cast<size_t>(flags.GetInt64("cache_capacity"));
  serve::DiscoveryService service(std::move(corpus), std::move(kb),
                                  service_options);

  serve::HttpServerOptions server_options;
  server_options.bind_address = flags.GetString("bind");
  server_options.port = static_cast<uint16_t>(port);
  server_options.max_inflight =
      static_cast<size_t>(flags.GetInt64("max_inflight"));
  server_options.request_deadline_ms = service_options.default_deadline_ms;
  serve::HttpServer server(
      server_options,
      [&service](const serve::HttpRequest& request,
                 const fault::CancelToken& cancel) {
        return service.Handle(request, cancel);
      });
  MIDAS_RETURN_IF_ERROR(server.Start());

  g_serving = &server;
  std::signal(SIGTERM, HandleServeSignal);
  std::signal(SIGINT, HandleServeSignal);

  // The smoke script scrapes this line for the ephemeral port; keep the
  // shape stable and flush before blocking.
  out << "listening on " << server_options.bind_address << ":"
      << server.port() << "\n";
  out.flush();

  server.Wait();  // until SIGTERM/SIGINT → graceful drain
  server.Shutdown();
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGINT, SIG_DFL);
  g_serving = nullptr;

  out << "drained after " << server.requests_served() << " request(s)\n";
  return Status::OK();
}

}  // namespace tools
}  // namespace midas
