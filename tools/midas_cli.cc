// The `midas` command-line tool: slice discovery over extraction dumps.
//
//   midas generate   --dataset slim-nell --dump dump.tsv --silver silver.tsv
//   midas discover   --dump dump.tsv --kb kb.tsv --out slices.tsv
//   midas experiment --methods midas,greedy --metrics_out metrics.json
//   midas stats      --dump dump.tsv
//   midas convert    --in dump.tsv --out dump.midascol
//   midas evaluate   --slices slices.tsv --silver silver.tsv
//   midas serve      --corpus dump.tsv --port 8080
//
// Run any subcommand with a bad flag to see its usage.

#include <iostream>
#include <string>

#include "tools/commands.h"

namespace {

void PrintTopLevelUsage() {
  std::cerr
      << "usage: midas <command> [flags]\n"
         "\n"
         "commands:\n"
         "  generate   produce a synthetic dataset (dump / KB / silver)\n"
         "  discover   run slice discovery over an extraction dump\n"
         "  experiment run methods over a synthetic corpus, score vs silver\n"
         "  stats      dataset statistics of a dump\n"
         "  convert    convert a dump between TSV and columnar formats\n"
         "  evaluate   score a slice file against a silver standard\n"
         "  serve      online slice-discovery daemon (HTTP, docs/SERVE.md)\n"
         "  coordinator  distributed discovery over worker processes "
         "(docs/DISTRIBUTED.md)\n"
         "  worker       one worker process for `midas coordinator`\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace midas;
  if (argc < 2) {
    PrintTopLevelUsage();
    return 2;
  }
  std::string command = argv[1];

  FlagParser flags;
  Status (*run)(const FlagParser&, std::ostream&) = nullptr;
  if (command == "generate") {
    tools::RegisterGenerateFlags(&flags);
    run = tools::RunGenerate;
  } else if (command == "discover") {
    tools::RegisterDiscoverFlags(&flags);
    run = tools::RunDiscover;
  } else if (command == "experiment") {
    tools::RegisterExperimentFlags(&flags);
    run = tools::RunExperiment;
  } else if (command == "stats") {
    tools::RegisterStatsFlags(&flags);
    run = tools::RunStats;
  } else if (command == "convert") {
    tools::RegisterConvertFlags(&flags);
    run = tools::RunConvert;
  } else if (command == "evaluate") {
    tools::RegisterEvaluateFlags(&flags);
    run = tools::RunEvaluate;
  } else if (command == "serve") {
    tools::RegisterServeFlags(&flags);
    run = tools::RunServe;
  } else if (command == "coordinator") {
    tools::RegisterCoordinatorFlags(&flags);
    run = tools::RunCoordinator;
  } else if (command == "worker") {
    tools::RegisterWorkerFlags(&flags);
    run = tools::RunWorker;
  } else {
    std::cerr << "unknown command: " << command << "\n";
    PrintTopLevelUsage();
    return 2;
  }

  Status parse = flags.Parse(argc - 1, argv + 1);
  if (!parse.ok()) {
    std::cerr << parse.ToString() << "\n"
              << flags.Usage("midas " + command);
    return 2;
  }
  Status status = run(flags, std::cout);
  if (!status.ok()) {
    std::cerr << "error: " << status.ToString() << "\n";
    return 1;
  }
  return 0;
}
