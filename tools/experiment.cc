// Standalone `experiment` tool: generates a slim synthetic corpus, runs the
// requested methods over it, scores them against the generator's silver
// standard, and (with --metrics_out) dumps the observability registry —
// counters, gauges, histograms with p50/p95/p99, and tracing spans — as one
// JSON document. Equivalent to `midas experiment`; kept as its own binary so
// CI and profiling harnesses can invoke it directly.
//
//   experiment --methods midas,greedy --metrics_out metrics.json
//   experiment --dataset slim-reverb --num_sources 80 --metrics_summary

#include <iostream>

#include "tools/commands.h"

int main(int argc, char** argv) {
  using namespace midas;
  FlagParser flags;
  tools::RegisterExperimentFlags(&flags);
  Status parse = flags.Parse(argc, argv);
  if (!parse.ok()) {
    std::cerr << parse.ToString() << "\n" << flags.Usage("experiment");
    return 2;
  }
  Status status = tools::RunExperiment(flags, std::cout);
  if (!status.ok()) {
    std::cerr << "error: " << status.ToString() << "\n";
    return 1;
  }
  return 0;
}
